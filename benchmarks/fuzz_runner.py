"""Mutation-fuzz campaign runner with per-input watchdog (docs/robustness.md).

Mutates the valid ``.sys`` corpus (``examples/`` plus a built-in seed)
and drives every input through parse → build → schedule → verify,
asserting the robustness invariant: each input is either rejected with a
:class:`ReproError` subclass or schedules-and-verifies — never a bare
exception, never a hang.  Each input runs under a ``SIGALRM`` watchdog
*above* the scheduler's own :class:`RunBudget`, so even a hang outside
the budgeted loops is caught and reported.

Crashing or hanging inputs are written to ``--crash-dir`` for triage and
the campaign exits non-zero.  CI runs this as a bounded smoke step::

    PYTHONPATH=src python benchmarks/fuzz_runner.py --count 500 \
        --seed 1 --time-budget 60 --crash-dir fuzz-crashes \
        --out BENCH_fuzz.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import sys
import time

from repro.parallel.jobs import JobTimeout, _deadline
from repro.validation.budget import RunBudget
from repro.validation.fuzz import (
    OUTCOME_CRASHED,
    FuzzOutcome,
    exercise_text,
    mutate_text,
)

HERE = pathlib.Path(__file__).resolve().parent
EXAMPLES = HERE.parent / "examples"

OUTCOME_HUNG = "hung"

SEED_TEXT = """\
system fuzz-seed
process p1
block p1 main deadline=8
op p1 main a1 add
op p1 main m1 mul
edge p1 main a1 m1
process p2
block p2 main deadline=8
op p2 main m1 mul
op p2 main a1 add
edge p2 main m1 a1
global multiplier p1 p2
period multiplier 4
"""


def load_corpus() -> list:
    corpus = [SEED_TEXT]
    for path in sorted(EXAMPLES.glob("*.sys")):
        corpus.append(path.read_text(encoding="utf-8"))
    return corpus


def run_campaign(args) -> dict:
    rng = random.Random(args.seed)
    corpus = load_corpus()
    budget = RunBudget(
        max_iterations=args.max_iterations, wall_deadline=args.input_timeout / 2
    )
    stats = {"scheduled": 0, "rejected": 0, OUTCOME_CRASHED: 0, OUTCOME_HUNG: 0}
    failures = []
    started = time.time()
    executed = 0
    for index in range(args.count):
        if args.time_budget and time.time() - started > args.time_budget:
            print(
                f"time budget of {args.time_budget:g}s reached after "
                f"{executed} inputs"
            )
            break
        mutated = mutate_text(rng.choice(corpus), rng)
        try:
            with _deadline(args.input_timeout):
                outcome = exercise_text(mutated, budget=budget)
        except JobTimeout:
            outcome = FuzzOutcome(
                OUTCOME_HUNG, f"no result within {args.input_timeout:g}s"
            )
        executed += 1
        stats[outcome.outcome] += 1
        if outcome.outcome in (OUTCOME_CRASHED, OUTCOME_HUNG):
            failures.append((index, outcome, mutated))
            print(f"[{index}] {outcome.outcome}: {outcome.detail}")

    if failures and args.crash_dir:
        crash_dir = pathlib.Path(args.crash_dir)
        crash_dir.mkdir(parents=True, exist_ok=True)
        for index, outcome, mutated in failures:
            stem = f"crash-{args.seed}-{index:05d}"
            (crash_dir / f"{stem}.sys").write_text(mutated, encoding="utf-8")
            (crash_dir / f"{stem}.txt").write_text(
                f"{outcome.outcome}: {outcome.detail}\n", encoding="utf-8"
            )
        print(f"wrote {len(failures)} crashing input(s) to {crash_dir}/")

    return {
        "seed": args.seed,
        "requested": args.count,
        "executed": executed,
        "corpus_files": len(corpus),
        "wall_time": round(time.time() - started, 3),
        "outcomes": stats,
        "failures": len(failures),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--count", type=int, default=500, help="inputs to run")
    parser.add_argument("--seed", type=int, default=1, help="campaign RNG seed")
    parser.add_argument(
        "--time-budget",
        type=float,
        default=0.0,
        help="stop after this many seconds (0 = run all inputs)",
    )
    parser.add_argument(
        "--input-timeout",
        type=float,
        default=10.0,
        help="SIGALRM watchdog per input, seconds",
    )
    parser.add_argument(
        "--max-iterations",
        type=int,
        default=5000,
        help="scheduler RunBudget iteration cap per input",
    )
    parser.add_argument(
        "--crash-dir",
        default="fuzz-crashes",
        help="directory for crashing inputs ('' disables)",
    )
    parser.add_argument("--out", default="", help="write a JSON summary here")
    args = parser.parse_args(argv)

    summary = run_campaign(args)
    print(json.dumps(summary, indent=2, sort_keys=True))
    if args.out:
        pathlib.Path(args.out).write_text(
            json.dumps(summary, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    if summary["failures"]:
        print(f"FUZZ FAILURE: {summary['failures']} invariant violation(s)")
        return 1
    print(
        f"fuzz ok: {summary['executed']} inputs, "
        f"{summary['outcomes']['rejected']} rejected, "
        f"{summary['outcomes']['scheduled']} scheduled, 0 crashes"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
