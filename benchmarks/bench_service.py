"""Scheduling-service benchmark and chaos smoke (docs/service.md).

Measures the three guarantees the ``repro serve`` job server sells:

* **content-addressed caching** — the same submission answered from the
  durable result cache instead of rescheduling (``cache_hit.speedup``);
* **byte-identical payloads** — the cached bytes, the server's bytes,
  and an uninterrupted in-process run's bytes are all equal
  (``byte_identical`` flags, a hard invariant);
* **exactly-once crash recovery** — the server is ``SIGKILL``-ed in the
  middle of a sweep, restarted on the same state directory, and must
  finish the job without re-evaluating a single journaled candidate
  (``crash_resume.duplicate_evaluations == 0``, also hard).

The server runs as a real subprocess (``python -m repro serve``) so the
kill is a genuine process death, not an in-process simulation.

Runnable standalone for CI smoke checks::

    PYTHONPATH=src python benchmarks/bench_service.py --out BENCH_service.json
"""

import argparse
import json
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

from conftest import save_artifact

from repro.parallel.checkpoint import candidate_key, load_jsonl_tolerant
from repro.service import LocalSession, ServiceClient, cache_key

#: The benchmark workload: a two-process system sharing both pools.
SYSTEM_TEXT = """\
system service-bench
process p1
block p1 main deadline=8
op p1 main a1 add
op p1 main m1 mul
edge p1 main a1 m1
process p2
block p2 main deadline=8
op p2 main m1 mul
op p2 main a1 add
global multiplier p1 p2
global adder p1 p2
period multiplier 4
period adder 4
"""


class ServeProcess:
    """A ``repro serve`` subprocess plus its parsed ephemeral address."""

    def __init__(self, state_dir):
        self.state_dir = str(state_dir)
        self.process = None
        self.address = None

    def start(self):
        self.process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--state",
                self.state_dir,
                "--address",
                "127.0.0.1:0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            line = self.process.stdout.readline()
            if "listening on" in line:
                self.address = line.split("listening on", 1)[1].split()[0]
                return self
            if self.process.poll() is not None:
                raise RuntimeError("repro serve exited before binding")
        raise RuntimeError("repro serve never reported its address")

    def sigkill(self):
        self.process.send_signal(signal.SIGKILL)
        self.process.wait(timeout=10)

    def stop(self):
        if self.process is not None and self.process.poll() is None:
            self.process.terminate()
            self.process.wait(timeout=10)
        if self.process is not None and self.process.stdout:
            self.process.stdout.close()


def wait_for_candidates(path, count, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if os.path.exists(path):
            records, _ = load_jsonl_tolerant(path)
            if len(records) >= count:
                return len(records)
        time.sleep(0.02)
    raise RuntimeError(f"never saw {count} journaled candidate(s)")


def run_bench(limit, candidate_delay, state_root):
    cold_options = {"limit": limit}
    chaos_options = {"limit": limit, "candidate_delay": candidate_delay}

    # Uninterrupted in-process references: the bytes every server-side
    # arm must reproduce.
    with LocalSession() as session:
        ref_cold = session.sweep(SYSTEM_TEXT, cold_options).raw
    with LocalSession() as session:
        ref_chaos = session.sweep(SYSTEM_TEXT, chaos_options).raw

    state = os.path.join(state_root, "state")
    server = ServeProcess(state).start()
    try:
        client = ServiceClient(server.address, timeout=10.0)

        # Arm 1: cold submission — full scheduling on the server.
        started = time.perf_counter()
        cold_status = client.submit("sweep", SYSTEM_TEXT, cold_options)
        client.wait(cold_status["job"], timeout=300.0)
        cold_bytes = client.result_bytes(cold_status["job"])
        cold_seconds = time.perf_counter() - started

        # Arm 2: identical resubmission — served from the result cache.
        started = time.perf_counter()
        warm_status = client.submit("sweep", SYSTEM_TEXT, cold_options)
        warm_bytes = client.result_bytes(warm_status["job"])
        warm_seconds = time.perf_counter() - started

        # Arm 3: SIGKILL mid-sweep, restart, exactly-once resume.  The
        # per-candidate delay widens the window the kill lands in.
        chaos_job = cache_key("sweep", SYSTEM_TEXT, chaos_options)
        journal = os.path.join(state, "sweeps", f"{chaos_job}.jsonl")
        submitted = client.submit("sweep", SYSTEM_TEXT, chaos_options)
        assert submitted["job"] == chaos_job
        before_kill = wait_for_candidates(journal, 2)
        server.sigkill()
    except BaseException:
        server.stop()
        raise

    started = time.perf_counter()
    restarted = ServeProcess(state).start()
    try:
        client = ServiceClient(restarted.address, timeout=10.0)
        final = client.wait(chaos_job, timeout=300.0)
        resume_seconds = time.perf_counter() - started
        assert final["state"] == "done", final
        chaos_bytes = client.result_bytes(chaos_job)
    finally:
        restarted.stop()

    records, _ = load_jsonl_tolerant(journal)
    keys = [candidate_key(record["periods"]) for record in records]
    cold_payload = json.loads(cold_bytes)
    return {
        "workload": {
            "system": "service-bench",
            "limit": limit,
            "candidate_delay": candidate_delay,
            "candidates": cold_payload["total"],
            "evaluated": cold_payload["evaluated"],
        },
        "cold": {
            "seconds": cold_seconds,
            "cached": bool(cold_status["cached"]),
        },
        "cache_hit": {
            "seconds": warm_seconds,
            "cached": bool(warm_status["cached"]),
            "speedup": cold_seconds / warm_seconds if warm_seconds else 0.0,
            "byte_identical": warm_bytes == cold_bytes == ref_cold,
        },
        "crash_resume": {
            "candidates_before_kill": before_kill,
            "resume_seconds": resume_seconds,
            "duplicate_evaluations": len(keys) - len(set(keys)),
            "journaled_candidates": len(keys),
            "byte_identical": chaos_bytes == ref_chaos,
        },
    }


def render(result):
    lines = [
        "scheduling service bench (cold vs cache-hit vs crash-resume)",
        f"  workload: sweep limit={result['workload']['limit']}, "
        f"{result['workload']['candidates']} candidates "
        f"({result['workload']['evaluated']} evaluated)",
        f"  cold submit:  {result['cold']['seconds']:.3f} s",
        f"  cache hit:    {result['cache_hit']['seconds']:.3f} s "
        f"(speedup {result['cache_hit']['speedup']:.0f}x, "
        f"byte_identical={result['cache_hit']['byte_identical']})",
        f"  crash resume: killed after "
        f"{result['crash_resume']['candidates_before_kill']} candidate(s), "
        f"resumed in {result['crash_resume']['resume_seconds']:.3f} s, "
        f"duplicates={result['crash_resume']['duplicate_evaluations']}, "
        f"byte_identical={result['crash_resume']['byte_identical']}",
    ]
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--limit", type=int, default=6,
                        help="period-candidate cap of the sweep workload")
    parser.add_argument("--candidate-delay", type=float, default=0.4,
                        help="per-candidate stall of the chaos arm "
                             "(widens the SIGKILL window)")
    parser.add_argument("--out", default=None,
                        help="also write the JSON artifact to this path")
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="repro-bench-service-") as root:
        result = run_bench(args.limit, args.candidate_delay, root)

    text = render(result)
    save_artifact("bench_service", text, data=result)
    if args.out:
        pathlib.Path(args.out).write_text(
            json.dumps(result, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    ok = (
        result["cache_hit"]["byte_identical"]
        and result["crash_resume"]["byte_identical"]
        and result["crash_resume"]["duplicate_evaluations"] == 0
        and result["cache_hit"]["cached"]
        and not result["cold"]["cached"]
    )
    if not ok:
        print("SERVICE BENCH FAILED: invariant violated", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
