"""Experiment A5 — scaling of the coupled scheduler.

The paper reports 71 iterations / 7 s for 124 operations on a Pentium
133 (§7) and argues the modification does not increase the IFDS
complexity class (§5.3).  This benchmark scales the number of processes
over random workloads and reports operations, iterations, and wall time;
iterations must grow linearly with total mobility, not explode.
"""

import time

from conftest import save_artifact
from repro.obs import Tracer

from repro.core.periods import PeriodAssignment
from repro.core.scheduler import ModuloSystemScheduler
from repro.ir.process import Block, Process, SystemSpec
from repro.resources.assignment import ResourceAssignment
from repro.resources.library import default_library
from repro.workloads import random_dfg

PROCESS_COUNTS = (2, 4, 6)
OPS_PER_PROCESS = 12
SLACK = 6
PERIOD = 4


def build_system(n_processes, library):
    system = SystemSpec(name=f"scale{n_processes}")
    for index in range(n_processes):
        graph = random_dfg(OPS_PER_PROCESS, seed=1000 + index)
        deadline = graph.critical_path_length(library.latency_of) + SLACK
        process = Process(name=f"p{index}")
        process.add_block(Block(name="main", graph=graph, deadline=deadline))
        system.add_process(process)
    return system


def run_scaling():
    library = default_library()
    rows = []
    for n_processes in PROCESS_COUNTS:
        system = build_system(n_processes, library)
        assignment = ResourceAssignment.all_global(library, system)
        periods = PeriodAssignment(
            {name: PERIOD for name in assignment.global_types}
        )
        scheduler = ModuloSystemScheduler(library, tracer=Tracer())
        started = time.perf_counter()
        result = scheduler.schedule(system, assignment, periods)
        elapsed = time.perf_counter() - started
        rows.append(
            (
                n_processes,
                system.operation_count,
                result.iterations,
                elapsed,
                result.total_area(),
                dict(result.telemetry.get("counters", {})),
            )
        )
    return rows


def test_scaling(benchmark):
    rows = benchmark.pedantic(run_scaling, rounds=1, iterations=1)

    # Iterations are bounded by total mobility: at most ops * (slack + 1).
    for n_processes, ops, iterations, _elapsed, _area, _counters in rows:
        assert iterations <= ops * (SLACK + 2)

    lines = [
        "A5: scheduler scaling over random multi-process systems",
        f"({OPS_PER_PROCESS} ops/process, slack {SLACK}, all types global, "
        f"P = {PERIOD})",
        "",
        f"{'procs':>5} {'ops':>5} {'iterations':>11} {'seconds':>8} {'area':>6}",
    ]
    for n_processes, ops, iterations, elapsed, area, _counters in rows:
        lines.append(
            f"{n_processes:>5} {ops:>5} {iterations:>11} {elapsed:>8.2f} "
            f"{area:>6g}"
        )
    lines.append("")
    lines.append("paper reference point: 124 ops, 71 iterations, 7 s (Pentium 133)")
    save_artifact(
        "scaling",
        "\n".join(lines),
        data=[
            {
                "processes": n_processes,
                "operations": ops,
                "iterations": iterations,
                "wall_time": elapsed,
                "area": area,
                "counters": counters,
            }
            for n_processes, ops, iterations, elapsed, area, counters in rows
        ],
    )
