"""Experiment A5 — scaling of the coupled scheduler.

The paper reports 71 iterations / 7 s for 124 operations on a Pentium
133 (§7) and argues the modification does not increase the IFDS
complexity class (§5.3).  This benchmark scales the number of processes
over random workloads and reports operations, iterations, and wall time;
iterations must grow linearly with total mobility, not explode.

Each size is run three times — brute-force scalar re-evaluation
(``force_cache=False``), the incremental force cache on the scalar
force path (``use_kernels=False``, PR 2's configuration), and cache
plus the batched array kernels (the default) — so the speedup of each
optimization layer is measured separately (see docs/performance.md).
Decisions are identical in every arm; only the wall time and the
``force_evaluations`` counter differ.

Runnable standalone for CI smoke checks::

    PYTHONPATH=src python benchmarks/bench_scaling.py --processes 2 \
        --out BENCH_scaling.json
"""

import argparse
import json
import pathlib
import time

from conftest import save_artifact
from repro.obs import Tracer

from repro.core.periods import PeriodAssignment
from repro.core.scheduler import ModuloSystemScheduler
from repro.ir.process import Block, Process, SystemSpec
from repro.resources.assignment import ResourceAssignment
from repro.resources.library import default_library
from repro.workloads import random_dfg

PROCESS_COUNTS = (2, 4, 6, 8, 12)
OPS_PER_PROCESS = 12
SLACK = 6
PERIOD = 4


def build_system(n_processes, library):
    system = SystemSpec(name=f"scale{n_processes}")
    for index in range(n_processes):
        graph = random_dfg(OPS_PER_PROCESS, seed=1000 + index)
        deadline = graph.critical_path_length(library.latency_of) + SLACK
        process = Process(name=f"p{index}")
        process.add_block(Block(name="main", graph=graph, deadline=deadline))
        system.add_process(process)
    return system


def run_one(n_processes, library, *, force_cache, use_kernels=True):
    """Schedule one system size; returns a flat metrics dict."""
    system = build_system(n_processes, library)
    assignment = ResourceAssignment.all_global(library, system)
    periods = PeriodAssignment({name: PERIOD for name in assignment.global_types})
    scheduler = ModuloSystemScheduler(
        library, force_cache=force_cache, use_kernels=use_kernels, tracer=Tracer()
    )
    started = time.perf_counter()
    result = scheduler.schedule(system, assignment, periods)
    elapsed = time.perf_counter() - started
    counters = dict(result.telemetry.get("counters", {}))
    hits = counters.get("force_cache_hits", 0)
    misses = counters.get("force_cache_misses", 0)
    probes = hits + misses
    return {
        "processes": n_processes,
        "operations": system.operation_count,
        "iterations": result.iterations,
        "wall_time": elapsed,
        "area": result.total_area(),
        "force_evaluations": counters.get("force_evaluations", 0),
        "cache_hits": hits,
        "cache_misses": misses,
        "cache_hit_rate": (hits / probes) if probes else 0.0,
        "counters": counters,
    }


def run_scaling(process_counts=PROCESS_COUNTS, *, force_cache_ab=True,
                kernels_ab=True):
    """A/B rows per size: brute force, cache-only, cache+kernels.

    Three arms separate the two optimization layers in the perf
    trajectory: ``uncached`` (brute-force scalar scan), ``cached_scalar``
    (incremental cache, scalar force path — PR 2's configuration), and
    ``cached`` (cache plus the batched array kernels, the default).
    ``force_cache_ab=False`` runs only the uncached arm (the
    ``--no-force-cache`` CLI flag); ``kernels_ab=False`` skips the
    cache+kernels arm (the ``--no-kernels`` CLI flag), leaving the
    cached arm on the scalar path.
    """
    library = default_library()
    rows = []
    for n_processes in process_counts:
        uncached = run_one(
            n_processes, library, force_cache=False, use_kernels=False
        )
        cached_scalar = (
            run_one(n_processes, library, force_cache=True, use_kernels=False)
            if force_cache_ab
            else None
        )
        cached = (
            run_one(n_processes, library, force_cache=True, use_kernels=True)
            if force_cache_ab and kernels_ab
            else None
        )
        row = {
            "processes": n_processes,
            "operations": uncached["operations"],
            "iterations": uncached["iterations"],
            "area": uncached["area"],
            "uncached": uncached,
        }
        if cached_scalar is not None:
            # The best available cached arm keeps the historical "cached"
            # key so downstream gates keep reading the same schema.
            row["cached_scalar"] = cached_scalar
            row["cached"] = cached if cached is not None else cached_scalar
            row["speedup"] = (
                uncached["wall_time"] / row["cached"]["wall_time"]
                if row["cached"]["wall_time"]
                else float("inf")
            )
            row["eval_reduction"] = (
                uncached["force_evaluations"] / row["cached"]["force_evaluations"]
                if row["cached"]["force_evaluations"]
                else float("inf")
            )
            if cached is not None:
                row["kernel_speedup"] = (
                    cached_scalar["wall_time"] / cached["wall_time"]
                    if cached["wall_time"]
                    else float("inf")
                )
        rows.append(row)
    return rows


def format_report(rows):
    lines = [
        "A5: scheduler scaling over random multi-process systems",
        f"({OPS_PER_PROCESS} ops/process, slack {SLACK}, all types global, "
        f"P = {PERIOD})",
        "",
        f"{'procs':>5} {'ops':>5} {'iterations':>11} {'area':>6} "
        f"{'cached_s':>9} {'brute_s':>8} {'speedup':>8} {'kern':>6} "
        f"{'evals':>7} {'hit%':>6}",
    ]
    for row in rows:
        cached = row.get("cached")
        if cached is None:
            lines.append(
                f"{row['processes']:>5} {row['operations']:>5} "
                f"{row['iterations']:>11} {row['area']:>6g} "
                f"{'-':>9} {row['uncached']['wall_time']:>8.2f} {'-':>8} "
                f"{'-':>6} "
                f"{row['uncached']['force_evaluations']:>7} {'-':>6}"
            )
        else:
            kernel_speedup = row.get("kernel_speedup")
            kernel_cell = (
                f"{kernel_speedup:>5.1f}x" if kernel_speedup is not None
                else f"{'-':>6}"
            )
            lines.append(
                f"{row['processes']:>5} {row['operations']:>5} "
                f"{row['iterations']:>11} {row['area']:>6g} "
                f"{cached['wall_time']:>9.2f} "
                f"{row['uncached']['wall_time']:>8.2f} "
                f"{row['speedup']:>7.1f}x "
                f"{kernel_cell} "
                f"{cached['force_evaluations']:>7} "
                f"{100 * cached['cache_hit_rate']:>5.1f}%"
            )
    lines.append("")
    lines.append("paper reference point: 124 ops, 71 iterations, 7 s (Pentium 133)")
    return "\n".join(lines)


def test_scaling(benchmark):
    rows = benchmark.pedantic(run_scaling, rounds=1, iterations=1)

    # Iterations are bounded by total mobility: at most ops * (slack + 1).
    for row in rows:
        assert row["iterations"] <= row["operations"] * (SLACK + 2)
        # Decision parity: neither the cache nor the kernels may change
        # the schedule.
        assert row["cached"]["iterations"] == row["uncached"]["iterations"]
        assert row["cached"]["area"] == row["uncached"]["area"]
        assert row["cached_scalar"]["iterations"] == row["uncached"]["iterations"]
        assert row["cached_scalar"]["area"] == row["uncached"]["area"]

    save_artifact("scaling", format_report(rows), data=rows)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--processes",
        type=int,
        nargs="+",
        default=list(PROCESS_COUNTS),
        help="system sizes (number of processes) to run",
    )
    parser.add_argument(
        "--no-force-cache",
        action="store_true",
        help="run only the brute-force arm (skip the cached A/B runs)",
    )
    parser.add_argument(
        "--no-kernels",
        action="store_true",
        help="skip the cache+kernels arm: the cached run uses the scalar "
        "force path (PR 2's configuration), separating the caching and "
        "kernel contributions in the perf trajectory",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="write the machine-readable report to this JSON file",
    )
    args = parser.parse_args(argv)
    rows = run_scaling(
        tuple(args.processes),
        force_cache_ab=not args.no_force_cache,
        kernels_ab=not args.no_kernels,
    )
    print(format_report(rows))
    if args.out is not None:
        args.out.write_text(
            json.dumps(rows, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"wrote {args.out}")
    return rows


if __name__ == "__main__":
    main()
