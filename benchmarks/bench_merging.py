"""Experiment A10 — merging vs modulo sharing (related work, §1.1).

Process merging is the classic way to share across processes, valid only
when all processes are released simultaneously with static timing.  On a
*deterministic* build of the paper system (repeats dropped, common
release) this benchmark compares:

* traditional local scheduling (no sharing),
* modulo scheduling with global sharing (the paper),
* full process merging (maximal sharing, no period constraints).

Merging lower-bounds the reachable area on deterministic systems; the
modulo method pays a bounded premium for surviving *reactive* systems,
where merging is structurally inapplicable (rejected by the API).
"""

import pytest
from conftest import save_artifact

from repro.core.merging import merge_system, schedule_merged
from repro.core.scheduler import ModuloSystemScheduler
from repro.errors import SpecificationError
from repro.resources.assignment import ResourceAssignment
from repro.scheduling.forces import area_weights
from repro.workloads import paper_assignment, paper_periods, paper_system


def run_study():
    system, library = paper_system()
    weights = area_weights(library)

    local = ModuloSystemScheduler(library, weights=weights).schedule(
        system, ResourceAssignment.all_local(library)
    )
    modulo = ModuloSystemScheduler(library, weights=weights).schedule(
        system, paper_assignment(library), paper_periods()
    )

    deterministic, __ = paper_system()
    for process in deterministic.processes:
        process.blocks[0].repeats = False
    __, merged_counts, merged_area = schedule_merged(
        deterministic, library, weights=weights
    )
    return local, modulo, merged_counts, merged_area


def test_merging(benchmark):
    local, modulo, merged_counts, merged_area = benchmark.pedantic(
        run_study, rounds=1, iterations=1
    )

    # Reactive systems refuse to merge: this is the gap the paper fills.
    reactive, __ = paper_system()
    with pytest.raises(SpecificationError, match="unpredictable"):
        merge_system(reactive)

    assert merged_area <= modulo.total_area() <= local.total_area()

    def fmt(counts):
        return ", ".join(f"{c}x {n}" for n, c in counts.items())

    lines = [
        "A10: local vs modulo sharing vs process merging (paper system)",
        "",
        f"{'approach':<18} {'resources':<42} {'area':>5} {'reactive-safe':>14}",
        f"{'local':<18} {fmt(local.instance_counts()):<42} "
        f"{local.total_area():>5g} {'yes':>14}",
        f"{'modulo (paper)':<18} {fmt(modulo.instance_counts()):<42} "
        f"{modulo.total_area():>5g} {'yes':>14}",
        f"{'merged':<18} {fmt(merged_counts):<42} {merged_area:>5g} {'no':>14}",
        "",
        "merging needs simultaneous, statically-timed releases; on the",
        "actual (spontaneously triggered) system it raises SpecificationError",
    ]
    save_artifact("merging", "\n".join(lines))
