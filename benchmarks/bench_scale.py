"""Experiment A8 — selection-scoreboard A/B on the scenario corpus.

PR 8's dirty-cone selection scoreboard removes the per-iteration full
candidate rescan: a scan rescores only the entries inside the commit's
dirty cone and folds every other entry from its cached incumbent.  This
benchmark measures the end-to-end effect on the scenario corpus
(:mod:`repro.workloads.corpus` — filter banks, ODE solver chains, and
I/O-timing kernels with eleven globally shared clusters) at 50, 100,
and 200 processes.

Each size runs twice — full rescan (``use_scoreboard=False``) and
scoreboard (the default) — and the rows assert decision parity:
iterations, area, and every telemetry counter except the scoreboard's
own ``selection_rescored`` / ``selection_skipped`` split must match
bit-for-bit.  The headline number is the wall-time speedup; the target
is >= 3x at 100+ processes on top of the PR 7 kernel path.

Runnable standalone for CI smoke checks::

    PYTHONPATH=src python benchmarks/bench_scale.py --processes 10 20 \
        --out BENCH_scale.json
"""

import argparse
import json
import pathlib
import time

from conftest import save_artifact
from repro.obs import Tracer

from repro.core.scheduler import ModuloSystemScheduler
from repro.workloads import corpus_system

PROCESS_COUNTS = (50, 100, 200)
SEED = 1

#: Counters owned by the scoreboard itself: the only telemetry allowed
#: to differ between the two arms.
SCOREBOARD_COUNTERS = ("selection_rescored", "selection_skipped")


def run_one(instance, *, use_scoreboard):
    """Schedule one corpus instance; returns a flat metrics dict."""
    scheduler = ModuloSystemScheduler(
        instance.library, use_scoreboard=use_scoreboard, tracer=Tracer()
    )
    started = time.perf_counter()
    result = scheduler.schedule(
        instance.system, instance.assignment, instance.periods
    )
    elapsed = time.perf_counter() - started
    counters = dict(result.telemetry.get("counters", {}))
    return {
        "iterations": result.iterations,
        "wall_time": elapsed,
        "area": result.total_area(),
        "force_evaluations": counters.get("force_evaluations", 0),
        "selection_rescored": counters.get("selection_rescored", 0),
        "selection_skipped": counters.get("selection_skipped", 0),
        "counters": counters,
    }


def comparable_counters(arm):
    """An arm's counters minus the scoreboard-owned split."""
    return {
        name: value
        for name, value in arm["counters"].items()
        if name not in SCOREBOARD_COUNTERS
    }


def run_scale(process_counts=PROCESS_COUNTS, *, seed=SEED):
    """A/B rows per corpus size: full rescan vs selection scoreboard."""
    rows = []
    for n_processes in process_counts:
        instance = corpus_system(n_processes, seed=seed)
        n_blocks = sum(
            len(process.blocks) for process in instance.system.processes
        )
        off = run_one(instance, use_scoreboard=False)
        on = run_one(instance, use_scoreboard=True)
        if comparable_counters(on) != comparable_counters(off):
            raise AssertionError(
                f"telemetry parity violated at {n_processes} processes"
            )
        rescored = on["selection_rescored"]
        skipped = on["selection_skipped"]
        entries_scanned = rescored + skipped
        rows.append({
            "processes": n_processes,
            "seed": seed,
            "blocks": n_blocks,
            "operations": instance.system.operation_count,
            "iterations": on["iterations"],
            "area": on["area"],
            "scoreboard_off": off,
            "scoreboard_on": on,
            "speedup": (
                off["wall_time"] / on["wall_time"]
                if on["wall_time"]
                else float("inf")
            ),
            "rescored_fraction": (
                rescored / entries_scanned if entries_scanned else 0.0
            ),
        })
    return rows


def format_report(rows):
    lines = [
        "A8: selection-scoreboard A/B on the scenario corpus",
        "(heterogeneous filter-bank / ODE-chain / I/O-kernel processes, "
        "11 shared clusters)",
        "",
        f"{'procs':>5} {'blocks':>6} {'ops':>6} {'iterations':>11} "
        f"{'area':>8} {'scan_s':>8} {'board_s':>8} {'speedup':>8} "
        f"{'rescored':>9}",
    ]
    for row in rows:
        lines.append(
            f"{row['processes']:>5} {row['blocks']:>6} "
            f"{row['operations']:>6} {row['iterations']:>11} "
            f"{row['area']:>8g} "
            f"{row['scoreboard_off']['wall_time']:>8.2f} "
            f"{row['scoreboard_on']['wall_time']:>8.2f} "
            f"{row['speedup']:>7.2f}x "
            f"{100 * row['rescored_fraction']:>8.2f}%"
        )
    lines.append("")
    lines.append(
        "parity: iterations, area, and all non-scoreboard counters are "
        "bit-identical per row (asserted at generation time)"
    )
    return "\n".join(lines)


def test_scale(benchmark):
    # Smoke sizes: the full 50/100/200 run is the standalone artifact.
    rows = benchmark.pedantic(
        run_scale, kwargs={"process_counts": (10, 20)}, rounds=1, iterations=1
    )
    for row in rows:
        off = row["scoreboard_off"]
        on = row["scoreboard_on"]
        assert on["iterations"] == off["iterations"]
        assert on["area"] == off["area"]
        assert comparable_counters(on) == comparable_counters(off)
        # The scoreboard must actually skip work: the rescored share of
        # all entry visits stays a small fraction on corpus systems.
        assert row["rescored_fraction"] < 0.5
    save_artifact("scale", format_report(rows), data=rows)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--processes",
        type=int,
        nargs="+",
        default=list(PROCESS_COUNTS),
        help="corpus sizes (number of processes) to run",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=SEED,
        help="corpus generator seed",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="write the machine-readable report to this JSON file",
    )
    args = parser.parse_args(argv)
    rows = run_scale(tuple(args.processes), seed=args.seed)
    print(format_report(rows))
    if args.out is not None:
        args.out.write_text(
            json.dumps(rows, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"wrote {args.out}")
    return rows


if __name__ == "__main__":
    main()
