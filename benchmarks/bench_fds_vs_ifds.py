"""Experiment A13 — FDS vs IFDS: the gradual-reduction trade-off (§4).

The paper's §4: "the original algorithm places all operations onto all
time steps within their time frames.  The improved algorithm only
investigates the time steps at the outmost ends of the time frames."
Measured consequence: FDS's per-iteration work grows with the frame
widths (it evaluates every step of every mobile frame) while IFDS's
stays at two evaluations per mobile operation — at the price of many
more (single-step) iterations.  The gradual reduction is what the
modulo modification needs: it never commits an operation outright, so
cross-process coupling effects can keep steering every frame until the
end.  Schedule quality is equal here.
"""

import time

from conftest import save_artifact

import repro.scheduling.fds as fds_module
import repro.scheduling.ifds as ifds_module
from repro.ir.process import Block
from repro.resources.library import default_library
from repro.workloads import elliptic_wave_filter

DEADLINES = (18, 21, 24)


class _ForceCounter:
    """Counts placement_force calls inside one scheduler module."""

    def __init__(self, module):
        self.module = module
        self.calls = 0
        self._original = module.placement_force

    def __enter__(self):
        def counting(*args, **kwargs):
            self.calls += 1
            return self._original(*args, **kwargs)

        self.module.placement_force = counting
        return self

    def __exit__(self, *exc):
        self.module.placement_force = self._original
        return False


def run_comparison():
    library = default_library()
    rows = []
    for deadline in DEADLINES:
        entry = {"deadline": deadline}
        for label, module, scheduler_cls in (
            ("fds", fds_module, fds_module.ForceDirectedScheduler),
            ("ifds", ifds_module, ifds_module.ImprovedForceDirectedScheduler),
        ):
            block = Block(
                name="ewf", graph=elliptic_wave_filter(), deadline=deadline
            )
            with _ForceCounter(module) as counter:
                started = time.perf_counter()
                schedule = scheduler_cls(library).schedule(block)
                elapsed = time.perf_counter() - started
            schedule.validate()
            peaks = schedule.peaks()
            entry[label] = {
                "evaluations": counter.calls,
                "iterations": schedule.iterations,
                "seconds": elapsed,
                "area": peaks.get("adder", 0) + 4 * peaks.get("multiplier", 0),
            }
        rows.append(entry)
    return rows


def test_fds_vs_ifds(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    for entry in rows:
        fds, ifds = entry["fds"], entry["ifds"]
        per_iter_fds = fds["evaluations"] / max(1, fds["iterations"])
        per_iter_ifds = ifds["evaluations"] / max(1, ifds["iterations"])
        # IFDS evaluates only the frame ends: bounded per-iteration work.
        assert per_iter_ifds < per_iter_fds
        # Quality stays in the same class.
        assert ifds["area"] <= fds["area"] + 4
    # FDS's per-iteration cost grows with mobility; IFDS's stays ~flat.
    fds_growth = [e["fds"]["evaluations"] / e["fds"]["iterations"] for e in rows]
    assert fds_growth == sorted(fds_growth)

    lines = [
        "A13: classic FDS vs IFDS on the elliptic wave filter",
        "",
        f"{'deadline':>8} {'FDS ev/it':>10} {'IFDS ev/it':>11} "
        f"{'FDS iters':>10} {'IFDS iters':>11} {'FDS area':>9} {'IFDS area':>10}",
    ]
    for entry in rows:
        fds, ifds = entry["fds"], entry["ifds"]
        lines.append(
            f"{entry['deadline']:>8} "
            f"{fds['evaluations'] / fds['iterations']:>10.1f} "
            f"{ifds['evaluations'] / ifds['iterations']:>11.1f} "
            f"{fds['iterations']:>10} {ifds['iterations']:>11} "
            f"{fds['area']:>9} {ifds['area']:>10}"
        )
    lines.append("")
    lines.append(
        "IFDS bounds per-iteration work at two frame-end evaluations per "
        "mobile op (vs. every step of every frame for FDS) and never "
        "commits an operation outright - the property the modulo coupling "
        "needs; schedule quality is identical"
    )
    save_artifact("fds_vs_ifds", "\n".join(lines))
