"""Experiment O1 — observability overhead of the no-op tracer.

The instrumentation contract (docs/observability.md) is that scheduling
through the default :data:`repro.obs.NULL_TRACER` behaves and costs the
same as before the instrumentation subsystem existed: the no-op path is
one attribute check or empty method call per instrumentation point, and
no events, spans, or counter dicts are ever allocated.

This benchmark times the paper workload four ways — no-op tracer, live
tracer, live tracer publishing to an event bus, and live tracer plus a
full decision audit trail — and records the ratios.  The decision
equality assertion (identical iteration counts and schedules) is the
hard guarantee; the timing ratios are reported as notes, not asserted,
because CI machines are noisy.
"""

import time

from conftest import save_artifact

from repro.core.scheduler import ModuloSystemScheduler
from repro.obs import AuditTrail, EventBus, Tracer
from repro.scheduling.forces import area_weights
from repro.workloads import paper_assignment, paper_periods, paper_system


def _run(tracer=None, audit=None):
    system, library = paper_system()
    scheduler = ModuloSystemScheduler(
        library, weights=area_weights(library), tracer=tracer, audit=audit
    )
    started = time.perf_counter()
    result = scheduler.schedule(system, paper_assignment(library), paper_periods())
    return result, time.perf_counter() - started


def test_noop_tracer_overhead(benchmark):
    (baseline, baseline_s) = benchmark.pedantic(_run, rounds=1, iterations=1)
    tracer = Tracer()
    traced, traced_s = _run(tracer)

    bus = EventBus()
    bus.subscribe(lambda event: None)
    streamed, streamed_s = _run(Tracer(bus=bus))

    audit = AuditTrail()
    audited, audited_s = _run(Tracer(), audit)

    # The hard guarantee: instrumentation observes, never steers.
    for arm in (traced, streamed, audited):
        assert arm.iterations == baseline.iterations
        assert arm.instance_counts() == baseline.instance_counts()
    # One reduction event per scheduler iteration (commit events ride
    # alongside, so the raw event stream is larger).
    assert len(tracer.events_named("reduction")) == traced.iterations
    assert len(audit) == audited.iterations

    def ratio(seconds):
        return seconds / baseline_s if baseline_s > 0 else float("inf")

    lines = [
        "O1: tracing overhead on the paper workload (§7 system)",
        "",
        f"  no-op tracer : {baseline_s:8.3f} s, {baseline.iterations} iterations",
        f"  live tracer  : {traced_s:8.3f} s ({ratio(traced_s):5.2f}x)",
        f"  tracer + bus : {streamed_s:8.3f} s ({ratio(streamed_s):5.2f}x)",
        f"  tracer + audit: {audited_s:7.3f} s ({ratio(audited_s):5.2f}x)",
        "",
        "note: identical iteration counts and instance counts are asserted;",
        "the timing ratios are informational (live tracing pays for event",
        "objects and counter increments, the no-op path pays one attribute",
        "check per instrumentation point).",
    ]
    save_artifact(
        "obs_overhead",
        "\n".join(lines),
        data={
            "noop_seconds": baseline_s,
            "traced_seconds": traced_s,
            "streamed_seconds": streamed_s,
            "audited_seconds": audited_s,
            "ratio": ratio(traced_s),
            "iterations": baseline.iterations,
            "counters": dict(traced.telemetry.get("counters", {})),
        },
    )
