"""Experiment O1 — observability overhead of the no-op tracer.

The instrumentation contract (docs/observability.md) is that scheduling
through the default :data:`repro.obs.NULL_TRACER` behaves and costs the
same as before the instrumentation subsystem existed: the no-op path is
one attribute check or empty method call per instrumentation point, and
no events, spans, or counter dicts are ever allocated.

This benchmark times the paper workload three ways — no-op tracer,
live tracer, live tracer + JSONL export — and records the ratios.  The
decision equality assertion (identical iteration counts and schedules)
is the hard guarantee; the timing ratio is reported as a note, not
asserted, because CI machines are noisy.
"""

import time

from conftest import save_artifact

from repro.core.scheduler import ModuloSystemScheduler
from repro.obs import Tracer
from repro.scheduling.forces import area_weights
from repro.workloads import paper_assignment, paper_periods, paper_system


def _run(tracer=None):
    system, library = paper_system()
    scheduler = ModuloSystemScheduler(
        library, weights=area_weights(library), tracer=tracer
    )
    started = time.perf_counter()
    result = scheduler.schedule(system, paper_assignment(library), paper_periods())
    return result, time.perf_counter() - started


def test_noop_tracer_overhead(benchmark):
    (baseline, baseline_s) = benchmark.pedantic(_run, rounds=1, iterations=1)
    tracer = Tracer()
    traced, traced_s = _run(tracer)

    # The hard guarantee: instrumentation observes, never steers.
    assert traced.iterations == baseline.iterations
    assert traced.instance_counts() == baseline.instance_counts()
    assert len(tracer.events) == traced.iterations

    ratio = traced_s / baseline_s if baseline_s > 0 else float("inf")
    lines = [
        "O1: tracing overhead on the paper workload (§7 system)",
        "",
        f"  no-op tracer : {baseline_s:8.3f} s, {baseline.iterations} iterations",
        f"  live tracer  : {traced_s:8.3f} s, {traced.iterations} iterations",
        f"  ratio        : {ratio:8.2f}x",
        "",
        "note: identical iteration counts and instance counts are asserted;",
        "the timing ratio is informational (live tracing pays for event",
        "objects and counter increments, the no-op path pays one attribute",
        "check per instrumentation point).",
    ]
    save_artifact(
        "obs_overhead",
        "\n".join(lines),
        data={
            "noop_seconds": baseline_s,
            "traced_seconds": traced_s,
            "ratio": ratio,
            "iterations": baseline.iterations,
            "counters": dict(traced.telemetry.get("counters", {})),
        },
    )
