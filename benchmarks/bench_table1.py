"""Experiment T1/X1 — Table 1 of the paper (§7).

Regenerates the multi-process scheduling results table: per global
resource type the per-process slot authorizations and instance counts,
plus the global-vs-local area comparison and the iteration/runtime
numbers.  Paper reference values: global 4 adders + 1 subtracter + 3
multipliers (area 17) versus local 6 + 2 + 5 (area 28); local is 1.65x
more expensive.  The benchmark timing measures one full global run of the
coupled modified IFDS (the paper reports 7 s on a Pentium 133).
"""

from conftest import save_artifact, telemetry_payload

from repro.analysis.tables import table1
from repro.core.scheduler import ModuloSystemScheduler
from repro.scheduling.forces import area_weights
from repro.workloads import paper_assignment, paper_periods, paper_system


def run_global_once():
    system, library = paper_system()
    scheduler = ModuloSystemScheduler(library, weights=area_weights(library))
    return scheduler.schedule(system, paper_assignment(library), paper_periods())


def test_table1(benchmark, paper_comparison):
    """T1 + X1: regenerate Table 1 and time the global scheduling run."""
    result = benchmark.pedantic(run_global_once, rounds=1, iterations=1)
    assert result.iterations > 0

    global_counts = paper_comparison.global_result.instance_counts()
    local_counts = paper_comparison.local_result.instance_counts()

    # Shape assertions against the paper (see DESIGN.md for the targets).
    assert local_counts == {"adder": 6, "subtracter": 2, "multiplier": 5}
    assert global_counts["adder"] <= 4
    assert global_counts["subtracter"] <= 1
    assert global_counts["multiplier"] <= 3
    assert paper_comparison.area_ratio >= 1.65

    lines = [
        table1(paper_comparison.global_result),
        "",
        paper_comparison.render(),
        "",
        "paper reference: global 4+/1-/3* area 17 | local 6+/2-/5* area 28 "
        "| ratio 1.65x",
    ]
    save_artifact(
        "table1",
        "\n".join(lines),
        data={
            "global": telemetry_payload(paper_comparison.global_result),
            "local": telemetry_payload(paper_comparison.local_result),
            "area_ratio": paper_comparison.area_ratio,
        },
    )
