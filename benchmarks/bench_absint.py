"""Residue-pressure analysis benchmark (docs/analysis.md).

Measures what the abstract interpretation of ``repro.analysis.absint``
buys each of its three cheap consumers on the paper system:

* **bound tightness** — the interval-strengthened area lower bound
  versus the plain averaging bound, over every candidate of the
  eq. 3-filtered paper period sweep (``tightness.strictly_tighter``);
* **sweep pruning** — the same pruned serial sweep run twice, once per
  bound (``ExplorationEngine(interval_bounds=...)``); both arms are
  admissible so the best area must be identical, and the interval
  arm's pruning rate must clear the 81/125 acceptance floor;
* **certifier fast path** — how many safety proofs over the paper
  system and a few corpus instances come from the zero-enumeration
  interval bound (``method: "interval"``), each re-verified by the
  independent checker.

Runnable standalone for CI smoke checks::

    PYTHONPATH=src python benchmarks/bench_absint.py --out BENCH_absint.json
"""

import argparse
import json
import pathlib
import sys
import time

from conftest import save_artifact

from repro.analysis.bounds import area_lower_bound
from repro.analysis.static import METHOD_INTERVAL, certify, check_certificate
from repro.api import Problem
from repro.core.periods import enumerate_period_assignments
from repro.parallel import ExplorationEngine
from repro.workloads import (
    corpus_system,
    paper_assignment,
    paper_periods,
    paper_system,
)

#: Acceptance floor on the interval arm's pruning rate: the averaging
#: baseline of the original 125-candidate paper sweep pruned 81.
PRUNE_RATE_FLOOR = 81 / 125

#: Corpus instances certified (besides the paper system) for the
#: fast-path hit rate.
CORPUS_SEEDS = (0, 1, 2)


def paper_problem():
    system, library = paper_system()
    return Problem(system, library, paper_assignment(library), paper_periods())


def corpus_problem(seed):
    instance = corpus_system(3, seed=seed)
    return Problem(
        instance.system,
        instance.library,
        instance.assignment,
        instance.periods,
    )


def measure_tightness(problem, candidates):
    """Averaging vs interval area bound over every sweep candidate."""
    tighter = 0
    sum_avg = 0.0
    sum_interval = 0.0
    max_gain = 0.0
    for candidate in candidates:
        avg = area_lower_bound(
            problem.system,
            problem.library,
            problem.assignment,
            candidate,
            use_intervals=False,
        )
        interval = area_lower_bound(
            problem.system,
            problem.library,
            problem.assignment,
            candidate,
            use_intervals=True,
        )
        assert interval >= avg, (candidate.as_dict, avg, interval)
        sum_avg += avg
        sum_interval += interval
        max_gain = max(max_gain, interval - avg)
        if interval > avg:
            tighter += 1
    count = len(candidates)
    return {
        "candidates": count,
        "strictly_tighter": tighter,
        "mean_averaging_bound": sum_avg / count,
        "mean_interval_bound": sum_interval / count,
        "max_gain": max_gain,
    }


def run_sweep_arm(problem, candidates, *, interval_bounds):
    """One pruned serial sweep; serial keeps the pruning deterministic."""
    engine = ExplorationEngine(
        problem, workers=1, prune=True, interval_bounds=interval_bounds
    )
    started = time.perf_counter()
    outcome = engine.sweep(candidates)
    return {
        "interval_bounds": interval_bounds,
        "wall_time": time.perf_counter() - started,
        "evaluated": outcome.evaluated,
        "pruned": outcome.pruned,
        "failed": outcome.failed,
        "best_area": outcome.best_area,
        "best_periods": outcome.best_periods,
    }


def measure_fastpath(problems):
    """Fast-path proof share across certified subjects, checker-verified."""
    subjects = []
    proofs = 0
    interval_proofs = 0
    for name, problem in problems:
        result = problem.schedule()
        certificate = certify(result)
        assert certificate.safe, f"{name} must certify safe on derived pools"
        problems_found = check_certificate(certificate, result)
        hits = sum(
            1 for proof in certificate.types if proof.method == METHOD_INTERVAL
        )
        proofs += len(certificate.types)
        interval_proofs += hits
        subjects.append(
            {
                "name": name,
                "types": len(certificate.types),
                "interval_proofs": hits,
                "checker_ok": not problems_found,
            }
        )
    return {
        "subjects": subjects,
        "proofs": proofs,
        "interval_proofs": interval_proofs,
        "hit_rate": interval_proofs / proofs if proofs else 0.0,
    }


def run_bench():
    problem = paper_problem()
    candidates = enumerate_period_assignments(
        problem.system, problem.assignment, limit=10000
    )

    tightness = measure_tightness(problem, candidates)
    averaging = run_sweep_arm(problem, candidates, interval_bounds=False)
    interval = run_sweep_arm(problem, candidates, interval_bounds=True)
    fastpath = measure_fastpath(
        [("paper", paper_problem())]
        + [(f"corpus-s{seed}", corpus_problem(seed)) for seed in CORPUS_SEEDS]
    )

    prune_rate = interval["pruned"] / len(candidates)
    return {
        "workload": {
            "system": "paper",
            "candidates": len(candidates),
            "global_types": len(problem.assignment.global_types),
        },
        "tightness": tightness,
        "sweep": {
            "candidates": len(candidates),
            "best_area": interval["best_area"],
            "averaging": averaging,
            "interval": interval,
            "prune_rate_interval": prune_rate,
            "prune_rate_floor": PRUNE_RATE_FLOOR,
            "best_area_identical": averaging["best_area"]
            == interval["best_area"],
        },
        "fastpath": fastpath,
    }


def render(result):
    tight = result["tightness"]
    sweep = result["sweep"]
    fast = result["fastpath"]
    lines = [
        "residue-pressure analysis bench "
        "(bound tightness, sweep pruning A/B, certifier fast path)",
        f"  workload: paper sweep, {sweep['candidates']} candidates",
        f"  tightness: interval bound strictly tighter on "
        f"{tight['strictly_tighter']}/{tight['candidates']} candidates "
        f"(mean {tight['mean_averaging_bound']:.2f} -> "
        f"{tight['mean_interval_bound']:.2f}, max gain "
        f"{tight['max_gain']:g})",
    ]
    for arm_name in ("averaging", "interval"):
        arm = sweep[arm_name]
        lines.append(
            f"  sweep[{arm_name}]: evaluated {arm['evaluated']}, "
            f"pruned {arm['pruned']}, best area {arm['best_area']:g}, "
            f"{arm['wall_time']:.2f} s"
        )
    lines.append(
        f"  prune rate {sweep['prune_rate_interval']:.0%} "
        f"(floor {sweep['prune_rate_floor']:.0%}), "
        f"best areas identical={sweep['best_area_identical']}"
    )
    lines.append(
        f"  fast path: {fast['interval_proofs']}/{fast['proofs']} proofs "
        f"from the interval bound ({fast['hit_rate']:.0%}), all "
        f"checker-verified="
        f"{all(s['checker_ok'] for s in fast['subjects'])}"
    )
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=None,
                        help="also write the JSON artifact to this path")
    args = parser.parse_args(argv)

    result = run_bench()
    text = render(result)
    save_artifact("bench_absint", text, data=result)
    if args.out:
        pathlib.Path(args.out).write_text(
            json.dumps(result, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    sweep = result["sweep"]
    ok = (
        sweep["best_area_identical"]
        and sweep["prune_rate_interval"] >= sweep["prune_rate_floor"]
        and sweep["averaging"]["failed"] == 0
        and sweep["interval"]["failed"] == 0
        and all(s["checker_ok"] for s in result["fastpath"]["subjects"])
    )
    if not ok:
        print("ABSINT BENCH FAILED: invariant violated", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
