"""Parallel period-sweep benchmark (docs/parallel.md).

Measures the two accelerations of :class:`repro.parallel.
ExplorationEngine` on one ≥50-candidate period sweep:

* **parallelism** — the same exhaustive sweep fanned over worker
  processes (speedup bounded by the machine's core count; the JSON
  artifact records ``cpu_count`` so a 1-core container's numbers are
  not misread);
* **bound-based pruning** — candidates whose admissible area lower
  bound meets the incumbent best are skipped without scheduling.

Three arms, all required to agree on the best area and best periods
(the engine's documented parity guarantee):

1. ``serial``            — workers=1, pruning off (the exhaustive baseline);
2. ``parallel``          — workers=N, pruning off   → ``speedup_parallel``;
3. ``parallel_pruned``   — workers=N, pruning on    → ``speedup_total``.

Runnable standalone for CI smoke checks::

    PYTHONPATH=src python benchmarks/bench_sweep_parallel.py --smoke \
        --workers 2 --out BENCH_sweep.json
"""

import argparse
import json
import os
import pathlib
import time

from conftest import save_artifact

from repro.api import Problem
from repro.core.periods import (
    enumerate_period_assignments,
    suggest_periods,
)
from repro.ir.process import Block, Process, SystemSpec
from repro.parallel import ExplorationEngine
from repro.resources.assignment import ResourceAssignment
from repro.resources.library import default_library
from repro.workloads import random_dfg

PROCESSES = 3
OPS_PER_PROCESS = 8
DEADLINE = 16
WORKERS = 4
SMOKE_PROCESSES = 2
SMOKE_OPS = 5
SMOKE_DEADLINE = 8


def build_problem(n_processes, ops, deadline):
    """A random multi-process system with every resource type global."""
    library = default_library()
    system = SystemSpec(name=f"sweep{n_processes}x{ops}")
    for index in range(n_processes):
        graph = random_dfg(ops, seed=42 + index)
        process = Process(name=f"p{index}")
        process.add_block(Block(name="main", graph=graph, deadline=deadline))
        system.add_process(process)
    assignment = ResourceAssignment.all_global(library, system)
    periods = suggest_periods(system, assignment)
    return Problem(
        system=system, library=library, assignment=assignment, periods=periods
    )


def run_arm(problem, candidates, *, workers, prune):
    """One sweep configuration; returns a flat metrics dict."""
    engine = ExplorationEngine(problem, workers=workers, prune=prune)
    started = time.perf_counter()
    outcome = engine.sweep(candidates)
    elapsed = time.perf_counter() - started
    return {
        "workers": workers,
        "prune": prune,
        "wall_time": elapsed,
        "compute_time": outcome.telemetry.get("wall_time", 0.0),
        "candidates": len(outcome.results),
        "evaluated": outcome.evaluated,
        "pruned": outcome.pruned,
        "failed": outcome.failed,
        "best_area": outcome.best_area,
        "best_periods": outcome.best_periods,
        "worker_summaries": {
            str(pid): summary
            for pid, summary in outcome.telemetry.get(
                "worker_summaries", {}
            ).items()
        },
    }


def run_bench(*, workers=WORKERS, smoke=False):
    """All three arms plus the parity check; returns the report dict."""
    if smoke:
        problem = build_problem(SMOKE_PROCESSES, SMOKE_OPS, SMOKE_DEADLINE)
    else:
        problem = build_problem(PROCESSES, OPS_PER_PROCESS, DEADLINE)
    candidates = enumerate_period_assignments(
        problem.system, problem.assignment, limit=10000
    )
    if not smoke and len(candidates) < 50:
        raise AssertionError(
            f"benchmark sweep needs >= 50 candidates, got {len(candidates)}"
        )
    serial = run_arm(problem, candidates, workers=1, prune=False)
    parallel = run_arm(problem, candidates, workers=workers, prune=False)
    pruned = run_arm(problem, candidates, workers=workers, prune=True)

    # Parity: pruning is admissible and parallelism only reorders, so
    # every arm must land on the same best area and best periods.
    for arm in (parallel, pruned):
        assert arm["best_area"] == serial["best_area"], (serial, arm)
        assert arm["best_periods"] == serial["best_periods"], (serial, arm)
        assert arm["failed"] == 0, arm

    return {
        "cpu_count": os.cpu_count(),
        "workers": workers,
        "smoke": smoke,
        "candidates": len(candidates),
        "best_area": serial["best_area"],
        "best_periods": serial["best_periods"],
        "serial": serial,
        "parallel": parallel,
        "parallel_pruned": pruned,
        "speedup_parallel": _speedup(serial, parallel),
        "speedup_total": _speedup(serial, pruned),
        "pruned_count": pruned["pruned"],
    }


def _speedup(baseline, arm):
    return baseline["wall_time"] / arm["wall_time"] if arm["wall_time"] else 0.0


def format_report(report):
    lines = [
        "parallel period sweep: exhaustive serial vs fan-out vs pruned",
        f"({report['candidates']} candidates, {report['workers']} workers, "
        f"{report['cpu_count']} cpu cores)",
        "",
        f"{'arm':<16} {'wall_s':>8} {'evaluated':>10} {'pruned':>7} "
        f"{'speedup':>8}",
    ]
    for name, key in (
        ("serial", "serial"),
        ("parallel", "parallel"),
        ("parallel+prune", "parallel_pruned"),
    ):
        arm = report[key]
        speedup = _speedup(report["serial"], arm)
        lines.append(
            f"{name:<16} {arm['wall_time']:>8.2f} {arm['evaluated']:>10} "
            f"{arm['pruned']:>7} {speedup:>7.1f}x"
        )
    lines.append("")
    lines.append(
        f"best: {report['best_periods']} (area {report['best_area']:g}) "
        "-- identical in all arms"
    )
    if report["cpu_count"] == 1:
        lines.append(
            "note: single-core machine; the parallel arm cannot beat "
            "serial here, the pruning arm carries the speedup"
        )
    return "\n".join(lines)


def test_sweep_parallel(benchmark):
    report = benchmark.pedantic(
        lambda: run_bench(workers=2, smoke=True), rounds=1, iterations=1
    )
    assert report["parallel"]["best_area"] == report["serial"]["best_area"]
    assert report["parallel_pruned"]["best_area"] == report["serial"]["best_area"]
    save_artifact("sweep_parallel", format_report(report), data=report)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers",
        type=int,
        default=WORKERS,
        help="worker processes for the parallel arms (default %(default)s)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny system for CI: fast, still checks arm parity",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="write the machine-readable report to this JSON file",
    )
    args = parser.parse_args(argv)
    report = run_bench(workers=args.workers, smoke=args.smoke)
    print(format_report(report))
    if args.out is not None:
        args.out.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {args.out}")
    return report


if __name__ == "__main__":
    main()
