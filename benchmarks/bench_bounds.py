"""Experiment A7 — optimality certification via lower bounds.

Compares the instance counts achieved by the modulo scheduler on the
paper system against averaging lower bounds that hold for *any* valid
schedule.  A zero gap proves the count optimal; the paper itself offers
no such certificate, so this quantifies how much (if any) headroom the
heuristic leaves.
"""

from conftest import save_artifact

from repro.analysis.bounds import bound_report


def test_bounds(benchmark, paper_comparison):
    result = paper_comparison.global_result
    report = benchmark.pedantic(
        bound_report, args=(result,), rounds=20, iterations=1
    )

    for type_name, entry in report.items():
        assert entry["achieved"] >= entry["bound"], type_name

    local_report = bound_report(paper_comparison.local_result)

    lines = [
        "A7: achieved instance counts vs averaging lower bounds",
        "",
        "global assignment:",
        f"{'type':<12} {'achieved':>9} {'bound':>6} {'gap':>4}",
    ]
    for type_name, entry in report.items():
        gap = entry["achieved"] - entry["bound"]
        lines.append(
            f"{type_name:<12} {entry['achieved']:>9} {entry['bound']:>6} {gap:>4}"
        )
    lines.append("")
    lines.append("local baseline:")
    lines.append(f"{'type':<12} {'achieved':>9} {'bound':>6} {'gap':>4}")
    for type_name, entry in local_report.items():
        gap = entry["achieved"] - entry["bound"]
        lines.append(
            f"{type_name:<12} {entry['achieved']:>9} {entry['bound']:>6} {gap:>4}"
        )
    lines.append("")
    lines.append(
        "gap 0 certifies the count optimal for the given periods and scopes"
    )
    save_artifact("bounds", "\n".join(lines))
