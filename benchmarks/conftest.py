"""Shared fixtures and artifact handling for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (see
DESIGN.md, "Experiment index").  Regenerated artifacts are printed and
also written to ``benchmarks/out/<name>.txt`` so they can be inspected
and diffed without re-running.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis.compare import Comparison, compare_scopes
from repro.scheduling.forces import area_weights
from repro.workloads import paper_assignment, paper_periods, paper_system

OUT_DIR = pathlib.Path(__file__).parent / "out"


def save_artifact(name: str, text: str) -> None:
    """Persist a regenerated table/figure and echo it to stdout."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n--- artifact {path.name} ---")
    print(text)


@pytest.fixture(scope="session")
def paper_comparison() -> Comparison:
    """The §7 experiment, scheduled once per benchmark session."""
    system, library = paper_system()
    return compare_scopes(
        system,
        library,
        paper_assignment(library),
        paper_periods(),
        weights=area_weights(library),
    )
