"""Shared fixtures and artifact handling for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (see
DESIGN.md, "Experiment index").  Regenerated artifacts are printed and
also written to ``benchmarks/out/<name>.txt`` so they can be inspected
and diffed without re-running.  Benchmarks that produce structured
numbers (counters, wall times) additionally persist a machine-readable
``benchmarks/out/<name>.json`` via :func:`save_artifact_json` (or the
``data=`` argument of :func:`save_artifact`), so downstream tooling can
track regressions without parsing the text reports.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.analysis.compare import Comparison, compare_scopes
from repro.obs import Tracer
from repro.scheduling.forces import area_weights
from repro.workloads import paper_assignment, paper_periods, paper_system

OUT_DIR = pathlib.Path(__file__).parent / "out"


def save_artifact(name: str, text: str, data=None) -> None:
    """Persist a regenerated table/figure and echo it to stdout.

    ``data`` (any JSON-serializable mapping) is written alongside as
    ``<name>.json``.
    """
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n--- artifact {path.name} ---")
    print(text)
    if data is not None:
        save_artifact_json(name, data)


def save_artifact_json(name: str, payload) -> pathlib.Path:
    """Persist a machine-readable artifact as ``benchmarks/out/<name>.json``."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{name}.json"
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"--- artifact {path.name} ---")
    return path


def telemetry_payload(result) -> dict:
    """Counters + wall time of one scheduling run, JSON-ready.

    Pulls from the ``telemetry`` summary the scheduler attaches to every
    :class:`repro.core.result.SystemSchedule`.
    """
    telemetry = dict(result.telemetry)
    return {
        "iterations": result.iterations,
        "wall_time": result.wall_time,
        "phase_times": telemetry.get("phase_times", {}),
        "counters": telemetry.get("counters", {}),
        "area": result.total_area(),
        "instance_counts": result.instance_counts(),
    }


@pytest.fixture(scope="session")
def paper_comparison() -> Comparison:
    """The §7 experiment, scheduled once per benchmark session.

    Runs fully instrumented so every benchmark can report counters and
    per-phase times out of the results' telemetry summaries.
    """
    system, library = paper_system()
    return compare_scopes(
        system,
        library,
        paper_assignment(library),
        paper_periods(),
        weights=area_weights(library),
        tracer=Tracer(),
    )
