"""Experiment A9 — start-offset optimization (extension beyond the paper).

The paper pins every block start to offset 0 of its grid.  Rotating a
process's start grid by a constant offset rotates all of its periodic
authorizations without touching any block schedule, so offsets that
interleave the per-process peaks can shrink the pools for free.

Two findings on the paper system:

* after the *full* two-part modification the demand is already flat —
  no rotation improves it (the modified forces leave no offset slack);
* applied on top of the *unmodified* scheduler, offsets alone recover a
  large share of the saving (27 → 17, coincidentally the paper's global
  area), showing alignment-by-rotation is a weaker, schedule-agnostic
  cousin of the paper's alignment-by-force.
"""

from conftest import save_artifact

from repro.core.offsets import optimize_offsets
from repro.core.scheduler import ModuloSystemScheduler
from repro.scheduling.forces import area_weights
from repro.workloads import paper_assignment, paper_periods, paper_system


def run_offset_study():
    rows = []
    for label, alignment, balancing in (
        ("full modification", True, True),
        ("no modification", False, False),
    ):
        system, library = paper_system()
        result = ModuloSystemScheduler(
            library,
            weights=area_weights(library),
            periodical_alignment=alignment,
            global_balancing=balancing,
        ).schedule(system, paper_assignment(library), paper_periods())
        outcome = optimize_offsets(result, exhaustive_limit=1)  # greedy
        rows.append((label, outcome))
    return rows


def test_offsets(benchmark):
    rows = benchmark.pedantic(run_offset_study, rounds=1, iterations=1)

    outcomes = dict(rows)
    # Offsets never hurt, and they substantially repair the unmodified run.
    for outcome in outcomes.values():
        assert outcome.area_after <= outcome.area_before
    assert outcomes["no modification"].improved
    assert outcomes["no modification"].area_after <= 20

    lines = [
        "A9: start-offset optimization on top of the scheduler (extension)",
        "",
        f"{'configuration':<20} {'area before':>11} {'area after':>10} "
        f"{'offsets':<24}",
    ]
    for label, outcome in rows:
        offsets = ",".join(
            f"{k}={v}" for k, v in outcome.offsets.items() if v
        ) or "(all 0)"
        lines.append(
            f"{label:<20} {outcome.area_before:>11g} {outcome.area_after:>10g} "
            f"{offsets:<24}"
        )
    lines.append("")
    lines.append(
        "the full modification leaves no rotation slack; rotation alone "
        "recovers much of the sharing the forces would otherwise arrange"
    )
    save_artifact("offsets", "\n".join(lines))
