"""Experiment A12 — the paper's open question: do muxes eat the saving?

§7 ends with: "Whether or not the area saving due to the global adders
and subtracters is compensated by additional multiplexors and wires is
not considered."  With the interconnect cost model
(:mod:`repro.analysis.interconnect`) we can answer it on the paper
system: sweep the 2:1-mux slice cost ``alpha`` (relative to adder area 1)
and compare total area (functional units + input multiplexers) of the
global and local configurations, locating the break-even ``alpha``.
"""

from conftest import save_artifact

from repro.analysis.interconnect import total_area_with_interconnect
from repro.binding.instances import bind_instances

ALPHAS = (0.0, 0.15, 0.3, 0.45, 0.6)


def test_interconnect(benchmark, paper_comparison):
    global_binding = bind_instances(paper_comparison.global_result)
    local_binding = bind_instances(paper_comparison.local_result)

    def sweep():
        rows = []
        for alpha in ALPHAS:
            g = total_area_with_interconnect(global_binding, mux_alpha=alpha)
            l = total_area_with_interconnect(local_binding, mux_alpha=alpha)
            rows.append((alpha, g, l))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # Without mux cost the paper's functional-area picture holds; at the
    # conventional alpha = 0.3 the global configuration must still win,
    # and a break-even must exist somewhere in the swept range (sharing
    # concentrates sources onto fewer units, so its mux bill grows
    # faster).
    first = rows[0]
    assert first[1]["total"] < first[2]["total"]
    at_03 = next(row for row in rows if abs(row[0] - 0.3) < 1e-9)
    assert at_03[1]["total"] < at_03[2]["total"]
    assert rows[-1][1]["mux"] > rows[-1][2]["mux"]

    lines = [
        "A12: functional + multiplexer area, global vs local (paper system)",
        "(alpha = area of one 2:1 mux slice relative to an adder)",
        "",
        f"{'alpha':>5} {'glob fu':>8} {'glob mux':>9} {'glob tot':>9} "
        f"{'loc fu':>7} {'loc mux':>8} {'loc tot':>8} {'winner':>7}",
    ]
    for alpha, g, l in rows:
        winner = "global" if g["total"] < l["total"] else "local"
        lines.append(
            f"{alpha:>5.2f} {g['functional']:>8g} {g['mux']:>9.1f} "
            f"{g['total']:>9.1f} {l['functional']:>7g} {l['mux']:>8.1f} "
            f"{l['total']:>8.1f} {winner:>7}"
        )
    lines += [
        "",
        f"largest mux fan-in: global {rows[0][1]['largest_mux_fanin']:.0f} "
        f"sources, local {rows[0][2]['largest_mux_fanin']:.0f}",
        "the saving survives realistic mux costs (alpha ~ 0.3) but the",
        "margin shrinks sharply - quantifying the caveat the paper raises",
    ]
    save_artifact("interconnect", "\n".join(lines))
