"""Experiment A3 — ablation of the IFDS knobs (§4, §7).

The paper runs the modified IFDS with a look-ahead factor and global
spring constants (our reconstruction: 1/3 and area weights).  This
benchmark scans the look-ahead factor and the weighting scheme on a
single elliptic wave filter block at two deadlines and reports the
resulting adder/multiplier peaks — the per-block quality the system
result builds on.
"""

from conftest import save_artifact

from repro.ir.process import Block
from repro.resources.library import default_library
from repro.scheduling.forces import area_weights, uniform_weights
from repro.scheduling.ifds import ImprovedForceDirectedScheduler
from repro.workloads import elliptic_wave_filter

LOOKAHEADS = (0.0, 1.0 / 3.0, 1.0)
DEADLINES = (17, 21, 30)


def run_scan():
    library = default_library()
    rows = []
    for deadline in DEADLINES:
        for lookahead in LOOKAHEADS:
            for weight_name, weights in (
                ("uniform", uniform_weights(library)),
                ("area", area_weights(library)),
            ):
                block = Block(
                    name="ewf", graph=elliptic_wave_filter(), deadline=deadline
                )
                scheduler = ImprovedForceDirectedScheduler(
                    library, lookahead=lookahead, weights=weights
                )
                schedule = scheduler.schedule(block)
                schedule.validate()
                peaks = schedule.peaks()
                rows.append(
                    (
                        deadline,
                        lookahead,
                        weight_name,
                        peaks.get("adder", 0),
                        peaks.get("multiplier", 0),
                        peaks.get("adder", 0) + 4 * peaks.get("multiplier", 0),
                    )
                )
    return rows


def test_lookahead_ablation(benchmark):
    rows = benchmark.pedantic(run_scan, rounds=1, iterations=1)

    # Every configuration yields a valid schedule; area-weighted runs must
    # never need more multipliers than the worst uniform run at the same
    # deadline (the point of global spring constants).
    for deadline in DEADLINES:
        uniform_mults = [r[4] for r in rows if r[0] == deadline and r[2] == "uniform"]
        area_mults = [r[4] for r in rows if r[0] == deadline and r[2] == "area"]
        assert min(area_mults) <= max(uniform_mults)

    lines = [
        "A3: IFDS knob scan on one elliptic wave filter block",
        "",
        f"{'deadline':>8} {'lookahead':>10} {'weights':>8} {'adders':>7} "
        f"{'mults':>6} {'area':>6}",
    ]
    for deadline, lookahead, weight_name, adders, mults, area in rows:
        lines.append(
            f"{deadline:>8} {lookahead:>10.3f} {weight_name:>8} {adders:>7} "
            f"{mults:>6} {area:>6}"
        )
    save_artifact("lookahead_ablation", "\n".join(lines))
