"""Experiment A2 — ablation of the two-part IFDS modification (§5).

Schedules the paper system with the full modification, with global
balancing disabled (alignment only), and with both parts disabled
(classic forces; instance counts still derived globally).  Shows how much
of the area saving each part contributes.
"""

from conftest import save_artifact

from repro.core.scheduler import ModuloSystemScheduler
from repro.scheduling.forces import area_weights
from repro.workloads import paper_assignment, paper_periods, paper_system

CONFIGS = (
    ("full modification", True, True),
    ("alignment only", True, False),
    ("no modification", False, False),
)


def run_ablation():
    rows = []
    for label, alignment, balancing in CONFIGS:
        system, library = paper_system()
        scheduler = ModuloSystemScheduler(
            library,
            weights=area_weights(library),
            periodical_alignment=alignment,
            global_balancing=balancing,
        )
        result = scheduler.schedule(
            system, paper_assignment(library), paper_periods()
        )
        counts = result.instance_counts()
        rows.append(
            (
                label,
                counts.get("adder", 0),
                counts.get("subtracter", 0),
                counts.get("multiplier", 0),
                result.total_area(),
            )
        )
    return rows


def test_modification_ablation(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    areas = {label: area for label, *_counts, area in rows}
    # The full modification must not lose to running without it.
    assert areas["full modification"] <= areas["no modification"]

    lines = [
        "A2: ablation of the two-part modification (paper system, P = 15)",
        "",
        f"{'configuration':<20} {'adders':>7} {'subs':>5} {'mults':>6} {'area':>6}",
    ]
    for label, adders, subs, mults, area in rows:
        lines.append(f"{label:<20} {adders:>7} {subs:>5} {mults:>6} {area:>6g}")
    lines.append("")
    lines.append(
        "counts are always derived from the folded authorizations; the flags "
        "only change whether the forces see the modulo/balanced distributions"
    )
    save_artifact("modification_ablation", "\n".join(lines))
