"""CI bench-regression gate.

Compares a freshly generated benchmark JSON against a committed
baseline and exits non-zero when the run regressed by more than the
tolerance (default 25%) on either axis:

* **evaluation counts** — force evaluations, scheduler iterations,
  sweep candidates evaluated.  The workloads are seeded and the
  scheduler deterministic, so these reproduce bit-for-bit across
  machines; growth means the algorithm started doing more work.
* **wall time** — compared only through dimensionless same-run ratios
  (cached/uncached for the scaling bench, pruned/unpruned for the
  sweep bench, vector/scalar and kernel/scalar for the kernels bench),
  so a slower or faster CI machine cannot trip or mask the gate; only
  a change in the *relative* benefit of the optimization can.

Solution quality (area, best periods) is deterministic and must not
regress at all.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py \
        --kind scaling --current BENCH_scaling.json \
        --baseline benchmarks/baselines/BENCH_scaling_smoke.json
    PYTHONPATH=src python benchmarks/check_regression.py \
        --kind sweep --current BENCH_sweep.json \
        --baseline benchmarks/baselines/BENCH_sweep_smoke.json
    PYTHONPATH=src python benchmarks/check_regression.py \
        --kind kernels --current BENCH_kernel.json \
        --baseline benchmarks/baselines/BENCH_kernel_smoke.json
    PYTHONPATH=src python benchmarks/check_regression.py \
        --kind scale --current BENCH_scale.json \
        --baseline benchmarks/baselines/BENCH_scale_smoke.json
    PYTHONPATH=src python benchmarks/check_regression.py \
        --kind service --current BENCH_service.json \
        --baseline benchmarks/baselines/BENCH_service_smoke.json
    PYTHONPATH=src python benchmarks/check_regression.py \
        --kind absint --current BENCH_absint.json \
        --baseline benchmarks/baselines/BENCH_absint_smoke.json

The committed baselines under ``benchmarks/baselines/`` are smoke-scale
runs matching the CI invocations; the root-level ``BENCH_scaling.json``
/ ``BENCH_sweep.json`` remain the full-scale reference artifacts quoted
in the docs.  Regenerate a baseline by re-running the bench with the CI
flags and copying the output over the baseline file.
"""

import argparse
import json
import sys

#: Fail when a guarded metric grows past baseline * (1 + TOLERANCE).
TOLERANCE = 0.25

#: Wall-time ratios of arms faster than this are dominated by process
#: startup noise; the ratio check is skipped (the count checks, which
#: are exact, still apply).
NOISE_FLOOR_SECONDS = 0.05


class Gate:
    """Collects pass/fail lines; one failure fails the run."""

    def __init__(self, tolerance):
        self.tolerance = tolerance
        self.failures = []
        self.lines = []

    def check_count(self, name, current, baseline):
        """Deterministic work counter: must not grow past tolerance."""
        limit = baseline * (1.0 + self.tolerance)
        ok = current <= limit
        self._note(ok, f"{name}: {current} vs baseline {baseline} "
                       f"(limit {limit:.0f})")

    def check_ratio(self, name, current, baseline):
        """Dimensionless ratio: must not grow past tolerance."""
        if baseline <= 0:
            self._note(True, f"{name}: baseline ratio {baseline} — skipped")
            return
        limit = baseline * (1.0 + self.tolerance)
        ok = current <= limit
        self._note(ok, f"{name}: {current:.3f} vs baseline {baseline:.3f} "
                       f"(limit {limit:.3f})")

    def check_quality(self, name, current, baseline):
        """Solution quality: must be no worse than the baseline."""
        ok = current <= baseline
        self._note(ok, f"{name}: {current} vs baseline {baseline}")

    def skip(self, message):
        self.lines.append(f"  SKIP {message}")

    def _note(self, ok, message):
        tag = "ok  " if ok else "FAIL"
        self.lines.append(f"  {tag} {message}")
        if not ok:
            self.failures.append(message)


def _wall_ratio(gate, name, numer_arm, denom_arm, base_numer, base_denom):
    """Compare a same-run wall-time ratio, respecting the noise floor."""
    if min(denom_arm, base_denom) < NOISE_FLOOR_SECONDS:
        gate.skip(f"{name}: runtimes below {NOISE_FLOOR_SECONDS}s noise floor")
        return
    gate.check_ratio(name, numer_arm / denom_arm, base_numer / base_denom)


def check_scaling(gate, current, baseline):
    """Rows matched on process count; unmatched rows are reported."""
    base_rows = {row["processes"]: row for row in baseline}
    matched = 0
    for row in current:
        base = base_rows.get(row["processes"])
        if base is None:
            gate.skip(f"no baseline row for processes={row['processes']}")
            continue
        matched += 1
        n = row["processes"]
        gate.check_quality(f"[{n}p] area", row["area"], base["area"])
        for arm in ("cached", "uncached"):
            gate.check_count(
                f"[{n}p] {arm} force_evaluations",
                row[arm]["force_evaluations"],
                base[arm]["force_evaluations"],
            )
        gate.check_count(
            f"[{n}p] iterations", row["iterations"], base["iterations"]
        )
        _wall_ratio(
            gate,
            f"[{n}p] cached/uncached wall-time ratio",
            row["cached"]["wall_time"], row["uncached"]["wall_time"],
            base["cached"]["wall_time"], base["uncached"]["wall_time"],
        )
    if matched == 0:
        gate.failures.append("no scaling rows matched the baseline")


def check_scale(gate, current, baseline):
    """Scoreboard A/B rows on the scenario corpus (bench_scale.py)."""
    base_rows = {row["processes"]: row for row in baseline}
    matched = 0
    for row in current:
        base = base_rows.get(row["processes"])
        if base is None:
            gate.skip(f"no baseline row for processes={row['processes']}")
            continue
        matched += 1
        n = row["processes"]
        on = row["scoreboard_on"]
        off = row["scoreboard_off"]
        # Decision parity between the arms is a hard invariant, not a
        # tolerance check: the scoreboard must replay the scan exactly.
        if (on["iterations"], on["area"]) != (off["iterations"], off["area"]):
            gate.failures.append(
                f"[{n}p] scoreboard arm parity violated: "
                f"{on['iterations']}/{on['area']} vs "
                f"{off['iterations']}/{off['area']}"
            )
            continue
        gate.check_quality(f"[{n}p] area", row["area"], base["area"])
        gate.check_count(
            f"[{n}p] iterations", row["iterations"], base["iterations"]
        )
        for arm in ("scoreboard_on", "scoreboard_off"):
            gate.check_count(
                f"[{n}p] {arm} force_evaluations",
                row[arm]["force_evaluations"],
                base[arm]["force_evaluations"],
            )
        # Deterministic scoreboard work split: more rescoring means the
        # dirty cone grew (an incremental-selection regression).
        gate.check_count(
            f"[{n}p] selection_rescored",
            on["selection_rescored"],
            base["scoreboard_on"]["selection_rescored"],
        )
        _wall_ratio(
            gate,
            f"[{n}p] scoreboard/scan wall-time ratio",
            on["wall_time"], off["wall_time"],
            base["scoreboard_on"]["wall_time"],
            base["scoreboard_off"]["wall_time"],
        )
    if matched == 0:
        gate.failures.append("no scale rows matched the baseline")


def check_sweep(gate, current, baseline):
    if current["candidates"] != baseline["candidates"]:
        gate.failures.append(
            f"candidate-set mismatch: current sweep enumerates "
            f"{current['candidates']} candidates, baseline "
            f"{baseline['candidates']} — regenerate the baseline with "
            f"the CI flags"
        )
        return
    gate.check_quality("best_area", current["best_area"],
                       baseline["best_area"])
    gate.check_count(
        "pruned-arm candidates evaluated",
        current["parallel_pruned"]["evaluated"],
        baseline["parallel_pruned"]["evaluated"],
    )
    for arm in ("serial", "parallel", "parallel_pruned"):
        gate.check_count(f"{arm} failed jobs", current[arm]["failed"], 0)
    _wall_ratio(
        gate,
        "pruned/unpruned wall-time ratio",
        current["parallel_pruned"]["wall_time"],
        current["parallel"]["wall_time"],
        baseline["parallel_pruned"]["wall_time"],
        baseline["parallel"]["wall_time"],
    )


def check_service(gate, current, baseline):
    """Job-server cache/crash-recovery smoke rows (bench_service.py)."""
    if current["workload"]["limit"] != baseline["workload"]["limit"]:
        gate.failures.append(
            f"workload mismatch: sweep limit "
            f"{current['workload']['limit']} vs baseline "
            f"{baseline['workload']['limit']} — regenerate the baseline "
            f"with the CI flags"
        )
        return
    # Correctness invariants first — these are hard, not tolerances.
    for name, value in (
        ("cache-hit byte_identical", current["cache_hit"]["byte_identical"]),
        ("crash-resume byte_identical",
         current["crash_resume"]["byte_identical"]),
        ("first submission uncached", not current["cold"]["cached"]),
        ("resubmission cached", current["cache_hit"]["cached"]),
    ):
        if not value:
            gate.failures.append(f"{name} invariant violated")
        else:
            gate.lines.append(f"  ok   {name}")
    gate.check_count(
        "crash-resume duplicate evaluations",
        current["crash_resume"]["duplicate_evaluations"],
        0,
    )
    gate.check_count(
        "journaled candidates",
        current["crash_resume"]["journaled_candidates"],
        baseline["crash_resume"]["journaled_candidates"],
    )
    gate.check_count(
        "candidates evaluated",
        current["workload"]["evaluated"],
        baseline["workload"]["evaluated"],
    )
    # Cache-hit latency relative to the cold run of the same process: a
    # shrinking speedup means cache lookups got slower or cold runs
    # faster-by-doing-less; either way, look.
    _wall_ratio(
        gate,
        "cache-hit/cold wall-time ratio",
        current["cache_hit"]["seconds"], current["cold"]["seconds"],
        baseline["cache_hit"]["seconds"], baseline["cold"]["seconds"],
    )


def check_absint(gate, current, baseline):
    """Residue-pressure tightness/pruning/fast-path rows (bench_absint.py)."""
    sweep = current["sweep"]
    base_sweep = baseline["sweep"]
    if current["workload"]["candidates"] != baseline["workload"]["candidates"]:
        gate.failures.append(
            f"candidate-set mismatch: current sweep enumerates "
            f"{current['workload']['candidates']} candidates, baseline "
            f"{baseline['workload']['candidates']} — regenerate the "
            f"baseline with the CI flags"
        )
        return
    # Hard invariants first: both bounds are admissible, so the arms
    # must agree on the best area, and the interval arm must keep
    # clearing the acceptance floor on the pruning rate.
    for name, value in (
        ("sweep arms found identical best areas",
         sweep["best_area_identical"]),
        (f"interval prune rate >= floor "
         f"({sweep['prune_rate_interval']:.0%} vs "
         f"{sweep['prune_rate_floor']:.0%})",
         sweep["prune_rate_interval"] >= sweep["prune_rate_floor"]),
    ):
        if not value:
            gate.failures.append(f"{name} invariant violated")
        else:
            gate.lines.append(f"  ok   {name}")
    for subject in current["fastpath"]["subjects"]:
        if not subject["checker_ok"]:
            gate.failures.append(
                f"fast-path proof for {subject['name']} rejected by the "
                f"independent checker"
            )
        else:
            gate.lines.append(
                f"  ok   fast-path proofs checker-verified "
                f"({subject['name']})"
            )
    gate.check_quality("best_area", sweep["best_area"],
                       base_sweep["best_area"])
    # Deterministic work counters: the bounds and the serial pruned
    # sweep reproduce bit-for-bit, so evaluation counts growing means
    # a bound got weaker.
    for arm in ("averaging", "interval"):
        gate.check_count(
            f"{arm}-arm candidates evaluated",
            sweep[arm]["evaluated"],
            base_sweep[arm]["evaluated"],
        )
        gate.check_count(f"{arm}-arm failed jobs", sweep[arm]["failed"], 0)
    # Tightness and fast-path coverage may only shrink by losing bound
    # strength — also deterministic, so no tolerance.
    for name, cur, base in (
        ("strictly-tighter candidates",
         current["tightness"]["strictly_tighter"],
         baseline["tightness"]["strictly_tighter"]),
        ("interval fast-path proofs",
         current["fastpath"]["interval_proofs"],
         baseline["fastpath"]["interval_proofs"]),
    ):
        if cur < base:
            gate.failures.append(f"{name}: {cur} vs baseline {base}")
        else:
            gate.lines.append(f"  ok   {name}: {cur} vs baseline {base}")
    _wall_ratio(
        gate,
        "interval/averaging sweep wall-time ratio",
        sweep["interval"]["wall_time"], sweep["averaging"]["wall_time"],
        base_sweep["interval"]["wall_time"],
        base_sweep["averaging"]["wall_time"],
    )


def check_kernels(gate, current, baseline):
    """Per-kernel and end-to-end kernel A/B rows (bench_kernels.py)."""
    base_kernels = {
        (row["name"], row["processes"]): row for row in baseline["kernels"]
    }
    matched = 0
    for row in current["kernels"]:
        key = (row["name"], row["processes"])
        base = base_kernels.get(key)
        if base is None:
            gate.skip(f"no baseline kernel row for {key}")
            continue
        if row["batch"] != base["batch"] or row["loops"] != base["loops"]:
            gate.failures.append(
                f"kernel {key} workload mismatch: batch/loops "
                f"{row['batch']}/{row['loops']} vs baseline "
                f"{base['batch']}/{base['loops']} — regenerate the baseline"
            )
            continue
        matched += 1
        _wall_ratio(
            gate,
            f"{row['name']}@{row['processes']}p vector/scalar time ratio",
            row["vector_seconds"], row["scalar_seconds"],
            base["vector_seconds"], base["scalar_seconds"],
        )
    base_rows = {row["processes"]: row for row in baseline["end_to_end"]}
    for row in current["end_to_end"]:
        base = base_rows.get(row["processes"])
        if base is None:
            gate.skip(f"no baseline end-to-end row for "
                      f"processes={row['processes']}")
            continue
        matched += 1
        n = row["processes"]
        for arm in ("kernel", "scalar"):
            gate.check_quality(
                f"[{n}p] {arm} area", row[arm]["area"], base[arm]["area"]
            )
            gate.check_count(
                f"[{n}p] {arm} iterations",
                row[arm]["iterations"], base[arm]["iterations"],
            )
            gate.check_count(
                f"[{n}p] {arm} force_evaluations",
                row[arm]["force_evaluations"],
                base[arm]["force_evaluations"],
            )
        _wall_ratio(
            gate,
            f"[{n}p] kernel/scalar wall-time ratio",
            row["kernel"]["wall_time"], row["scalar"]["wall_time"],
            base["kernel"]["wall_time"], base["scalar"]["wall_time"],
        )
    if matched == 0:
        gate.failures.append("no kernel rows matched the baseline")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--kind",
        choices=("scaling", "sweep", "kernels", "scale", "service", "absint"),
        required=True,
    )
    parser.add_argument("--current", required=True,
                        help="freshly generated benchmark JSON")
    parser.add_argument("--baseline", required=True,
                        help="committed baseline JSON")
    parser.add_argument("--tolerance", type=float, default=TOLERANCE,
                        help="allowed fractional growth (default 0.25)")
    args = parser.parse_args(argv)

    with open(args.current, encoding="utf-8") as handle:
        current = json.load(handle)
    with open(args.baseline, encoding="utf-8") as handle:
        baseline = json.load(handle)

    gate = Gate(args.tolerance)
    if args.kind == "scaling":
        check_scaling(gate, current, baseline)
    elif args.kind == "kernels":
        check_kernels(gate, current, baseline)
    elif args.kind == "scale":
        check_scale(gate, current, baseline)
    elif args.kind == "service":
        check_service(gate, current, baseline)
    elif args.kind == "absint":
        check_absint(gate, current, baseline)
    else:
        check_sweep(gate, current, baseline)

    print(f"bench-regression gate ({args.kind}): "
          f"{args.current} vs {args.baseline}")
    for line in gate.lines:
        print(line)
    if gate.failures:
        print(f"REGRESSION: {len(gate.failures)} check(s) failed "
              f"(tolerance {args.tolerance:.0%})")
        for failure in gate.failures:
            print(f"  - {failure}")
        return 1
    print("no regression detected")
    return 0


if __name__ == "__main__":
    sys.exit(main())
