"""Experiment F2 — Figure 2 of the paper (§5.1).

Figure 2 contrasts the unmodified and the first-part-modified IFDS on a
two-operation block: under the modulo-maximum transformation, a positive
displacement *hidden* below a slot maximum costs no force, so the
modified algorithm prefers the placement that reuses an already-occupied
period slot — the periodical alignment of operations.

The regenerated artifact prints, for every candidate placement of the
free operation, the classic force on the block distribution next to the
modified force on the modulo-transformed distribution, and then shows
the end-to-end effect: the coupled scheduler parks both operations on the
same period slot so a second process can use the other slot for free.
"""

import numpy as np
from conftest import save_artifact

from repro.core.modulo import modulo_max
from repro.core.periods import PeriodAssignment
from repro.core.scheduler import ModuloSystemScheduler
from repro.ir.dfg import DataFlowGraph
from repro.ir.operation import OpKind
from repro.ir.process import Block, Process, SystemSpec
from repro.resources.assignment import ResourceAssignment
from repro.resources.library import default_library
from repro.scheduling.forces import hooke_force
from repro.scheduling.state import BlockState

PERIOD = 2
RANGE = 4


def build_state():
    library = default_library()
    graph = DataFlowGraph(name="fig2")
    graph.add("op1", OpKind.ADD)
    graph.add("op2", OpKind.ADD)
    state = BlockState(Block(name="b", graph=graph, deadline=RANGE), library)
    state.commit_fix("op2", 0)  # one operation already scheduled at step 0
    return state


def force_trace(state):
    """(step, classic force, modified force) for each placement of op1."""
    rows = []
    distribution = state.dist.array("adder")
    folded = modulo_max(distribution, PERIOD)
    for step in range(RANGE):
        delta = state.placement_deltas("op1", step)["adder"]
        classic = hooke_force(distribution, delta, 0.0)
        folded_after = modulo_max(distribution + delta, PERIOD)
        modified = hooke_force(folded, folded_after - folded, 0.0)
        rows.append((step, classic, modified))
    return rows


def run_end_to_end():
    """Couple the block with a second process contending for the adder."""
    library = default_library()
    system = SystemSpec(name="fig2-system")
    g1 = DataFlowGraph(name="b1")
    g1.add("op1", OpKind.ADD)
    g1.add("op2", OpKind.ADD)
    p1 = Process(name="p1")
    p1.add_block(Block(name="main", graph=g1, deadline=RANGE))
    system.add_process(p1)
    g2 = DataFlowGraph(name="b2")
    g2.add("other", OpKind.ADD)
    p2 = Process(name="p2")
    p2.add_block(Block(name="main", graph=g2, deadline=PERIOD))
    system.add_process(p2)
    assignment = ResourceAssignment(library)
    assignment.make_global("adder", ["p1", "p2"])
    return ModuloSystemScheduler(library).schedule(
        system, assignment, PeriodAssignment({"adder": PERIOD})
    )


def test_figure2(benchmark):
    state = build_state()
    rows = benchmark.pedantic(force_trace, args=(state,), rounds=50, iterations=5)

    by_step = {step: (classic, modified) for step, classic, modified in rows}
    # Classic forces cannot tell steps 1, 2, 3 apart by slot; the modified
    # force must strictly prefer step 2 (slot 0, hidden under op2's max)
    # over the empty slot-1 steps.
    assert by_step[2][1] < by_step[1][1]
    assert by_step[2][1] < by_step[3][1]
    # Same-slot preference is invisible to the unmodified force: for the
    # classic algorithm, steps 2 and 3 both move mass off the uniform
    # distribution equally well.
    assert by_step[2][0] >= by_step[2][1]

    lines = [
        "figure 2: unmodified vs modified IFDS forces (P = 2, range = 4)",
        "",
        "op2 fixed at step 0 (slot 0); tentative placements of op1:",
        "",
        f"{'step':>4} {'slot':>4} {'classic force':>14} {'modified force':>15}",
    ]
    for step, classic, modified in rows:
        note = "  <- hidden below slot max" if step == 2 else ""
        lines.append(
            f"{step:>4} {step % PERIOD:>4} {classic:>14.3f} {modified:>15.3f}{note}"
        )

    result = run_end_to_end()
    sched = result.schedule_of("p1", "main")
    starts = sorted(sched.starts.values())
    assert starts[0] % PERIOD == starts[1] % PERIOD
    lines += [
        "",
        "coupled end-to-end run:",
        f"  p1 schedules its adds at steps {starts} (same period slot),",
        f"  p2 is authorized on the other slot; shared adder pool: "
        f"{result.global_instances('adder')} instance",
    ]
    save_artifact("figure2", "\n".join(lines))
