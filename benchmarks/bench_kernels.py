"""Kernel microbenchmarks and end-to-end kernel A/B → BENCH_kernel.json.

Measures the batched array kernels (:mod:`repro.scheduling.kernels`)
against their scalar reference paths on identical inputs harvested from
real scheduling states, per system size:

* **modulo_max** — :func:`repro.core.modulo.modulo_max_rows` (one
  reshape-max pass over a row matrix) vs the per-row
  :func:`modulo_max_reference` stride loop;
* **occupancy_rows** — :func:`batched_occupancy_rows` vs one
  :func:`occupancy_row` call per frame;
* **delta_build** — :class:`DeltaBatch` vs one
  ``BlockState.placement_deltas`` call per candidate;
* **force_fold** — :meth:`PlacementKernel.forces` (whole frame per
  call) vs one ``placement_force`` call per (op, step);
* **end_to_end** — ``ModuloSystemScheduler`` with ``use_kernels`` on vs
  off (force cache enabled in both arms, i.e. against PR 2's
  configuration), best-of-``--repeats`` wall time to suppress machine
  noise.

Decisions are identical in both arms of every comparison (pinned by
``tests/core/test_kernel_parity.py``); only wall time differs.  Scalar
arms loop enough iterations to stay well above the regression gate's
noise floor.  Runnable standalone for CI smoke checks::

    PYTHONPATH=src python benchmarks/bench_kernels.py --processes 6 \
        --repeats 2 --out BENCH_kernel.json
"""

import argparse
import json
import pathlib
import time

import numpy as np

from conftest import save_artifact
from repro.core.modulo import modulo_max_reference, modulo_max_rows
from repro.core.periods import PeriodAssignment
from repro.core.scheduler import ModuloSystemScheduler
from repro.obs import Tracer
from repro.resources.assignment import ResourceAssignment
from repro.resources.library import default_library
from repro.scheduling.distribution import occupancy_row
from repro.scheduling.forces import placement_force
from repro.scheduling.kernels import (
    DeltaBatch,
    PlacementKernel,
    batched_occupancy_rows,
    guarded_footprint_ops,
)
from repro.scheduling.state import BlockState

from bench_scaling import PERIOD, build_system

PROCESS_COUNTS = (6, 12)

#: Wall time of the cached arm at 12 processes recorded by PR 2 in
#: BENCH_scaling.json before the kernels landed (cached_scalar is the
#: same configuration re-measured on the current machine).
PR2_RECORDED_WALL_TIME_12P = 0.567

#: Scalar-arm loop counts, sized so every scalar measurement clears the
#: regression gate's 0.05 s noise floor with margin at 6 processes.
LOOPS = {"modulo_max": 20, "occupancy_rows": 150, "delta_build_narrow": 100,
         "delta_build_wide": 24, "force_fold": 16}


def _time(fn, loops):
    started = time.perf_counter()
    for _ in range(loops):
        fn()
    return time.perf_counter() - started


def block_states(n_processes, library):
    system = build_system(n_processes, library)
    return [
        BlockState(block, library)
        for process in system.processes
        for block in process.blocks
    ]


def harvest(n_processes, library):
    """Shared micro-inputs: frames, candidate batches, delta matrices."""
    states = block_states(n_processes, library)
    frames = []  # (lo, hi, occupancy, horizon)
    candidates = []  # (state, [(op, step), ...]) whole-frame batches
    narrow = []  # (state, [(op, lo), (op, hi), ...]) frame-end batches
    for state in states:
        fallback = guarded_footprint_ops(state)
        batch = []
        ends = []
        for op_id in state.frames.unfixed():
            lo, hi = state.frames.frame(op_id)
            frames.append(
                (lo, hi, state.dist.occupancy_of[op_id], state.dist.horizon)
            )
            if op_id not in fallback:
                batch.extend((op_id, step) for step in range(lo, hi + 1))
                ends.extend([(op_id, lo), (op_id, hi)])
        if batch:
            candidates.append((state, batch))
            narrow.append((state, ends))
    matrices = []
    for state, batch in candidates:
        matrices.extend(DeltaBatch(state, batch).deltas.values())
    # Block horizons differ; zero-pad to one width (zeros are inert
    # under the modulo fold, and both arms see identical rows).
    width = max(matrix.shape[1] for matrix in matrices)
    rows = np.zeros((sum(matrix.shape[0] for matrix in matrices), width))
    offset = 0
    for matrix in matrices:
        rows[offset : offset + matrix.shape[0], : matrix.shape[1]] = matrix
        offset += matrix.shape[0]
    return states, frames, candidates, narrow, rows


def bench_kernels_at(n_processes, library, repeats):
    """Per-kernel scalar-vs-vector wall times at one system size."""
    _states, frames, candidates, narrow, rows = harvest(n_processes, library)
    results = []

    def record(name, batch, scalar_fn, vector_fn):
        loops = LOOPS[name]
        scalar = min(_time(scalar_fn, loops) for _ in range(repeats))
        vector = min(_time(vector_fn, loops) for _ in range(repeats))
        results.append(
            {
                "name": name,
                "processes": n_processes,
                "batch": batch,
                "loops": loops,
                "scalar_seconds": scalar,
                "vector_seconds": vector,
                "speedup": scalar / vector if vector else float("inf"),
            }
        )

    record(
        "modulo_max",
        int(rows.shape[0]),
        lambda: [modulo_max_reference(row, PERIOD) for row in rows],
        lambda: modulo_max_rows(rows, PERIOD),
    )

    horizon = max(f[3] for f in frames)
    los = [f[0] for f in frames]
    his = [f[1] for f in frames]
    occs = [f[2] for f in frames]
    record(
        "occupancy_rows",
        len(frames),
        lambda: [
            occupancy_row(lo, hi, occ, horizon)
            for lo, hi, occ in zip(los, his, occs)
        ],
        lambda: batched_occupancy_rows(los, his, occs, horizon),
    )

    n_ends = sum(len(ends) for _state, ends in narrow)
    record(
        "delta_build_narrow",
        n_ends,
        lambda: [
            state.placement_deltas(op_id, step)
            for state, ends in narrow
            for op_id, step in ends
        ],
        lambda: [DeltaBatch(state, ends) for state, ends in narrow],
    )

    n_candidates = sum(len(batch) for _state, batch in candidates)
    record(
        "delta_build_wide",
        n_candidates,
        lambda: [
            state.placement_deltas(op_id, step)
            for state, batch in candidates
            for op_id, step in batch
        ],
        lambda: [DeltaBatch(state, batch) for state, batch in candidates],
    )

    kernels = [(PlacementKernel(state), state, batch)
               for state, batch in candidates]
    by_op = []
    for kernel, state, batch in kernels:
        ops = {}
        for op_id, step in batch:
            ops.setdefault(op_id, []).append(step)
        by_op.append((kernel, state, ops))
    record(
        "force_fold",
        n_candidates,
        lambda: [
            placement_force(state, op_id, step)
            for _kernel, state, ops in by_op
            for op_id, steps in ops.items()
            for step in steps
        ],
        lambda: [
            kernel.forces(op_id, steps)
            for kernel, _state, ops in by_op
            for op_id, steps in ops.items()
        ],
    )
    return results


def run_end_to_end(n_processes, library, repeats):
    """Best-of-``repeats`` coupled runs, kernels on vs off."""
    system = build_system(n_processes, library)
    assignment = ResourceAssignment.all_global(library, system)
    periods = PeriodAssignment({name: PERIOD for name in assignment.global_types})

    def arm(use_kernels):
        best = None
        for _ in range(repeats):
            tracer = Tracer()
            scheduler = ModuloSystemScheduler(
                library, use_kernels=use_kernels, tracer=tracer
            )
            started = time.perf_counter()
            result = scheduler.schedule(system, assignment, periods)
            elapsed = time.perf_counter() - started
            if best is None or elapsed < best["wall_time"]:
                counters = tracer.counters.as_dict()
                best = {
                    "wall_time": elapsed,
                    "iterations": result.iterations,
                    "area": result.total_area(),
                    "force_evaluations": counters.get("force_evaluations", 0),
                }
        return best

    kernel = arm(True)
    scalar = arm(False)
    row = {
        "processes": n_processes,
        "operations": system.operation_count,
        "kernel": kernel,
        "scalar": scalar,
        "speedup": (
            scalar["wall_time"] / kernel["wall_time"]
            if kernel["wall_time"]
            else float("inf")
        ),
    }
    if n_processes == 12:
        row["pr2_recorded_wall_time"] = PR2_RECORDED_WALL_TIME_12P
        row["speedup_vs_pr2_recorded"] = (
            PR2_RECORDED_WALL_TIME_12P / kernel["wall_time"]
            if kernel["wall_time"]
            else float("inf")
        )
    return row


def run_bench(process_counts=PROCESS_COUNTS, *, repeats=3):
    library = default_library()
    kernels = []
    end_to_end = []
    for n_processes in process_counts:
        kernels.extend(bench_kernels_at(n_processes, library, repeats))
        end_to_end.append(run_end_to_end(n_processes, library, repeats))
    return {
        "config": {"repeats": repeats, "period": PERIOD,
                   "processes": list(process_counts)},
        "kernels": kernels,
        "end_to_end": end_to_end,
    }


def format_report(report):
    lines = [
        "Batched force kernels: scalar vs vector (best-of-"
        f"{report['config']['repeats']})",
        "",
        f"{'kernel':>18} {'procs':>5} {'batch':>6} {'scalar_s':>9} "
        f"{'vector_s':>9} {'speedup':>8}",
    ]
    for row in report["kernels"]:
        lines.append(
            f"{row['name']:>18} {row['processes']:>5} {row['batch']:>6} "
            f"{row['scalar_seconds']:>9.3f} {row['vector_seconds']:>9.3f} "
            f"{row['speedup']:>7.1f}x"
        )
    lines.append("")
    lines.append(
        f"{'end-to-end':>18} {'procs':>5} {'ops':>6} {'scalar_s':>9} "
        f"{'kernel_s':>9} {'speedup':>8}"
    )
    for row in report["end_to_end"]:
        lines.append(
            f"{'coupled run':>18} {row['processes']:>5} "
            f"{row['operations']:>6} {row['scalar']['wall_time']:>9.3f} "
            f"{row['kernel']['wall_time']:>9.3f} {row['speedup']:>7.1f}x"
        )
        if "speedup_vs_pr2_recorded" in row:
            lines.append(
                f"{'':>18} vs PR 2 recorded cached baseline "
                f"({row['pr2_recorded_wall_time']:.3f}s): "
                f"{row['speedup_vs_pr2_recorded']:.1f}x"
            )
    return "\n".join(lines)


def test_kernels(benchmark):
    report = benchmark.pedantic(
        lambda: run_bench((6,), repeats=2), rounds=1, iterations=1
    )
    for row in report["kernels"]:
        # The pure-array kernels must win outright; the build/fold
        # drivers batch small per-op candidate sets at block level, so
        # "no slower than scalar with margin" is the invariant (their
        # system-level win is the end_to_end rows).
        if row["name"] in ("modulo_max", "occupancy_rows"):
            assert row["vector_seconds"] < row["scalar_seconds"], row["name"]
        else:
            assert (
                row["vector_seconds"] < row["scalar_seconds"] * 1.5
            ), row["name"]
    for row in report["end_to_end"]:
        # Decision parity: the kernels must not change the outcome.
        assert row["kernel"]["iterations"] == row["scalar"]["iterations"]
        assert row["kernel"]["area"] == row["scalar"]["area"]
        assert (
            row["kernel"]["force_evaluations"]
            == row["scalar"]["force_evaluations"]
        )
    save_artifact("kernels", format_report(report), data=report)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--processes",
        type=int,
        nargs="+",
        default=list(PROCESS_COUNTS),
        help="system sizes (number of processes) to run",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="best-of repeats per measurement (suppresses machine noise)",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="write the machine-readable report to this JSON file",
    )
    args = parser.parse_args(argv)
    report = run_bench(tuple(args.processes), repeats=args.repeats)
    print(format_report(report))
    if args.out is not None:
        args.out.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {args.out}")
    return report


if __name__ == "__main__":
    main()
