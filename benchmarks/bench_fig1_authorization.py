"""Experiment F1 — Figure 1 of the paper (§3.2).

Figure 1 shows the periodic access-authorization mapping: a process
executing two operations of a resource type at one time step is granted
the same capacity at *every* step congruent modulo the period (the
"rippled line" steps), without increasing its resource requirement.

The regenerated artifact prints a block usage distribution, its folded
authorization, and the absolute time steps each slot authorizes.  The
benchmark times the modulo-max fold on a realistic distribution.
"""

import numpy as np
from conftest import save_artifact

from repro.core.modulo import modulo_max_int, slot_steps

PERIOD = 3
HORIZON = 12

#: Usage of a resource type by one block over its time range: two
#: operations execute at step 4 (the figure's example).
USAGE = [0, 1, 0, 0, 2, 0, 1, 0, 0, 0, 0, 0]


def fold_once():
    return modulo_max_int(USAGE, PERIOD)


def test_figure1(benchmark):
    folded = benchmark.pedantic(fold_once, rounds=200, iterations=10)

    # Step 4 holds the peak of 2 -> slot 1 carries it; steps 1 and 6 fold
    # onto slots 1 and 0 with a single instance each.
    assert folded.tolist() == [1, 2, 0]

    lines = ["figure 1: time steps of access authorization (period P = 3)", ""]
    lines.append("block usage D(t):   " + " ".join(f"{u}" for u in USAGE))
    lines.append(
        "slots tau = t mod P: " + " ".join(str(t % PERIOD) for t in range(HORIZON))
    )
    lines.append("")
    lines.append("authorization Q(tau) = max{D(t) : t = tau (mod P)}:")
    for tau in range(PERIOD):
        steps = slot_steps(tau, PERIOD, HORIZON)
        marks = " ".join(f"{step:2d}" for step in steps)
        lines.append(
            f"  slot {tau}: {int(folded[tau])} instance(s), valid at steps {marks}"
        )
    lines.append("")
    lines.append(
        "granting slot 1 capacity 2 authorizes the process at every rippled "
        "step (1, 4, 7, 10, ...) at no extra cost"
    )
    save_artifact("figure1", "\n".join(lines))
