"""Experiment A11 — sharing a multicycle memory port (§1.1's "memories or busses").

The paper's resource notion explicitly covers memories and busses.  A
non-pipelined 2-cycle memory port is the hard case for the periodic
partitioning (operations span two slots), handled here by the periodic
conflict-graph coloring.  The benchmark sweeps the port utilization
(words moved per activation at fixed deadlines) and reports the shared
pool against the local baseline — sharing wins exactly where the paper
predicts: at low per-process utilization.
"""

from conftest import save_artifact

from repro.core.periods import PeriodAssignment
from repro.core.scheduler import ModuloSystemScheduler
from repro.ir.process import SystemSpec
from repro.resources.assignment import ResourceAssignment
from repro.scheduling.forces import area_weights
from repro.workloads.memory_system import (
    compute_process,
    dma_process,
    memory_library,
)

CASES = (
    # (words per mover, deadline, period)
    (1, 24, 12),
    (2, 24, 12),
    (2, 12, 6),
    (3, 12, 6),
)


def run_sweep():
    rows = []
    for words, deadline, period in CASES:
        library = memory_library()
        system = SystemSpec(name="mem")
        group = []
        for index in range(2):
            system.add_process(
                dma_process(f"dma{index}", words=words, deadline=deadline)
            )
            group.append(f"dma{index}")
        system.add_process(compute_process("calc", deadline=deadline))
        group.append("calc")
        assignment = ResourceAssignment(library)
        assignment.make_global("memport", group)
        shared = ModuloSystemScheduler(
            library, weights=area_weights(library)
        ).schedule(system, assignment, PeriodAssignment({"memport": period}))
        local = ModuloSystemScheduler(library).schedule(
            system, ResourceAssignment.all_local(library)
        )
        utilization = (2 * 2 * words + 3 * 2) / (3 * deadline)
        rows.append(
            (
                words,
                deadline,
                period,
                utilization,
                shared.instance_counts()["memport"],
                local.instance_counts()["memport"],
            )
        )
    return rows


def test_memory_sharing(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    # The crossover: sharing wins at low utilization (one port replaces
    # three) and loses at high utilization, where provisioning for every
    # reactive interleaving costs more than private ports — the paper's
    # rationale for sharing low-utilization, high-cost resources only.
    assert rows[0][4] == 1 and rows[0][5] == 3
    assert rows[-1][4] > rows[-1][5]
    utils = [row[3] for row in rows]
    assert utils == sorted(utils)  # sweep is ordered by utilization

    lines = [
        "A11: sharing a 2-cycle non-pipelined memory port (2 DMA + 1 compute)",
        "",
        f"{'words':>5} {'deadline':>8} {'P':>3} {'port util':>9} "
        f"{'shared ports':>12} {'local ports':>11}",
    ]
    for words, deadline, period, util, shared, local in rows:
        lines.append(
            f"{words:>5} {deadline:>8} {period:>3} {util:>9.0%} "
            f"{shared:>12} {local:>11}"
        )
    lines.append("")
    lines.append(
        "multicycle pools come from the periodic conflict coloring; the "
        "crossover (win at low utilization, lose at high) is exactly why "
        "the paper shares low-utilization, high-cost resources"
    )
    save_artifact("memory_sharing", "\n".join(lines))
