"""Experiment A4 — the resource-constrained companion method ([8]).

Feeds the pool sizes found by the time-constrained run back into the
resource-constrained modulo scheduler and reports the block makespans
against the paper deadlines: the two formulations must be consistent
(the RC run meets every deadline with the TC pool sizes).
"""

from conftest import save_artifact

from repro.core.rc_modulo import RCModuloScheduler
from repro.workloads import paper_assignment, paper_periods, paper_system

CAPACITY = {"adder": 4, "subtracter": 1, "multiplier": 3}


def run_rc():
    system, library = paper_system()
    scheduler = RCModuloScheduler(library, CAPACITY)
    return system, scheduler.schedule(
        system, paper_assignment(library), paper_periods()
    )


def test_rc_modulo(benchmark):
    system, result = benchmark.pedantic(run_rc, rounds=1, iterations=1)

    assert result.meets_deadlines()
    for sched in result.block_schedules.values():
        sched.validate()

    lines = [
        "A4: resource-constrained modulo scheduling with the paper's pools",
        f"pools: {CAPACITY} (from the time-constrained run / paper Table 1)",
        "",
        f"{'process':<8} {'makespan':>9} {'deadline':>9} {'slack':>6}",
    ]
    for process, block in system.iter_blocks():
        makespan = result.makespan(process.name, block.name)
        lines.append(
            f"{process.name:<8} {makespan:>9} {block.deadline:>9} "
            f"{block.deadline - makespan:>6}"
        )
    lines.append("")
    lines.append("every block meets its deadline: the time-constrained and")
    lines.append("resource-constrained formulations agree on these pools")
    save_artifact("rc_modulo", "\n".join(lines))
