"""Experiment A8 — resource-constrained baselines: FDLS vs list scheduling.

Paulin & Knight's force-directed list scheduling replaces the static
urgency priority of classic list scheduling with deferral forces.  This
benchmark compares achieved makespans of both under identical instance
limits across the standard workloads — the per-block quality floor the
system-level results inherit.
"""

from conftest import save_artifact

from repro.ir.process import Block
from repro.resources.library import default_library
from repro.scheduling.fdls import ForceDirectedListScheduler
from repro.scheduling.list_scheduling import ListScheduler
from repro.workloads import (
    ar_lattice,
    differential_equation,
    elliptic_wave_filter,
    fir_filter,
    iir_biquad_cascade,
)

CASES = (
    ("ewf", elliptic_wave_filter, {"adder": 2, "multiplier": 1}),
    ("ewf+", elliptic_wave_filter, {"adder": 3, "multiplier": 2}),
    ("diffeq", differential_equation, {"adder": 1, "subtracter": 1, "multiplier": 2}),
    ("fir8", lambda: fir_filter(8), {"adder": 2, "multiplier": 2}),
    ("lattice4", lambda: ar_lattice(4), {"adder": 1, "subtracter": 1, "multiplier": 1}),
    ("iir2", lambda: iir_biquad_cascade(2), {"adder": 1, "subtracter": 1, "multiplier": 2}),
)


def run_comparison():
    library = default_library()
    rows = []
    for name, factory, capacity in CASES:
        graph = factory()
        deadline = graph.critical_path_length(library.latency_of)
        fdls = ForceDirectedListScheduler(library, capacity).schedule(
            Block(name=name, graph=factory(), deadline=deadline)
        )
        baseline = ListScheduler(library, capacity).schedule(
            Block(name=name, graph=factory(), deadline=deadline)
        )
        rows.append((name, deadline, fdls.makespan, baseline.makespan))
    return rows


def test_fdls_vs_list(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    # FDLS must stay in the same quality class as list scheduling.
    for name, _cp, fdls_len, list_len in rows:
        assert fdls_len <= list_len + 3, name

    lines = [
        "A8: resource-constrained makespans, FDLS vs urgency list scheduling",
        "",
        f"{'workload':<10} {'crit.path':>9} {'FDLS':>6} {'list':>6}",
    ]
    for name, cp, fdls_len, list_len in rows:
        lines.append(f"{name:<10} {cp:>9} {fdls_len:>6} {list_len:>6}")
    save_artifact("fdls_vs_list", "\n".join(lines))
