"""Experiment A6 — dynamic safety of the shared schedule.

Simulates the globally scheduled paper system under randomized
spontaneous triggering for many cycles and seeds.  The paper's guarantee
— statically resolved access conflicts, no runtime executive — must hold
dynamically: zero violations across every seed, with the pools at their
static sizes.  The timing measures simulator throughput.
"""

from conftest import save_artifact

from repro.sim.simulator import SystemSimulator

CYCLES = 5000
SEEDS = (0, 1, 2, 3, 4)


def test_simulation(benchmark, paper_comparison):
    result = paper_comparison.global_result

    def run_all():
        return [
            SystemSimulator(result, seed=seed, trigger_probability=0.5).run(CYCLES)
            for seed in SEEDS
        ]

    runs = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [
        "A6: randomized reactive simulation of the shared paper system",
        f"({CYCLES} cycles per seed, trigger probability 0.5)",
        "",
        f"{'seed':>4} {'activations':>12} {'add util':>9} {'mult util':>10} "
        f"{'violations':>11}",
    ]
    for seed, stats in zip(SEEDS, runs):
        assert stats.ok, stats.trace.render()
        for type_name, peak in stats.peak_usage.items():
            assert peak <= stats.pool_sizes.get(type_name, 0)
        lines.append(
            f"{seed:>4} {sum(stats.activations.values()):>12} "
            f"{stats.utilization('adder'):>9.1%} "
            f"{stats.utilization('multiplier'):>10.1%} "
            f"{len(stats.trace.violations):>11}"
        )
    lines.append("")
    lines.append(
        "zero violations: the periodic access authorizations statically "
        "resolve every interleaving"
    )
    save_artifact("simulation", "\n".join(lines))
