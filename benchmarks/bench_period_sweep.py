"""Experiment A1 — ablation: the twofold impact of the period (§3.2).

Sweeps the common period of all global types over the eq. 3-compliant
values for the paper system and reports, per period: the instance counts,
the total area, and the process start-grid spacing.  Higher periods allow
more sharing (less area) at the cost of a coarser start grid — the
trade-off the paper describes qualitatively.
"""

from conftest import save_artifact

from repro.core.periods import PeriodAssignment
from repro.core.scheduler import ModuloSystemScheduler
from repro.scheduling.forces import area_weights
from repro.workloads import paper_assignment, paper_periods, paper_system

PERIODS = (1, 3, 5, 15)


def sweep():
    rows = []
    for period in PERIODS:
        system, library = paper_system()
        assignment = paper_assignment(library)
        periods = PeriodAssignment(
            {name: period for name in assignment.global_types}
        )
        scheduler = ModuloSystemScheduler(library, weights=area_weights(library))
        result = scheduler.schedule(system, assignment, periods)
        counts = result.instance_counts()
        rows.append(
            (
                period,
                result.grid_spacing("p1"),
                counts.get("adder", 0),
                counts.get("subtracter", 0),
                counts.get("multiplier", 0),
                result.total_area(),
            )
        )
    return rows


def test_period_sweep(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # The paper's period (15) must be no worse than the degenerate P = 1
    # (which collapses to the local baseline: every process is authorized
    # at every step, so the slot demand is the plain sum of peaks) and must
    # clearly beat the local baseline's area of 28.
    area_by_period = {row[0]: row[5] for row in rows}
    assert area_by_period[15] <= area_by_period[1]
    assert area_by_period[15] < 28

    lines = [
        "A1: period sweep on the paper system (all global types, same period)",
        "",
        f"{'P':>3} {'grid':>5} {'adders':>7} {'subs':>5} {'mults':>6} {'area':>6}",
    ]
    for period, grid, adders, subs, mults, area in rows:
        marker = "  <- paper's choice" if period == 15 else ""
        lines.append(
            f"{period:>3} {grid:>5} {adders:>7} {subs:>5} {mults:>6} "
            f"{area:>6g}{marker}"
        )
    lines.append("")
    lines.append("local baseline area: 28 (6 adders, 2 subtracters, 5 multipliers)")
    lines.append(
        "P = 1 degenerates to per-process peaks summed (the local baseline); "
        "larger periods buy sharing at the cost of a coarser start grid"
    )
    save_artifact("period_sweep", "\n".join(lines))
