"""Cycle-accurate multi-process simulation of a scheduled system.

The simulator exercises the paper's central safety claim dynamically:
processes are triggered by *spontaneous events* at random cycles (the
situation that makes process merging impossible), block start times snap
to the period grid (eq. 2/3), and at every cycle the concurrent usage of
every resource type is checked against the statically derived instance
counts and per-slot access authorizations.  Any violation is recorded —
a correct schedule produces none, for every seed.

Blocks marked ``repeats`` model loop bodies with unbounded iteration
count: on completion they re-arm immediately with a random iteration
count.  Guarded (conditional) operations are resolved per activation: a
random branch outcome is drawn for every condition, and only the taken
branch's operations occupy resources — always at or below the statically
authorized worst case.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import SimulationError
from ..core.result import SystemSchedule
from ..obs import (
    AUTHORIZATION_CHECKS,
    SIMULATION_CYCLES,
    as_tracer,
    get_logger,
)
from ..obs.counters import count
from .trace import Activation, Trace, Violation

_log = get_logger(__name__)


@dataclass
class SimulationStats:
    """Aggregate outcome of one simulation run."""

    cycles: int
    seed: int
    activations: Dict[str, int]
    busy_cycles: Dict[str, int]
    pool_sizes: Dict[str, int]
    peak_usage: Dict[str, int]
    trace: Trace

    @property
    def ok(self) -> bool:
        return not self.trace.violations

    def utilization(self, type_name: str) -> float:
        """Busy instance-cycles over available instance-cycles."""
        pool = self.pool_sizes.get(type_name, 0)
        if pool == 0 or self.cycles == 0:
            return 0.0
        return self.busy_cycles.get(type_name, 0) / (pool * self.cycles)

    def summary(self) -> str:
        lines = [f"simulated {self.cycles} cycles (seed {self.seed})"]
        for process, count in self.activations.items():
            lines.append(f"  {process}: {count} activations")
        for type_name, pool in self.pool_sizes.items():
            lines.append(
                f"  {type_name}: pool {pool}, peak {self.peak_usage.get(type_name, 0)}, "
                f"utilization {self.utilization(type_name):.1%}"
            )
        lines.append("  violations: " + ("none" if self.ok else
                                          str(len(self.trace.violations))))
        return "\n".join(lines)


@dataclass
class _BlockModel:
    """Precomputed execution profiles of one block."""

    name: str
    makespan: int
    repeats: bool
    #: type -> usage of unconditional operations
    unguarded: Dict[str, np.ndarray]
    #: type -> condition -> branch -> usage of that branch's operations
    guarded: Dict[str, Dict[str, Dict[str, np.ndarray]]]
    #: condition -> branch labels
    conditions: Dict[str, List[str]]

    def sample_profiles(self, rng: random.Random) -> Dict[str, np.ndarray]:
        """Usage profiles for one activation with random branch outcomes."""
        if not self.conditions:
            return self.unguarded
        chosen = {
            condition: rng.choice(branches)
            for condition, branches in self.conditions.items()
        }
        profiles: Dict[str, np.ndarray] = {}
        for type_name, base in self.unguarded.items():
            total = base.copy()
            for condition, per_branch in self.guarded.get(type_name, {}).items():
                taken = per_branch.get(chosen[condition])
                if taken is not None:
                    total += taken
            profiles[type_name] = total
        return profiles


@dataclass
class _ProcessState:
    """Run-time state of one simulated process."""

    blocks: List[_BlockModel]
    grid: int
    offset: int = 0
    next_block: int = 0
    pending_since: Optional[int] = None
    active_block: Optional[int] = None
    active_profiles: Dict[str, np.ndarray] = field(default_factory=dict)
    active_start: int = 0
    active_length: int = 0


class SystemSimulator:
    """Replays a system schedule under random spontaneous triggering.

    Args:
        result: A complete system schedule.
        seed: RNG seed; runs are fully reproducible.
        trigger_probability: Per-cycle chance an idle process is triggered.
        tracer: Observability sink; the default no-op tracer records
            nothing and costs nothing.
    """

    def __init__(
        self,
        result: SystemSchedule,
        *,
        seed: int = 0,
        trigger_probability: float = 0.25,
        tracer=None,
    ) -> None:
        if not 0.0 < trigger_probability <= 1.0:
            raise SimulationError(
                f"trigger probability must be in (0, 1], got {trigger_probability}"
            )
        self.result = result
        self.seed = seed
        self.trigger_probability = trigger_probability
        self.tracer = as_tracer(tracer)
        self._type_names = [t.name for t in result.library.types]
        self._pools = dict(result.instance_counts())
        self._states = self._build_states()

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _build_states(self) -> Dict[str, _ProcessState]:
        states: Dict[str, _ProcessState] = {}
        for process in self.result.system.processes:
            models = []
            for block in process.blocks:
                models.append(self._build_block_model(process.name, block))
            grid = max(1, self.result.grid_spacing(process.name))
            offset = self.result.offset_of(process.name) % grid
            states[process.name] = _ProcessState(
                blocks=models, grid=grid, offset=offset
            )
        return states

    def _build_block_model(self, process_name: str, block) -> _BlockModel:
        sched = self.result.schedule_of(process_name, block.name)
        length = sched.makespan
        unguarded: Dict[str, np.ndarray] = {}
        guarded: Dict[str, Dict[str, Dict[str, np.ndarray]]] = {}
        for rtype in self.result.library.types_used_by(block.graph):
            unguarded[rtype.name] = np.zeros(length, dtype=int)
        for op in block.graph:
            rtype = self.result.library.type_of(op)
            start = sched.start(op.op_id)
            row = np.zeros(length, dtype=int)
            row[start : start + rtype.occupancy] += 1
            if op.guard is None:
                unguarded[rtype.name] += row
            else:
                condition, branch = op.guard
                per_branch = guarded.setdefault(rtype.name, {}).setdefault(
                    condition, {}
                )
                if branch in per_branch:
                    per_branch[branch] += row
                else:
                    per_branch[branch] = row
        return _BlockModel(
            name=block.name,
            makespan=length,
            repeats=block.repeats,
            unguarded=unguarded,
            guarded=guarded,
            conditions=block.graph.conditions(),
        )

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------
    def run(self, cycles: int, *, seed: Optional[int] = None) -> SimulationStats:
        """Simulate the given number of cycles and return statistics.

        ``seed`` overrides the constructor seed for this run only, so
        one simulator can drive a multi-seed campaign; the stats always
        report the seed actually used.
        """
        if cycles < 1:
            raise SimulationError(f"need >= 1 cycle, got {cycles}")
        run_seed = self.seed if seed is None else seed
        rng = random.Random(run_seed)
        # Reset run-time process state: trials must not leak in-flight
        # blocks or pending triggers from a previous seed into the next
        # one.  The precomputed block models are kept as-is.
        for state in self._states.values():
            state.next_block = 0
            state.pending_since = None
            state.active_block = None
            state.active_profiles = {}
            state.active_start = 0
            state.active_length = 0
        trace = Trace()
        activations = {name: 0 for name in self.result.system.process_names}
        busy = {name: 0 for name in self._type_names}
        peak = {name: 0 for name in self._type_names}

        tracer = self.tracer
        with tracer.activate(), tracer.span(
            "simulate", cycles=cycles, seed=run_seed
        ):
            if tracer.enabled:
                tracer.count(SIMULATION_CYCLES, cycles)
            for cycle in range(cycles):
                self._advance_triggers(cycle, rng, trace, activations)
                usage_total: Dict[str, int] = {name: 0 for name in self._type_names}
                usage_by_process: Dict[Tuple[str, str], int] = {}
                for process_name, state in self._states.items():
                    if state.active_block is None:
                        continue
                    rel = cycle - state.active_start
                    for type_name, profile in state.active_profiles.items():
                        if rel < profile.size:
                            used = int(profile[rel])
                            if used:
                                usage_total[type_name] += used
                                usage_by_process[(process_name, type_name)] = used
                    if rel + 1 >= state.active_length:
                        self._finish_block(state, cycle, rng)
                self._check_cycle(cycle, usage_total, usage_by_process, trace)
                for type_name, used in usage_total.items():
                    busy[type_name] += used
                    peak[type_name] = max(peak[type_name], used)

        _log.info(
            "simulated %d cycles (seed %d): %d activations, %d violations",
            cycles,
            run_seed,
            sum(activations.values()),
            len(trace.violations),
        )
        return SimulationStats(
            cycles=cycles,
            seed=run_seed,
            activations=activations,
            busy_cycles=busy,
            pool_sizes=self._pools,
            peak_usage=peak,
            trace=trace,
        )

    def _advance_triggers(
        self,
        cycle: int,
        rng: random.Random,
        trace: Trace,
        activations: Dict[str, int],
    ) -> None:
        for process_name, state in self._states.items():
            if state.active_block is not None:
                continue
            if state.pending_since is None:
                if rng.random() < self.trigger_probability:
                    state.pending_since = cycle
            aligned = (cycle - state.offset) % state.grid == 0
            if state.pending_since is not None and aligned:
                index = state.next_block
                model = state.blocks[index]
                state.active_block = index
                state.active_profiles = model.sample_profiles(rng)
                state.active_start = cycle
                state.active_length = model.makespan
                state.next_block = (index + 1) % len(state.blocks)
                activations[process_name] += 1
                trace.activations.append(
                    Activation(
                        process=process_name,
                        block=model.name,
                        requested_at=state.pending_since,
                        started_at=cycle,
                        finished_at=cycle + model.makespan,
                    )
                )
                state.pending_since = None

    def _finish_block(
        self, state: _ProcessState, cycle: int, rng: random.Random
    ) -> None:
        index = state.active_block
        assert index is not None
        model = state.blocks[index]
        state.active_block = None
        state.active_profiles = {}
        if model.repeats and rng.random() < 0.5:
            # Loop body with unbounded iteration count: immediately re-arm.
            state.pending_since = cycle + 1
            state.next_block = index

    def _check_cycle(
        self,
        cycle: int,
        usage_total: Dict[str, int],
        usage_by_process: Dict[Tuple[str, str], int],
        trace: Trace,
    ) -> None:
        for type_name, used in usage_total.items():
            limit = self._pools.get(type_name, 0)
            if used > limit:
                trace.violations.append(
                    Violation(
                        cycle=cycle,
                        type_name=type_name,
                        detail=f"total usage {used} exceeds {limit} instances",
                    )
                )
        for (process_name, type_name), used in usage_by_process.items():
            if not self.result.assignment.shares_globally(type_name, process_name):
                continue
            period = self.result.periods.period(type_name)
            count(AUTHORIZATION_CHECKS)
            granted = int(
                self.result.authorization(process_name, type_name)[cycle % period]
            )
            if used > granted:
                trace.violations.append(
                    Violation(
                        cycle=cycle,
                        type_name=type_name,
                        detail=(
                            f"{process_name} used {used} at slot {cycle % period} "
                            f"but is granted {granted}"
                        ),
                    )
                )
