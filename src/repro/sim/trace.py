"""Simulation trace records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass(frozen=True)
class Activation:
    """One block activation observed during simulation."""

    process: str
    block: str
    requested_at: int
    started_at: int
    finished_at: int

    @property
    def grid_wait(self) -> int:
        """Cycles the spontaneous trigger waited for the start grid."""
        return self.started_at - self.requested_at


@dataclass(frozen=True)
class Violation:
    """A resource-protocol violation (should never occur)."""

    cycle: int
    type_name: str
    detail: str


@dataclass
class Trace:
    """Chronological record of one simulation run."""

    activations: List[Activation] = field(default_factory=list)
    violations: List[Violation] = field(default_factory=list)

    def activations_of(self, process: str) -> List[Activation]:
        return [a for a in self.activations if a.process == process]

    @property
    def mean_grid_wait(self) -> float:
        if not self.activations:
            return 0.0
        return sum(a.grid_wait for a in self.activations) / len(self.activations)

    def render(self, limit: Optional[int] = 20) -> str:
        lines = []
        shown = self.activations if limit is None else self.activations[:limit]
        for act in shown:
            lines.append(
                f"cycle {act.requested_at:5d}: {act.process}/{act.block} "
                f"requested, started {act.started_at}, finished {act.finished_at}"
            )
        if limit is not None and len(self.activations) > limit:
            lines.append(f"... {len(self.activations) - limit} more activations")
        for violation in self.violations:
            lines.append(
                f"VIOLATION at cycle {violation.cycle} ({violation.type_name}): "
                f"{violation.detail}"
            )
        return "\n".join(lines)
