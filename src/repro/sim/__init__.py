"""Cycle-accurate simulation of scheduled multi-process systems."""

from .simulator import SimulationStats, SystemSimulator
from .trace import Activation, Trace, Violation

__all__ = [
    "Activation",
    "SimulationStats",
    "SystemSimulator",
    "Trace",
    "Violation",
]
