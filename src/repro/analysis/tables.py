"""ASCII renderings of the paper's Table 1 and related reports.

Table 1 of the paper lists, per resource type and process, the
modulo-maximum transformed distribution (the per-slot authorization), the
required instance count, and the block's usage distribution.  These
renderers regenerate that layout from a :class:`SystemSchedule`.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core.result import SystemSchedule


def _int_row(values: np.ndarray) -> str:
    return " ".join(f"{int(v):2d}" for v in values)


def table1(result: SystemSchedule) -> str:
    """Regenerate the paper's Table 1 for a globally scheduled system.

    One section per global resource type: the per-process slot
    authorizations (the modulo-max transformed usage), the per-process
    usage distributions per block, the slot-wise total, and the pool size.
    Local types are listed with their per-process counts afterwards.
    """
    lines: List[str] = []
    lines.append(f"=== scheduling results of system {result.system.name!r} ===")
    for type_name in result.assignment.global_types:
        rtype = result.library.type(type_name)
        period = result.periods.period(type_name)
        lines.append("")
        symbols = "/".join(sorted(kind.symbol for kind in rtype.kinds))
        lines.append(f"global type {type_name!r} ({symbols}), period {period}")
        lines.append(f"{'process':<10} {'authorization per slot':<{3 * period}} #")
        for process_name in result.assignment.group(type_name):
            auth = result.authorization(process_name, type_name)
            lines.append(
                f"{process_name:<10} {_int_row(auth):<{3 * period}} {int(auth.max())}"
            )
        demand = result.global_demand(type_name)
        lines.append(
            f"{'all':<10} {_int_row(demand):<{3 * period}} "
            f"{result.global_instances(type_name)}"
        )
    local_lines: List[str] = []
    for rtype in result.library.types:
        for process in result.system.processes:
            count = result.local_instances(process.name, rtype.name)
            if count:
                local_lines.append(f"  {process.name}: {count}x {rtype.name}")
    if local_lines:
        lines.append("")
        lines.append("local instances:")
        lines.extend(local_lines)
    lines.append("")
    counts = result.instance_counts()
    summary = ", ".join(f"{count}x {name}" for name, count in counts.items())
    lines.append(f"total: {summary}; area cost {result.total_area():g}")
    if result.iterations:
        lines.append(
            f"({result.iterations} iterations, {result.wall_time:.2f} s)"
        )
    return "\n".join(lines)


def usage_table(result: SystemSchedule, type_name: str) -> str:
    """Per-block usage distributions of one resource type (Table 1 detail)."""
    lines = [f"usage of {type_name!r} per block:"]
    for (process_name, block_name), sched in result.block_schedules.items():
        profile = sched.usage_profile(type_name)
        if profile.any():
            lines.append(f"  {process_name}/{block_name}: {_int_row(profile)}")
    return "\n".join(lines)
