"""Certificate artifacts: machine-checkable safety proofs and refutations.

A :class:`Certificate` is the output of the safety certifier
(:mod:`repro.analysis.static.certifier`): per global resource type, the
per-process folded occupancy envelopes with their slot witnesses, the
admissible offset-class coverage record, and the proven peak demand
against the allocated pool.  The artifact is plain data — JSON in, JSON
out — so it can be re-verified by the independent
:func:`repro.analysis.static.checker.check_certificate` without trusting
a single line of the certifier.

When the proof fails, the certificate instead carries a
:class:`Counterexample`: one concrete, grid-admissible offset assignment
plus the period slot at which the summed occupancy exceeds the pool,
down to the ``(process, block, relative step)`` contributions.  The same
formatting backs the conflict details of :mod:`repro.core.verify`.

This module deliberately imports nothing from the scheduling layers:
certificates are pure data and must stay loadable anywhere.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Format tag of the JSON artifact; bump on breaking schema changes.
CERTIFICATE_FORMAT = "repro-certificate"
CERTIFICATE_VERSION = 1

#: Verdict labels.
VERDICT_SAFE = "safe"
VERDICT_UNSAFE = "unsafe"

#: Offset models a certificate can be proven under.
MODEL_DEPLOYED = "deployed"
MODEL_ANY = "any-offset"

#: How a type proof was established: full offset-class enumeration, or
#: the residue-pressure interval fast path (upper bound <= pool; no
#: coset enumeration needed).
METHOD_ENUMERATION = "enumeration"
METHOD_INTERVAL = "interval"


@dataclass(frozen=True)
class Contribution:
    """One process's share of a conflicting period slot."""

    process: str
    block: str
    step: int  # block-relative control step
    usage: int
    start: int  # absolute block start time realizing the conflict

    def as_dict(self) -> Dict[str, Any]:
        return {
            "process": self.process,
            "block": self.block,
            "step": self.step,
            "usage": self.usage,
            "start": self.start,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Contribution":
        return cls(
            process=str(data["process"]),
            block=str(data["block"]),
            step=int(data["step"]),
            usage=int(data["usage"]),
            start=int(data["start"]),
        )


@dataclass(frozen=True)
class Counterexample:
    """A concrete offset assignment that overfills one global pool.

    The refutation triple the paper's safety argument forbids: a global
    ``type``, a period ``slot``, and the sharing ``processes`` whose
    summed occupancy at that slot exceeds the allocated pool — each with
    the block, relative step, and grid-admissible absolute start time
    realizing it.
    """

    type_name: str
    slot: int
    period: int
    pool: int
    demand: int
    contributions: List[Contribution] = field(default_factory=list)

    @property
    def processes(self) -> List[str]:
        return [c.process for c in self.contributions]

    @property
    def offsets(self) -> Dict[str, int]:
        """Absolute start offsets per process realizing the conflict."""
        return {c.process: c.start for c in self.contributions}

    def triple(self) -> str:
        """The ``(type, slot, processes)`` conflict triple, rendered."""
        return (
            f"(type {self.type_name!r}, slot {self.slot}, "
            f"processes {', '.join(self.processes)})"
        )

    def render(self) -> str:
        """Multi-line human-readable refutation."""
        lines = [
            f"conflict {self.triple()}: slot demand {self.demand} exceeds "
            f"pool {self.pool} (period {self.period})"
        ]
        for c in self.contributions:
            lines.append(
                f"  {c.process}/{c.block} starting at t={c.start} uses "
                f"{c.usage} at relative step {c.step} "
                f"(absolute slot {(c.start + c.step) % self.period})"
            )
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "type": self.type_name,
            "slot": self.slot,
            "period": self.period,
            "pool": self.pool,
            "demand": self.demand,
            "contributions": [c.as_dict() for c in self.contributions],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Counterexample":
        return cls(
            type_name=str(data["type"]),
            slot=int(data["slot"]),
            period=int(data["period"]),
            pool=int(data["pool"]),
            demand=int(data["demand"]),
            contributions=[
                Contribution.from_dict(entry)
                for entry in data.get("contributions", [])
            ],
        )


@dataclass(frozen=True)
class SlotWitness:
    """Evidence that an envelope entry is attained by a real operation set.

    ``usage`` operations of the certified type are simultaneously busy at
    block-relative step ``step`` of ``block``, and ``step`` folds onto the
    witnessed slot under the process's rotation.
    """

    slot: int
    block: str
    step: int
    usage: int

    def as_dict(self) -> Dict[str, Any]:
        return {
            "slot": self.slot,
            "block": self.block,
            "step": self.step,
            "usage": self.usage,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SlotWitness":
        return cls(
            slot=int(data["slot"]),
            block=str(data["block"]),
            step=int(data["step"]),
            usage=int(data["usage"]),
        )


@dataclass(frozen=True)
class ProcessEnvelope:
    """One process's folded worst-case occupancy of one global type.

    ``envelope[tau]`` bounds the process's concurrent usage at every
    absolute time step congruent to ``tau`` **relative to the block
    start** (unrotated); the admissible rotations of the envelope along
    the period axis are ``{(base + i * step) % period : 0 <= i < count}``.
    """

    process: str
    grid: int
    configured_offset: int
    rotation_base: int
    rotation_step: int
    rotation_count: int
    envelope: List[int]
    witnesses: List[SlotWitness] = field(default_factory=list)

    def rotations(self) -> List[int]:
        period = len(self.envelope)
        return [
            (self.rotation_base + i * self.rotation_step) % period
            for i in range(self.rotation_count)
        ]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "process": self.process,
            "grid": self.grid,
            "configured_offset": self.configured_offset,
            "rotation": {
                "base": self.rotation_base,
                "step": self.rotation_step,
                "count": self.rotation_count,
            },
            "envelope": list(self.envelope),
            "witnesses": [w.as_dict() for w in self.witnesses],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ProcessEnvelope":
        rotation = data.get("rotation", {})
        return cls(
            process=str(data["process"]),
            grid=int(data["grid"]),
            configured_offset=int(data["configured_offset"]),
            rotation_base=int(rotation.get("base", 0)),
            rotation_step=int(rotation.get("step", 1)),
            rotation_count=int(rotation.get("count", 1)),
            envelope=[int(v) for v in data.get("envelope", [])],
            witnesses=[
                SlotWitness.from_dict(entry)
                for entry in data.get("witnesses", [])
            ],
        )


@dataclass(frozen=True)
class TypeProof:
    """The per-type proof obligation and its outcome.

    For a safe enumeration proof ``proven_peak`` is the exact maximum
    slot demand over the full offset-class coverage; for an unsafe one
    it is the demand of the first violating combination found (a
    reachable lower bound — enumeration stops at the refutation).  A
    proof with ``method == "interval"`` came from the residue-pressure
    fast path: ``proven_peak`` is the sound rotation-joined *upper
    bound* ``max_tau sum_p max_rho E_p[(tau - rho) % P]`` which already
    fits the pool, so no offset class was enumerated
    (``classes_checked == 0``) and the checker re-derives the bound
    instead of the exact peak.
    """

    type_name: str
    period: int
    pool: int
    proven_peak: int
    multicycle: bool
    classes_total: int  # |product of per-process rotation sets|
    classes_checked: int  # after the common-rotation quotient
    processes: List[ProcessEnvelope] = field(default_factory=list)
    method: str = METHOD_ENUMERATION

    @property
    def safe(self) -> bool:
        return self.proven_peak <= self.pool

    def as_dict(self) -> Dict[str, Any]:
        return {
            "type": self.type_name,
            "period": self.period,
            "pool": self.pool,
            "proven_peak": self.proven_peak,
            "multicycle": self.multicycle,
            "offset_classes": {
                "total": self.classes_total,
                "checked": self.classes_checked,
            },
            "method": self.method,
            "processes": [p.as_dict() for p in self.processes],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TypeProof":
        classes = data.get("offset_classes", {})
        return cls(
            type_name=str(data["type"]),
            period=int(data["period"]),
            pool=int(data["pool"]),
            proven_peak=int(data["proven_peak"]),
            multicycle=bool(data.get("multicycle", False)),
            classes_total=int(classes.get("total", 1)),
            classes_checked=int(classes.get("checked", 1)),
            processes=[
                ProcessEnvelope.from_dict(entry)
                for entry in data.get("processes", [])
            ],
            method=str(data.get("method", METHOD_ENUMERATION)),
        )


@dataclass
class Certificate:
    """A machine-checkable safety proof (or refutation) of one schedule."""

    system: str
    offset_model: str
    verdict: str
    types: List[TypeProof] = field(default_factory=list)
    counterexample: Optional[Counterexample] = None

    @property
    def safe(self) -> bool:
        return self.verdict == VERDICT_SAFE

    def proof(self, type_name: str) -> TypeProof:
        for proof in self.types:
            if proof.type_name == type_name:
                return proof
        raise KeyError(f"certificate holds no proof for type {type_name!r}")

    def summary(self) -> str:
        lines = [
            f"certificate for {self.system!r} "
            f"({self.offset_model} offsets): {self.verdict}"
        ]
        for proof in self.types:
            lines.append(
                f"  {proof.type_name}: period {proof.period}, "
                f"proven peak {proof.proven_peak} <= pool {proof.pool}"
                if proof.safe
                else f"  {proof.type_name}: period {proof.period}, "
                f"proven peak {proof.proven_peak} > pool {proof.pool}"
            )
            lines.append(
                f"    offset classes: {proof.classes_checked} checked "
                f"(of {proof.classes_total} admissible)"
            )
        if self.counterexample is not None:
            lines.append(self.counterexample.render())
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "format": CERTIFICATE_FORMAT,
            "version": CERTIFICATE_VERSION,
            "system": self.system,
            "offset_model": self.offset_model,
            "verdict": self.verdict,
            "types": [proof.as_dict() for proof in self.types],
        }
        data["counterexample"] = (
            None
            if self.counterexample is None
            else self.counterexample.as_dict()
        )
        return data

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Certificate":
        if data.get("format") != CERTIFICATE_FORMAT:
            raise ValueError(
                f"not a {CERTIFICATE_FORMAT} artifact: "
                f"format={data.get('format')!r}"
            )
        counterexample = data.get("counterexample")
        return cls(
            system=str(data.get("system", "")),
            offset_model=str(data.get("offset_model", MODEL_DEPLOYED)),
            verdict=str(data.get("verdict", "")),
            types=[TypeProof.from_dict(entry) for entry in data.get("types", [])],
            counterexample=(
                None
                if counterexample is None
                else Counterexample.from_dict(counterexample)
            ),
        )

    @classmethod
    def from_json(cls, text: str) -> "Certificate":
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "Certificate":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())
