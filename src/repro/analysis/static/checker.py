"""Independent certificate re-verification.

:func:`check_certificate` re-derives every obligation of a
:class:`~repro.analysis.static.certificate.Certificate` from the schedule
itself, sharing no code with the certifier: envelopes are refolded from
the raw block usage profiles, rotation arithmetic is recomputed from the
configured offsets and grids, and the proven peak is re-established by a
direct product enumeration over per-process *distinct* rolled envelopes
(an independent formulation of the certifier's symmetry reduction).  A
certificate only passes if a second, dissimilar implementation reaches
the same verdict — tampering with witnesses, envelopes, coverage counts,
or the counterexample is reported as a concrete problem string.

Returns a list of problems; an empty list means the certificate is valid
for the given schedule.
"""

from __future__ import annotations

import math
from itertools import product
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Tuple

from .certificate import (
    METHOD_ENUMERATION,
    METHOD_INTERVAL,
    MODEL_ANY,
    MODEL_DEPLOYED,
    VERDICT_SAFE,
    VERDICT_UNSAFE,
    Certificate,
    Counterexample,
    ProcessEnvelope,
    TypeProof,
)

if TYPE_CHECKING:  # imported for annotations only: the checker stays
    from ...core.result import SystemSchedule  # independent of the solvers


def check_certificate(
    certificate: Certificate,
    result: "SystemSchedule",
    *,
    pools: Optional[Mapping[str, int]] = None,
) -> List[str]:
    """Re-verify a certificate against a schedule; [] means valid."""
    problems: List[str] = []
    if certificate.offset_model not in (MODEL_DEPLOYED, MODEL_ANY):
        return [f"unknown offset model {certificate.offset_model!r}"]
    if certificate.system != result.system.name:
        problems.append(
            f"certificate is for system {certificate.system!r}, "
            f"schedule is {result.system.name!r}"
        )
    covered = {proof.type_name for proof in certificate.types}
    for type_name in result.assignment.global_types:
        if type_name not in covered:
            problems.append(f"global type {type_name!r} has no proof")
    unsafe = False
    for proof in certificate.types:
        problems.extend(_check_proof(proof, certificate.offset_model, result, pools))
        unsafe = unsafe or proof.proven_peak > proof.pool
    if certificate.safe and unsafe:
        problems.append("verdict says safe but a proof exceeds its pool")
    if certificate.verdict == VERDICT_UNSAFE:
        if certificate.counterexample is None:
            problems.append("unsafe verdict without a counterexample")
        else:
            problems.extend(
                _check_counterexample(
                    certificate.counterexample, certificate.offset_model, result
                )
            )
    elif certificate.verdict != VERDICT_SAFE:
        problems.append(f"unknown verdict {certificate.verdict!r}")
    return problems


def _check_proof(
    proof: TypeProof,
    model: str,
    result: "SystemSchedule",
    pools: Optional[Mapping[str, int]],
) -> List[str]:
    problems: List[str] = []
    name = proof.type_name
    if not result.assignment.is_global(name):
        return [f"{name}: not a global type of this schedule"]
    period = result.periods.period(name)
    if proof.period != period:
        return [f"{name}: period {proof.period} != schedule period {period}"]
    expected_pool = (
        int(pools[name])
        if pools is not None and name in pools
        else result.global_instances(name)
    )
    if proof.pool != expected_pool:
        problems.append(f"{name}: pool {proof.pool} != allocated {expected_pool}")
    group = result.assignment.group(name)
    if sorted(e.process for e in proof.processes) != sorted(group):
        problems.append(f"{name}: envelope processes != sharing group {group}")
        return problems

    classes_total = 1
    variants: List[List[Tuple[int, ...]]] = []
    for env in proof.processes:
        problems.extend(_check_envelope(env, name, period, model, result))
        if problems:
            return problems
        rotations = env.rotations()
        classes_total *= len(rotations)
        distinct = list(
            dict.fromkeys(
                tuple(env.envelope[(tau - rho) % period] for tau in range(period))
                for rho in rotations
            )
        )
        variants.append(distinct)
    if proof.classes_total != classes_total:
        problems.append(
            f"{name}: coverage claims {proof.classes_total} admissible "
            f"classes, rotation sets give {classes_total}"
        )
    if proof.method == METHOD_INTERVAL:
        # Interval fast-path proof: re-derive the rotation-joined upper
        # bound max_tau sum_p max_rho rolled_p[tau] from the distinct
        # rolled variants and require it to match the claim exactly.
        # Such a proof is only ever issued when the bound fits the pool,
        # so an over-pool interval claim is a forgery by construction.
        bound = max(
            sum(max(v[tau] for v in per_process) for per_process in variants)
            for tau in range(period)
        ) if variants else 0
        if bound != proof.proven_peak:
            problems.append(
                f"{name}: recomputed interval bound {bound} != claimed "
                f"{proof.proven_peak}"
            )
        if proof.proven_peak > proof.pool:
            problems.append(
                f"{name}: interval proof claims peak {proof.proven_peak} "
                f"above pool {proof.pool} — fast path never refutes"
            )
        if proof.classes_checked != 0:
            problems.append(
                f"{name}: interval proof claims {proof.classes_checked} "
                f"enumerated classes; the fast path enumerates none"
            )
        return problems
    if proof.method != METHOD_ENUMERATION:
        problems.append(f"{name}: unknown proof method {proof.method!r}")
        return problems
    peak = 0
    for combo in product(*variants):
        peak = max(peak, max(sum(vals) for vals in zip(*combo)) if combo else 0)
    if proof.proven_peak <= proof.pool:
        # Safe claim: the peak is exact (full coverage was enumerated).
        if peak != proof.proven_peak:
            problems.append(
                f"{name}: recomputed peak {peak} != claimed {proof.proven_peak}"
            )
    else:
        # Unsafe claim: the certifier stops at the first violation, so
        # the claimed peak is a *reachable* demand, not the maximum.
        if peak <= proof.pool:
            problems.append(
                f"{name}: claims demand {proof.proven_peak} is reachable "
                f"but no rotation combination exceeds pool {proof.pool}"
            )
        elif proof.proven_peak > peak:
            problems.append(
                f"{name}: claimed demand {proof.proven_peak} exceeds the "
                f"recomputed maximum {peak}"
            )
    return problems


def _check_envelope(
    env: ProcessEnvelope,
    name: str,
    period: int,
    model: str,
    result: "SystemSchedule",
) -> List[str]:
    who = f"{name}/{env.process}"
    problems: List[str] = []
    grid = max(1, result.grid_spacing(env.process))
    offset = result.offset_of(env.process)
    if env.grid != grid or env.configured_offset != offset:
        problems.append(f"{who}: grid/offset do not match the schedule")
    expect = (
        (offset % period, math.gcd(grid, period), period // math.gcd(grid, period))
        if model == MODEL_DEPLOYED
        else (0, 1, period)
    )
    if (env.rotation_base, env.rotation_step, env.rotation_count) != expect:
        problems.append(f"{who}: rotation set is not the admissible coset")
    folded: Dict[int, int] = {tau: 0 for tau in range(period)}
    for block, sched in result.blocks_of(env.process):
        for step, usage in enumerate(sched.usage_profile(name)):
            tau = step % period
            folded[tau] = max(folded[tau], int(usage))
    if list(env.envelope) != [folded[tau] for tau in range(period)]:
        problems.append(f"{who}: envelope does not refold from block schedules")
    schedules = dict(result.blocks_of(env.process))
    witnessed = set()
    for w in env.witnesses:
        witnessed.add(w.slot)
        sched = schedules.get(w.block)
        profile = None if sched is None else sched.usage_profile(name)
        ok = (
            profile is not None
            and 0 <= w.step < len(profile)
            and int(profile[w.step]) == w.usage
            and w.step % period == w.slot
            and 0 <= w.slot < period
            and env.envelope[w.slot] == w.usage
        )
        if not ok:
            problems.append(
                f"{who}: witness (slot {w.slot}, {w.block}, step {w.step}, "
                f"usage {w.usage}) is not realized by the schedule"
            )
    for tau in range(period):
        if folded[tau] and tau not in witnessed:
            problems.append(f"{who}: nonzero envelope slot {tau} has no witness")
    return problems


def _check_counterexample(
    cex: Counterexample, model: str, result: "SystemSchedule"
) -> List[str]:
    problems: List[str] = []
    name = cex.type_name
    if not result.assignment.is_global(name):
        return [f"counterexample names non-global type {name!r}"]
    period = result.periods.period(name)
    if cex.period != period:
        return [f"counterexample period {cex.period} != {period}"]
    group = set(result.assignment.group(name))
    total = 0
    for c in cex.contributions:
        if c.process not in group:
            problems.append(
                f"counterexample process {c.process!r} does not share {name!r}"
            )
            continue
        schedules = dict(result.blocks_of(c.process))
        sched = schedules.get(c.block)
        profile = None if sched is None else sched.usage_profile(name)
        if (
            profile is None
            or not 0 <= c.step < len(profile)
            or int(profile[c.step]) != c.usage
        ):
            problems.append(
                f"counterexample usage {c.usage} of {c.process}/{c.block} "
                f"at step {c.step} is not in the schedule"
            )
            continue
        if (c.start + c.step) % period != cex.slot:
            problems.append(
                f"counterexample contribution of {c.process} lands on slot "
                f"{(c.start + c.step) % period}, not {cex.slot}"
            )
        grid = max(1, result.grid_spacing(c.process))
        if model == MODEL_DEPLOYED and c.start % grid != result.offset_of(c.process) % grid:
            problems.append(
                f"counterexample start {c.start} of {c.process} is not on "
                f"its configured grid (offset {result.offset_of(c.process)} "
                f"mod {grid})"
            )
        total += c.usage
    if total != cex.demand:
        problems.append(
            f"counterexample demand {cex.demand} != summed usage {total}"
        )
    if cex.demand <= cex.pool:
        problems.append(
            f"counterexample demand {cex.demand} does not exceed pool {cex.pool}"
        )
    return problems
