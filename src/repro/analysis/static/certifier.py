"""The safety certifier: proves interference-freedom over all offsets.

The paper's safety argument (S2/§4) folds every block's global-resource
usage onto period slots and grants per-slot access authorizations, so a
synthesis-time decision stays safe for *any* run-time interleaving.  The
certifier turns that argument into a checked proof over one finished
:class:`~repro.core.result.SystemSchedule`:

1. **Residue-class reduction.**  A block of process ``p`` may start at
   any absolute time ``s ≡ offset_p (mod g_p)`` (eq. 2/3).  For a global
   type with period ``P`` the contribution of that block at absolute
   slot ``tau`` depends on ``s`` only through ``s mod P`` — the
   unbounded space of start times collapses to the rotation coset
   ``{(offset_p + m * g_p) mod P} = offset_p + gcd(g_p, P) * Z_P``.
   Under the eq. 3 grid rule ``P | g_p`` the coset is a singleton: this
   *is* the paper's theorem, and the certifier verifies the divisibility
   premise instead of assuming it.

2. **Envelopes.**  Per process, the folded worst-case occupancy
   ``E_p[tau] = max over blocks b, steps j ≡ tau (mod P) of usage_b[j]``
   (condition C2: at most one block of a process is ever active, so the
   per-process contribution is a max, not a sum).  Every nonzero entry
   carries a witness ``(block, step, usage)``.

3. **Coverage.**  The summed demand ``sum_p roll(E_p, rho_p)`` is
   checked against the allocated pool for every admissible rotation
   combination ``(rho_p)``.  Two reductions keep this far below brute
   force: a common rotation of all processes leaves the slot maximum
   unchanged (the first process's range shrinks by ``P / lcm(steps)``),
   and a process whose envelope is rotationally symmetric with period
   ``r`` contributes only ``r`` distinct rotations.

4. **Verdict.**  If every combination stays within the pool the
   certificate records the proven peak and the coverage counts; the
   first violating combination is realized as a concrete
   :class:`~repro.analysis.static.certificate.Counterexample` — a
   grid-admissible start-offset assignment, the conflicting slot, and
   the per-process ``(block, step, usage)`` contributions.

``offset_model="deployed"`` (default) certifies the configured
deployment (the schedule's ``start_offsets``); ``offset_model="any"``
proves the stronger property that *no* grid-aligned offset choice can
ever overfill the pool — the robustness question offset optimization
(:mod:`repro.core.offsets`) trades away.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ...core.result import SystemSchedule
from ...errors import VerificationError
from ...obs.counters import (
    ABSINT_FASTPATH_PROOFS,
    CERTIFIER_OFFSET_CLASSES,
    CERTIFIER_SLOT_CHECKS,
    count,
)
from ...obs.tracer import as_tracer
from .certificate import (
    METHOD_ENUMERATION,
    METHOD_INTERVAL,
    MODEL_ANY,
    MODEL_DEPLOYED,
    VERDICT_SAFE,
    VERDICT_UNSAFE,
    Certificate,
    Contribution,
    Counterexample,
    ProcessEnvelope,
    SlotWitness,
    TypeProof,
)

#: Accepted ``offset_model`` spellings.
_MODELS = {
    "deployed": MODEL_DEPLOYED,
    MODEL_DEPLOYED: MODEL_DEPLOYED,
    "any": MODEL_ANY,
    MODEL_ANY: MODEL_ANY,
}


class CertificationError(VerificationError):
    """The certifier was handed an input it cannot build a proof for."""

    code = "CERT"


def certify(
    result: SystemSchedule,
    *,
    pools: Optional[Mapping[str, int]] = None,
    offset_model: str = MODEL_DEPLOYED,
    fast_path: bool = True,
    tracer: Optional[Any] = None,
) -> Certificate:
    """Build a safety certificate (or counterexample) for a schedule.

    Args:
        result: The finished system schedule to certify.
        pools: Optional per-type pool allocations to certify *against*
            (e.g. a deployment's fixed instance counts).  Types not
            named fall back to the schedule's own derived pool sizes.
        offset_model: ``"deployed"`` proves the configured start
            offsets; ``"any"`` proves safety for every grid-aligned
            offset assignment.
        fast_path: Try the residue-pressure interval bound first: when
            the rotation-joined upper bound already fits the pool the
            type is proven safe without enumerating a single offset
            class (``method="interval"`` in the proof).  Pass False to
            force full enumeration — needed when the *exact* peak
            matters, not just safety.

    Returns:
        A :class:`Certificate`; ``certificate.safe`` tells the verdict
        and an unsafe certificate carries a concrete counterexample.
    """
    try:
        model = _MODELS[offset_model]
    except KeyError:
        raise CertificationError(
            f"unknown offset model {offset_model!r}; "
            f"use 'deployed' or 'any'"
        ) from None
    tracer = as_tracer(tracer)
    proofs: List[TypeProof] = []
    counterexample: Optional[Counterexample] = None
    with tracer.activate(), tracer.span(
        "certify", system=result.system.name, model=model
    ):
        for type_name in result.assignment.global_types:
            proof, refutation = _certify_type(
                result, type_name, model, pools, fast_path
            )
            proofs.append(proof)
            if tracer.enabled:
                tracer.event(
                    "certify_type",
                    type=type_name,
                    safe=proof.safe,
                    proven_peak=proof.proven_peak,
                    pool=proof.pool,
                    classes_checked=proof.classes_checked,
                    method=proof.method,
                )
            if counterexample is None and refutation is not None:
                counterexample = refutation
        verdict = VERDICT_SAFE if counterexample is None else VERDICT_UNSAFE
        if tracer.enabled:
            tracer.event(
                "certify",
                system=result.system.name,
                verdict=verdict,
                types_checked=len(proofs),
                safe_types=sum(1 for proof in proofs if proof.safe),
            )
    return Certificate(
        system=result.system.name,
        offset_model=model,
        verdict=verdict,
        types=proofs,
        counterexample=counterexample,
    )


# ----------------------------------------------------------------------
# Per-type proof construction
# ----------------------------------------------------------------------
def _certify_type(
    result: SystemSchedule,
    type_name: str,
    model: str,
    pools: Optional[Mapping[str, int]],
    fast_path: bool,
) -> Tuple[TypeProof, Optional[Counterexample]]:
    period = result.periods.period(type_name)
    if pools is not None and type_name in pools:
        pool = int(pools[type_name])
    else:
        pool = result.global_instances(type_name)
    multicycle = result.library.type(type_name).occupancy > 1
    envelopes = [
        _process_envelope(result, process_name, type_name, period, model)
        for process_name in result.assignment.group(type_name)
    ]
    classes_total = 1
    for env in envelopes:
        # Full admissible class count, before any reduction.
        step = math.gcd(env.grid, period) if model == MODEL_DEPLOYED else 1
        classes_total *= period // step

    if fast_path:
        # Residue-pressure interval fast path: the rotation-joined upper
        # bound max_tau sum_p max_rho E_p[(tau - rho) % P] dominates the
        # demand of every admissible rotation combination (each process
        # contributes at most its per-slot max over its coset), so
        # bound <= pool proves safety without enumerating a single
        # offset class.  The bound is NOT the exact peak in general —
        # the maximizing rotations may differ per slot — which is why an
        # over-pool bound falls through to full enumeration instead of
        # refuting.
        bound = _interval_upper_bound(envelopes, period)
        if bound <= pool:
            count(ABSINT_FASTPATH_PROOFS)
            proof = TypeProof(
                type_name=type_name,
                period=period,
                pool=pool,
                proven_peak=bound,
                multicycle=multicycle,
                classes_total=classes_total,
                classes_checked=0,
                processes=envelopes,
                method=METHOD_INTERVAL,
            )
            return proof, None

    peak, violation, checked = _sweep_offset_classes(
        envelopes, period, pool
    )
    count(CERTIFIER_OFFSET_CLASSES, checked)
    count(CERTIFIER_SLOT_CHECKS, checked * period)

    proof = TypeProof(
        type_name=type_name,
        period=period,
        pool=pool,
        proven_peak=peak,
        multicycle=multicycle,
        classes_total=classes_total,
        classes_checked=checked,
        processes=envelopes,
        method=METHOD_ENUMERATION,
    )
    if violation is None:
        return proof, None
    rotations, slot, demand = violation
    refutation = _realize_counterexample(
        result, type_name, period, pool, demand, envelopes, rotations, slot,
        model,
    )
    return proof, refutation


def _process_envelope(
    result: SystemSchedule,
    process_name: str,
    type_name: str,
    period: int,
    model: str,
) -> ProcessEnvelope:
    """Fold one process's worst-case occupancy onto the period axis.

    The envelope is *unrotated*: entry ``tau`` covers block-relative
    steps ``j ≡ tau (mod P)``; a start time with residue ``rho`` places
    the entry at absolute slot ``(rho + tau) mod P``.
    """
    grid = max(1, result.grid_spacing(process_name))
    offset = result.offset_of(process_name)
    envelope = [0] * period
    witnesses: Dict[int, SlotWitness] = {}
    for block_name, sched in result.blocks_of(process_name):
        profile = sched.usage_profile(type_name)
        for step, usage in enumerate(int(v) for v in profile):
            tau = step % period
            if usage > envelope[tau]:
                envelope[tau] = usage
                witnesses[tau] = SlotWitness(
                    slot=tau, block=block_name, step=step, usage=usage
                )
    if model == MODEL_DEPLOYED:
        rotation_step = math.gcd(grid, period)
        rotation_count = period // rotation_step
        rotation_base = offset % period
    else:
        rotation_step = 1
        rotation_count = period
        rotation_base = 0
    return ProcessEnvelope(
        process=process_name,
        grid=grid,
        configured_offset=offset,
        rotation_base=rotation_base,
        rotation_step=rotation_step,
        rotation_count=rotation_count,
        envelope=envelope,
        witnesses=[witnesses[tau] for tau in sorted(witnesses)],
    )


# ----------------------------------------------------------------------
# Residue-pressure interval fast path
# ----------------------------------------------------------------------
def _interval_upper_bound(
    envelopes: Sequence[ProcessEnvelope], period: int
) -> int:
    """Rotation-joined upper bound on the peak slot demand.

    ``max_tau sum_p max_{rho in R_p} E_p[(tau - rho) % P]`` — the same
    join :func:`repro.analysis.absint.join_rotations` computes, rebuilt
    here from the certifier's own envelopes so the fast path shares no
    code path with the analysis it is checked against.  Cost is
    ``O(n * P * |R|)`` versus the enumeration's product of coset sizes.
    """
    if not envelopes:
        return 0
    bound = 0
    for tau in range(period):
        demand = 0
        for env in envelopes:
            demand += max(
                env.envelope[(tau - rho) % period] for rho in env.rotations()
            )
        if demand > bound:
            bound = demand
    return bound


# ----------------------------------------------------------------------
# Offset-class enumeration
# ----------------------------------------------------------------------
def _symmetry_period(envelope: Sequence[int], period: int) -> int:
    """Smallest ``r`` dividing ``period`` with the envelope ``r``-periodic.

    Rotations congruent modulo ``r`` contribute identically, so only
    ``r`` of them are distinct — the "exploiting modulo structure"
    reduction for constant and periodic envelopes.
    """
    for r in range(1, period):
        if period % r:
            continue
        if all(envelope[i] == envelope[i % r] for i in range(period)):
            return r
    return period


def _reduced_rotations(
    envelopes: Sequence[ProcessEnvelope], period: int
) -> List[List[int]]:
    """Per-process rotation lists after the two sound reductions."""
    if not envelopes:
        return []
    rotations = [env.rotations() for env in envelopes]
    # Common-rotation quotient: shifting every rotation by a multiple of
    # lcm(steps) is admissible (stays inside each coset) and leaves the
    # slot maximum unchanged, so the first process only needs one
    # representative per orbit.
    steps = [env.rotation_step for env in envelopes]
    lcm = 1
    for step in steps:
        lcm = lcm * step // math.gcd(lcm, step)
    anchor = 0
    keep = max(1, lcm // steps[anchor])
    rotations[anchor] = rotations[anchor][:keep]
    # Symmetry de-duplication for the remaining processes: rotations
    # congruent modulo the envelope's rotational period are equivalent.
    for index in range(len(envelopes)):
        if index == anchor:
            continue
        r = _symmetry_period(envelopes[index].envelope, period)
        seen = set()
        unique: List[int] = []
        for rho in rotations[index]:
            key = rho % r
            if key not in seen:
                seen.add(key)
                unique.append(rho)
        rotations[index] = unique
    return rotations


def _sweep_offset_classes(
    envelopes: Sequence[ProcessEnvelope],
    period: int,
    pool: int,
) -> Tuple[int, Optional[Tuple[List[int], int, int]], int]:
    """Check every reduced rotation combination against the pool.

    Returns ``(proven_peak, violation, combinations_checked)`` where
    ``violation`` is ``(rotations, slot, demand)`` for the first
    combination whose slot demand exceeds the pool, or None.  Partial
    demand sums are shared along the enumeration tree, so the work is
    ``O(sum over depths of prefix-combination counts * P)`` instead of
    ``O(product * n * P)``.
    """
    if not envelopes:
        return 0, None, 1
    rotations = _reduced_rotations(envelopes, period)
    peak = 0
    checked = 0
    chosen: List[int] = []
    violation: Optional[Tuple[List[int], int, int]] = None

    def descend(index: int, demand: List[int]) -> bool:
        """Returns True to stop (violation found)."""
        nonlocal peak, checked, violation
        if index == len(envelopes):
            checked += 1
            worst_slot = max(range(period), key=lambda tau: demand[tau])
            worst = demand[worst_slot]
            peak = max(peak, worst)
            if worst > pool:
                violation = (list(chosen), worst_slot, worst)
                return True
            return False
        envelope = envelopes[index].envelope
        for rho in rotations[index]:
            rolled = [
                demand[tau] + envelope[(tau - rho) % period]
                for tau in range(period)
            ]
            chosen.append(rho)
            stop = descend(index + 1, rolled)
            chosen.pop()
            if stop:
                return True
        return False

    descend(0, [0] * period)
    return peak, violation, checked


# ----------------------------------------------------------------------
# Counterexample realization
# ----------------------------------------------------------------------
def _modinv(value: int, modulus: int) -> int:
    """Modular inverse via the extended Euclid algorithm."""
    if modulus == 1:
        return 0
    g, x = _egcd(value % modulus, modulus)
    if g != 1:
        raise CertificationError(
            f"{value} has no inverse modulo {modulus}"
        )
    return x % modulus


def _egcd(a: int, b: int) -> Tuple[int, int]:
    """gcd(a, b) and a coefficient x with a*x ≡ gcd (mod b)."""
    old_r, r = a, b
    old_x, x = 1, 0
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_x, x = x, old_x - q * x
    return old_r, old_x


def _admissible_start(
    offset: int, grid: int, period: int, rho: int
) -> int:
    """Smallest start ``s >= 0`` with ``s ≡ offset (mod grid)`` and
    ``s ≡ rho (mod period)`` — the concrete grid point realizing a
    rotation class."""
    d = math.gcd(grid, period)
    delta = (rho - offset) % period
    if delta % d:
        raise CertificationError(
            f"rotation {rho} is not admissible for offset {offset} "
            f"on grid {grid} (period {period})"
        )
    m = (delta // d * _modinv(grid // d, period // d)) % (period // d)
    return offset % grid + m * grid


def _realize_counterexample(
    result: SystemSchedule,
    type_name: str,
    period: int,
    pool: int,
    demand: int,
    envelopes: Sequence[ProcessEnvelope],
    rotations: Sequence[int],
    slot: int,
    model: str,
) -> Counterexample:
    contributions: List[Contribution] = []
    for env, rho in zip(envelopes, rotations):
        tau = (slot - rho) % period
        usage = env.envelope[tau]
        if not usage:
            continue
        witness = next(w for w in env.witnesses if w.slot == tau)
        if model == MODEL_DEPLOYED:
            start = _admissible_start(
                env.configured_offset, env.grid, period, rho
            )
        else:
            start = rho
        contributions.append(
            Contribution(
                process=env.process,
                block=witness.block,
                step=witness.step,
                usage=usage,
                start=start,
            )
        )
    return Counterexample(
        type_name=type_name,
        slot=slot,
        period=period,
        pool=pool,
        demand=demand,
        contributions=contributions,
    )


# ----------------------------------------------------------------------
# Shared conflict formatting (reused by repro.core.verify)
# ----------------------------------------------------------------------
def pool_conflict(
    result: SystemSchedule, type_name: str, pool: int
) -> Counterexample:
    """Build the conflict triple for a pool exceeded under the
    *configured* offsets — the shape :mod:`repro.core.verify` reports.

    The offending slot is the demand argmax; contributions come from the
    per-process envelope witnesses at that slot.
    """
    if not result.assignment.is_global(type_name):
        raise CertificationError(
            f"type {type_name!r} is not globally assigned; no pool to refute"
        )
    period = result.periods.period(type_name)
    envelopes = [
        _process_envelope(result, name, type_name, period, MODEL_DEPLOYED)
        for name in result.assignment.group(type_name)
    ]
    rotations = [env.rotation_base for env in envelopes]
    demand = [0] * period
    for env, rho in zip(envelopes, rotations):
        for tau in range(period):
            demand[tau] += env.envelope[(tau - rho) % period]
    slot = max(range(period), key=lambda tau: demand[tau])
    return _realize_counterexample(
        result,
        type_name,
        period,
        pool,
        demand[slot],
        envelopes,
        rotations,
        slot,
        MODEL_DEPLOYED,
    )
