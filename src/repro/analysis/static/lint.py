"""Rule-driven IR lint over scheduling problems.

A :class:`LintRule` inspects one :class:`repro.api.Problem` (and, for
schedule-scoped rules, the schedule plus its safety certificate) and
reports findings through the :mod:`repro.validation.diagnostics`
registry under stable ``LINT*`` codes — same report type, severity
conventions, and exit codes as ``repro check``, so editors and CI treat
both passes uniformly:

==========  ========  =====================================================
code        severity  finding
==========  ========  =====================================================
LINT001     error     operation timeframe infeasible (ASAP exceeds ALAP)
LINT101     warning   dead operation: result never consumed or stored
LINT102     warning   redundant transitive dependence edge
LINT103     warning   pool allocation exceeds the certifier's proven peak
LINT201     info      block fully rigid (every timeframe a single slot)
LINT202     info      multicycle pool sized above the peak slot demand
LINT203     info      period slots never authorized for the sharing group
LINT301     warning   pressure hotspot: every schedule saturates the pool
LINT302     info      residue class unreachable by any admissible schedule
LINT303     info      pool interval-proven over-provisioned
PERIOD1xx   (reused)  eq. 2-3 period-grid rules, shared with preflight
==========  ========  =====================================================

Rules are pure functions over a lazy :class:`LintContext`; problem-scoped
rules never schedule anything, schedule-scoped rules share one scheduling
run and one certificate.  :func:`run_lint` executes a rule set (default:
:data:`DEFAULT_RULES`) and returns a
:class:`~repro.validation.diagnostics.DiagnosticReport`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ...errors import ReproError
from ...ir.operation import OpKind
from ...obs.counters import LINT_FINDINGS, LINT_RULES_RUN, count
from ...validation.diagnostics import DiagnosticReport
from ...validation.preflight import check_period_grid
from .certificate import Certificate
from .certifier import certify

if TYPE_CHECKING:
    from ...api import Problem
    from ...core.result import SystemSchedule
    from ...ir.dfg import DataFlowGraph
    from ...ir.operation import Operation

#: Rule scopes: problem-scoped rules read only the IR; schedule-scoped
#: rules additionally see the scheduled system and its certificate.
SCOPE_PROBLEM = "problem"
SCOPE_SCHEDULE = "schedule"


class LintContext:
    """Lazy shared state handed to every rule of one lint run.

    The schedule and certificate are produced at most once, on first
    access by a schedule-scoped rule; if the problem does not schedule,
    they stay ``None`` and such rules are skipped.
    """

    def __init__(
        self, problem: "Problem", pools: Optional[Mapping[str, int]] = None
    ) -> None:
        self.problem = problem
        self.pools = dict(pools) if pools else None
        self._schedule: Optional["SystemSchedule"] = None
        self._schedule_failed = False
        self._certificate: Optional[Certificate] = None

    @property
    def schedule(self) -> Optional["SystemSchedule"]:
        if self._schedule is None and not self._schedule_failed:
            try:
                self._schedule = self.problem.schedule()
            except ReproError:
                self._schedule_failed = True
        return self._schedule

    @property
    def certificate(self) -> Optional[Certificate]:
        if self._certificate is None and self.schedule is not None:
            self._certificate = certify(self.schedule, pools=self.pools)
        return self._certificate


@dataclass(frozen=True)
class LintRule:
    """One named lint pass emitting a fixed set of diagnostic codes."""

    name: str
    codes: Tuple[str, ...]
    scope: str
    run: Callable[[LintContext, DiagnosticReport], None]

    def applies(self, ctx: LintContext) -> bool:
        return self.scope == SCOPE_PROBLEM or ctx.schedule is not None


def run_lint(
    problem: "Problem",
    *,
    rules: Optional[Sequence[LintRule]] = None,
    pools: Optional[Mapping[str, int]] = None,
    source: Optional[str] = None,
    tracer: Optional[Any] = None,
) -> DiagnosticReport:
    """Run a lint rule set over a problem and return the report."""
    from ...obs.tracer import as_tracer

    tracer = as_tracer(tracer)
    report = DiagnosticReport(source=source or problem.system.name, label="lint")
    ctx = LintContext(problem, pools=pools)
    with tracer.activate(), tracer.span("lint", system=problem.system.name):
        for rule in rules if rules is not None else DEFAULT_RULES:
            if not rule.applies(ctx):
                continue
            before = len(report.diagnostics)
            with tracer.span("lint_rule", rule=rule.name):
                rule.run(ctx, report)
            count(LINT_RULES_RUN)
            count(LINT_FINDINGS, len(report.diagnostics) - before)
    return report


# ----------------------------------------------------------------------
# Problem-scoped rules
# ----------------------------------------------------------------------
def _frames(
    graph: "DataFlowGraph",
    latency_of: Callable[["Operation"], int],
    deadline: int,
) -> Dict[str, Tuple[int, int]]:
    """Unconstrained ``[asap, alap]`` start frames; never raises.

    Computed directly (forward/backward longest path) rather than via
    :class:`repro.scheduling.timeframes.FrameTable`, which raises on
    infeasible frames — the lint wants to *report* those.
    """
    asap: Dict[str, int] = {}
    order = graph.topological_order()
    for oid in order:
        asap[oid] = max(
            (
                asap[pred] + latency_of(graph.operation(pred))
                for pred in graph.predecessors(oid)
            ),
            default=0,
        )
    alap: Dict[str, int] = {}
    for oid in reversed(order):
        finish = min(
            (alap[succ] for succ in graph.successors(oid)),
            default=deadline,
        )
        alap[oid] = finish - latency_of(graph.operation(oid))
    return {oid: (asap[oid], alap[oid]) for oid in order}


def _rule_timeframes(ctx: LintContext, report: DiagnosticReport) -> None:
    library = ctx.problem.library
    for process, block in ctx.problem.system.iter_blocks():
        try:
            frames = _frames(block.graph, library.latency_of, block.deadline)
        except ReproError:
            continue  # uncovered kinds / cycles: preflight territory
        rigid = bool(frames)
        for oid, (lo, hi) in frames.items():
            if lo > hi:
                report.add(
                    "LINT001",
                    f"timeframe of {oid!r} is empty: asap {lo} > alap {hi} "
                    f"against deadline {block.deadline}",
                    process=process.name,
                    block=block.name,
                    op=oid,
                    hint="raise the deadline or shorten the dependence chain",
                )
            rigid = rigid and lo == hi
        if rigid:
            report.add(
                "LINT201",
                "every operation is frame-rigid (zero mobility); the "
                "scheduler has no freedom to balance resource usage",
                process=process.name,
                block=block.name,
                hint="a larger deadline would unlock cheaper schedules",
            )


def _rule_dead_operations(ctx: LintContext, report: DiagnosticReport) -> None:
    for process, block in ctx.problem.system.iter_blocks():
        graph = block.graph
        sinks = graph.sinks()
        stored = [
            oid for oid in sinks if graph.operation(oid).kind is OpKind.STORE
        ]
        if not stored:
            continue  # no explicit outputs: plain sinks ARE the outputs
        for oid in sinks:
            if graph.operation(oid).kind is OpKind.STORE:
                continue
            report.add(
                "LINT101",
                f"result of {oid!r} is never consumed or stored",
                process=process.name,
                block=block.name,
                op=oid,
                hint="add a consumer/store edge or delete the operation",
            )


def _rule_redundant_edges(ctx: LintContext, report: DiagnosticReport) -> None:
    for process, block in ctx.problem.system.iter_blocks():
        graph = block.graph
        # Reachability closure in reverse topological order.
        reachable: Dict[str, Set[str]] = {}
        try:
            order = graph.topological_order()
        except ReproError:
            continue
        for oid in reversed(order):
            acc: Set[str] = set()
            for succ in graph.successors(oid):
                acc.add(succ)
                acc |= reachable[succ]
            reachable[oid] = acc
        for src, dst in graph.edges:
            indirect = any(
                dst in reachable[mid]
                for mid in graph.successors(src)
                if mid != dst
            )
            if indirect:
                report.add(
                    "LINT102",
                    f"edge {src!r} -> {dst!r} is implied by a longer "
                    "dependence path",
                    process=process.name,
                    block=block.name,
                    hint="drop the direct edge; precedence is preserved",
                )


def _rule_period_grid(ctx: LintContext, report: DiagnosticReport) -> None:
    problem = ctx.problem
    groups = {
        type_name: problem.assignment.group(type_name)
        for type_name in problem.assignment.global_types
    }
    check_period_grid(
        report, problem.system, groups, groups, problem.periods.as_dict
    )


# ----------------------------------------------------------------------
# Schedule-scoped rules
# ----------------------------------------------------------------------
def _rule_pool_provisioning(ctx: LintContext, report: DiagnosticReport) -> None:
    result = ctx.schedule
    certificate = ctx.certificate
    if result is None or certificate is None:
        return
    for proof in certificate.types:
        if proof.pool <= proof.proven_peak:
            continue
        if proof.multicycle:
            report.add(
                "LINT202",
                f"multicycle pool of {proof.type_name!r} holds {proof.pool} "
                f"instances against a peak slot demand of "
                f"{proof.proven_peak} (operations span slots, so the "
                "coloring bound applies)",
                hint="pipelining the unit would shrink the pool to the peak",
            )
        else:
            report.add(
                "LINT103",
                f"pool of {proof.type_name!r} allocates {proof.pool} "
                f"instances but the certifier proves a peak demand of "
                f"{proof.proven_peak}",
                hint=f"{proof.pool - proof.proven_peak} instance(s) can "
                "be dropped",
            )


def _rule_residue_pressure(ctx: LintContext, report: DiagnosticReport) -> None:
    """Residue-pressure findings from the abstract interpretation.

    Problem-mode intervals quantify over *every* grid-admissible
    schedule, so these findings are properties of the design, not of the
    one schedule the lint run happened to produce:

    * LINT301 — a *claimed* pool (an explicit ``--pool`` override) is
      already saturated by the interval lower peak: no admissible
      schedule leaves any slack (warning: the allocation has no
      headroom against timing or sharing changes).  Derived pools are
      exempt — they equal the produced schedule's demand peak, so
      saturation there is tautological, not a finding;
    * LINT302 — a residue class no admissible schedule can occupy
      (stronger than LINT203, which only sees the produced schedule);
    * LINT303 — the pool exceeds the interval *upper* peak: it is
      over-provisioned for every admissible schedule, not just this one.
    """
    result = ctx.schedule
    if result is None:
        return
    from ..absint import analyze_problem

    pools = {
        type_name: result.global_instances(type_name)
        for type_name in result.assignment.global_types
    }
    if ctx.pools:
        pools.update(ctx.pools)
    analysis = analyze_problem(ctx.problem, pools=pools)
    for entry in analysis.types:
        pool = entry.pool
        if pool is None:
            continue
        claimed = bool(ctx.pools) and entry.type_name in ctx.pools
        if claimed and entry.lower_peak >= pool > 0:
            tight = entry.tightest_slot()
            report.add(
                "LINT301",
                f"pool of {entry.type_name!r} ({pool}) is saturated by "
                f"every grid-admissible schedule: interval peak in "
                f"[{entry.lower_peak}, {entry.upper_peak}], hotspot at "
                f"period slot {tight}",
                hint="grow the pool or relax deadlines to regain slack",
            )
        unreachable = entry.unreachable_slots()
        if unreachable:
            report.add(
                "LINT302",
                f"no grid-admissible schedule can occupy period slot(s) "
                f"{unreachable} of {entry.type_name!r}",
                hint="a smaller period would fold the dead slots away",
            )
        multicycle = ctx.problem.library.type(entry.type_name).occupancy > 1
        if pool > entry.upper_peak and not multicycle:
            # Multicycle pools are coloring-sized and may legitimately
            # exceed the peak slot demand (LINT202 covers those).
            report.add(
                "LINT303",
                f"pool of {entry.type_name!r} allocates {pool} instances "
                f"but no grid-admissible schedule can demand more than "
                f"{entry.upper_peak}",
                hint=f"{pool - entry.upper_peak} instance(s) are unusable "
                "under the current period grid",
            )


def _rule_idle_slots(ctx: LintContext, report: DiagnosticReport) -> None:
    result = ctx.schedule
    if result is None:
        return
    for type_name in result.assignment.global_types:
        demand = result.global_demand(type_name)
        idle = [int(tau) for tau in range(len(demand)) if demand[tau] == 0]
        if idle:
            report.add(
                "LINT203",
                f"global type {type_name!r} is never authorized at period "
                f"slot(s) {idle}; the pool sits idle there",
                hint="a smaller period may fold the idle slots away",
            )


#: The shipped rule set, problem-scoped rules first.
DEFAULT_RULES: List[LintRule] = [
    LintRule(
        name="timeframes",
        codes=("LINT001", "LINT201"),
        scope=SCOPE_PROBLEM,
        run=_rule_timeframes,
    ),
    LintRule(
        name="dead-operations",
        codes=("LINT101",),
        scope=SCOPE_PROBLEM,
        run=_rule_dead_operations,
    ),
    LintRule(
        name="redundant-edges",
        codes=("LINT102",),
        scope=SCOPE_PROBLEM,
        run=_rule_redundant_edges,
    ),
    LintRule(
        name="period-grid",
        codes=("PERIOD101", "PERIOD102", "PERIOD103", "PERIOD201"),
        scope=SCOPE_PROBLEM,
        run=_rule_period_grid,
    ),
    LintRule(
        name="pool-provisioning",
        codes=("LINT103", "LINT202"),
        scope=SCOPE_SCHEDULE,
        run=_rule_pool_provisioning,
    ),
    LintRule(
        name="idle-slots",
        codes=("LINT203",),
        scope=SCOPE_SCHEDULE,
        run=_rule_idle_slots,
    ),
    LintRule(
        name="residue-pressure",
        codes=("LINT301", "LINT302", "LINT303"),
        scope=SCOPE_SCHEDULE,
        run=_rule_residue_pressure,
    ),
]

#: Rules by name, for CLI ``--rule`` selection.
RULES_BY_NAME: Dict[str, LintRule] = {rule.name: rule for rule in DEFAULT_RULES}
