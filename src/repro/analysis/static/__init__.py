"""Static analysis: safety certification and IR lint.

Two pillars (see docs/static-analysis.md):

* :func:`certify` proves, per global resource type, that the summed
  slot occupancy never exceeds the allocated pool under *every*
  admissible block-start offset combination of the eq. 2-3 period grid,
  emitting a machine-checkable :class:`Certificate` — or a concrete
  :class:`Counterexample` offset assignment when the proof fails.
  :func:`check_certificate` re-verifies the artifact independently.
* :func:`run_lint` drives rule-based IR lint passes with stable
  ``LINT*`` diagnostic codes over a problem and its schedule.
"""

from .certificate import (
    CERTIFICATE_FORMAT,
    CERTIFICATE_VERSION,
    METHOD_ENUMERATION,
    METHOD_INTERVAL,
    MODEL_ANY,
    MODEL_DEPLOYED,
    VERDICT_SAFE,
    VERDICT_UNSAFE,
    Certificate,
    Contribution,
    Counterexample,
    ProcessEnvelope,
    SlotWitness,
    TypeProof,
)
from .certifier import CertificationError, certify, pool_conflict
from .checker import check_certificate
from .lint import (
    DEFAULT_RULES,
    RULES_BY_NAME,
    SCOPE_PROBLEM,
    SCOPE_SCHEDULE,
    LintContext,
    LintRule,
    run_lint,
)

__all__ = [
    "CERTIFICATE_FORMAT",
    "CERTIFICATE_VERSION",
    "METHOD_ENUMERATION",
    "METHOD_INTERVAL",
    "MODEL_ANY",
    "MODEL_DEPLOYED",
    "VERDICT_SAFE",
    "VERDICT_UNSAFE",
    "Certificate",
    "CertificationError",
    "Contribution",
    "Counterexample",
    "DEFAULT_RULES",
    "LintContext",
    "LintRule",
    "ProcessEnvelope",
    "RULES_BY_NAME",
    "SCOPE_PROBLEM",
    "SCOPE_SCHEDULE",
    "SlotWitness",
    "TypeProof",
    "certify",
    "check_certificate",
    "pool_conflict",
    "run_lint",
]
