"""Interconnect (multiplexer) cost estimation.

The paper leaves an explicit open question (§7): "Whether or not the
area saving due to the global adders and subtracters is compensated by
additional multiplexors and wires is not considered."  This module
estimates that overhead so the question can be answered quantitatively:

* every functional-unit instance needs a multiplexer per operand port
  sized by the number of *distinct sources* routed to it — the registers
  and primary inputs of all operations bound to the instance;
* a ``k``-input multiplexer costs ``alpha * (k - 1)`` area units
  (``alpha`` = cost of one 2:1 mux slice relative to the adder's area 1;
  0.3 is a common rough figure for a datapath-width mux slice vs. an
  adder).

Sharing concentrates many operations — from many processes — onto few
instances, so shared units grow larger muxes; the comparison harness
reports whether the functional-unit saving survives the mux overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from ..binding.instances import InstanceBinding
from ..binding.registers import allocate_registers
from ..core.result import SystemSchedule

#: Default area of one 2:1 multiplexer slice, relative to adder area 1.
DEFAULT_MUX_ALPHA = 0.3

#: Assumed operand ports per functional unit (binary operators).
OPERAND_PORTS = 2


@dataclass
class InterconnectReport:
    """Mux sizing of every functional-unit instance."""

    #: unit key -> number of distinct sources feeding it
    sources_per_unit: Dict[Tuple[str, str], int]
    mux_alpha: float

    @property
    def mux_area(self) -> float:
        """Total multiplexer area over all units and operand ports."""
        total = 0.0
        for count in self.sources_per_unit.values():
            # Sources spread over the operand ports; each port with k
            # sources needs a (k-1)-slice mux.  Balanced split is the
            # optimistic routing; worst case would double it.
            per_port = max(1, -(-count // OPERAND_PORTS))
            total += OPERAND_PORTS * self.mux_alpha * max(0, per_port - 1)
        return total

    def largest_mux(self) -> int:
        """Sources at the most-contended unit (mux fan-in indicator)."""
        return max(self.sources_per_unit.values(), default=0)


def _unit_key(result: SystemSchedule, process: str, type_name: str, instance: int):
    if result.assignment.shares_globally(type_name, process):
        return (type_name, f"g{instance}")
    return (type_name, f"{process}:{instance}")


def interconnect_report(
    binding: InstanceBinding, *, mux_alpha: float = DEFAULT_MUX_ALPHA
) -> InterconnectReport:
    """Estimate the mux fan-in of every bound functional-unit instance.

    A source is either a register of the producing block (via left-edge
    register allocation) or a primary input of an operation; sources are
    qualified by (process, block) because values never cross blocks.
    """
    result = binding.result
    sources: Dict[Tuple[str, str], Set] = {}
    registers: Dict[Tuple[str, str], Dict[str, int]] = {}
    for (process, block), sched in result.block_schedules.items():
        registers[(process, block)] = allocate_registers(sched)

    for (process, block, op_id), instance in binding.binding.items():
        sched = result.block_schedules[(process, block)]
        op = sched.graph.operation(op_id)
        type_name = result.library.type_of(op).name
        key = _unit_key(result, process, type_name, instance)
        feeding = sources.setdefault(key, set())
        preds = sched.graph.predecessors(op_id)
        for pred in preds:
            register = registers[(process, block)].get(pred)
            feeding.add((process, block, "reg", register))
        # Primary-input operands (binary ops with fewer than 2 preds).
        missing = max(0, OPERAND_PORTS - len(preds))
        for port in range(missing):
            feeding.add((process, block, "input", f"{op_id}.{port}"))

    return InterconnectReport(
        sources_per_unit={key: len(values) for key, values in sources.items()},
        mux_alpha=mux_alpha,
    )


def total_area_with_interconnect(
    binding: InstanceBinding, *, mux_alpha: float = DEFAULT_MUX_ALPHA
) -> Dict[str, float]:
    """Functional-unit area, mux area, and their sum for one binding."""
    report = interconnect_report(binding, mux_alpha=mux_alpha)
    functional = binding.result.total_area()
    return {
        "functional": functional,
        "mux": report.mux_area,
        "total": functional + report.mux_area,
        "largest_mux_fanin": float(report.largest_mux()),
    }
