"""Bottleneck attribution: which (type, slot, processes) pin the area.

The paper's cost model makes area attribution unusually crisp: a global
pool is sized by its *peak period-slot demand* (the multicycle coloring
only raises that), so for every global type there is a concrete
``(type, slot, processes)`` triple — the demand-argmax slot and the
processes whose authorizations stack there — that *is* the reason the
pool is as large as it is.  Shaving any contribution at that slot is the
only way to shrink the pool; smoothing elsewhere is free but useless.

:func:`attribute` builds that ranking for a finished
:class:`~repro.core.result.SystemSchedule`:

* the bottleneck triple of every global type is delegated to the
  certifier's :func:`repro.analysis.static.certifier.pool_conflict` —
  the same argmax slot and per-process envelope witnesses a failed
  certification would report, so ``repro explain`` and ``repro certify``
  never disagree about where the pressure is;
* each per-process contribution is resolved down to the **operations**
  of the type active at the witnessed block step — the seed set a
  feedback-guided rescheduler (see ROADMAP) would extract as the
  bottleneck subgraph;
* when a decision :class:`~repro.obs.audit.AuditTrail` (or its exported
  records) is supplied, each entry also reports how many audited
  reduction decisions involved its contributing operations — linking
  *where the area sits* to *how the scheduler got there*;
* local types are folded in as single-line entries (their instance need
  is a per-process peak, not a slot conflict) so the ranking covers the
  whole area, not just the pools.

Renderers: :meth:`AttributionReport.render` (text),
:meth:`AttributionReport.render_markdown`, and
:meth:`AttributionReport.as_dict` (JSON-safe).  The CLI front end is
``repro explain``; ``repro report`` embeds the same report next to the
profile and metric tables.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from ..core.result import SystemSchedule
from .static.certificate import Counterexample
from .static.certifier import pool_conflict


@dataclass(frozen=True)
class ContributingOp:
    """One operation active at the bottleneck slot of its process."""

    process: str
    block: str
    op: str
    step: int
    start: int

    def as_dict(self) -> Dict[str, Any]:
        return {
            "process": self.process,
            "block": self.block,
            "op": self.op,
            "step": self.step,
            "start": self.start,
        }


@dataclass(frozen=True)
class BottleneckEntry:
    """One ranked source of area pressure.

    For a global type this is the certifier-consistent conflict triple
    plus the named operations; for a local type ``slot`` is ``None`` and
    the "conflict" is the per-process peak.
    """

    type_name: str
    scope: str  # "global" | "local"
    instances: int
    unit_area: float
    area: float
    slot: Optional[int] = None
    period: Optional[int] = None
    demand: Optional[int] = None
    processes: Sequence[str] = ()
    operations: Sequence[ContributingOp] = ()
    #: Audited reduction decisions whose winning op is one of the
    #: contributing operations (0 when no audit trail was supplied).
    audit_decisions: int = 0

    def triple(self) -> Optional[str]:
        """The ``(type, slot, processes)`` conflict triple, rendered."""
        if self.slot is None:
            return None
        return (
            f"(type {self.type_name!r}, slot {self.slot}, "
            f"processes {', '.join(self.processes)})"
        )

    def as_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "type": self.type_name,
            "scope": self.scope,
            "instances": self.instances,
            "unit_area": self.unit_area,
            "area": self.area,
        }
        if self.slot is not None:
            record.update(
                {
                    "slot": self.slot,
                    "period": self.period,
                    "demand": self.demand,
                    "processes": list(self.processes),
                    "operations": [op.as_dict() for op in self.operations],
                }
            )
        if self.audit_decisions:
            record["audit_decisions"] = self.audit_decisions
        return record


@dataclass
class AttributionReport:
    """Ranked area attribution for one system schedule."""

    system: str
    total_area: float
    entries: List[BottleneckEntry] = field(default_factory=list)

    @property
    def bottleneck(self) -> Optional[BottleneckEntry]:
        """The top-ranked global entry (None without global types)."""
        for entry in self.entries:
            if entry.scope == "global":
                return entry
        return None

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self) -> str:
        """Aligned plain-text report."""
        lines = [
            f"area attribution for system {self.system!r} "
            f"(total area {self.total_area:g})"
        ]
        for rank, entry in enumerate(self.entries, start=1):
            share = entry.area / self.total_area if self.total_area else 0.0
            lines.append(
                f"{rank}. {entry.type_name} [{entry.scope}] — "
                f"{entry.instances} instance(s) x {entry.unit_area:g} area "
                f"= {entry.area:g} ({share:.1%} of total)"
            )
            if entry.slot is not None:
                lines.append(
                    f"   pinned by {entry.triple()}: slot demand "
                    f"{entry.demand} of period {entry.period}"
                )
                for op in entry.operations:
                    lines.append(
                        f"     {op.process}/{op.block}: op {op.op} "
                        f"(start {op.start}) active at step {op.step}"
                    )
                if entry.audit_decisions:
                    lines.append(
                        f"   {entry.audit_decisions} audited reduction "
                        f"decision(s) placed these operations"
                    )
        if not self.entries:
            lines.append("  (no resource usage)")
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """Markdown report (tables + per-entry detail)."""
        lines = [
            f"## Area attribution: `{self.system}`",
            "",
            f"Total area: **{self.total_area:g}**",
            "",
            "| rank | type | scope | instances | area | share | bottleneck |",
            "| --- | --- | --- | --- | --- | --- | --- |",
        ]
        for rank, entry in enumerate(self.entries, start=1):
            share = entry.area / self.total_area if self.total_area else 0.0
            triple = entry.triple() or "per-process peak"
            lines.append(
                f"| {rank} | `{entry.type_name}` | {entry.scope} "
                f"| {entry.instances} | {entry.area:g} | {share:.1%} "
                f"| {triple} |"
            )
        for entry in self.entries:
            if entry.slot is None or not entry.operations:
                continue
            lines.extend(
                [
                    "",
                    f"### `{entry.type_name}` @ slot {entry.slot}",
                    "",
                    f"Slot demand {entry.demand} of period {entry.period}"
                    + (
                        f"; {entry.audit_decisions} audited decision(s)"
                        if entry.audit_decisions
                        else ""
                    ),
                    "",
                ]
            )
            for op in entry.operations:
                lines.append(
                    f"- `{op.process}/{op.block}` op `{op.op}` "
                    f"(start {op.start}, active step {op.step})"
                )
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "system": self.system,
            "total_area": self.total_area,
            "entries": [entry.as_dict() for entry in self.entries],
        }

    def as_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------
def _ops_at_step(
    result: SystemSchedule,
    process_name: str,
    block_name: str,
    type_name: str,
    step: int,
) -> List[ContributingOp]:
    """Operations of ``type_name`` active at a block-relative step."""
    sched = result.schedule_of(process_name, block_name)
    occupancy = result.library.type(type_name).occupancy
    ops: List[ContributingOp] = []
    for op_id in sorted(sched.starts):
        op = sched.graph.operation(op_id)
        if result.library.type_of(op).name != type_name:
            continue
        start = sched.starts[op_id]
        if start <= step < start + occupancy:
            ops.append(
                ContributingOp(
                    process=process_name,
                    block=block_name,
                    op=op_id,
                    step=step,
                    start=start,
                )
            )
    return ops


def _audit_decision_records(audit: Any) -> List[Mapping[str, Any]]:
    """Normalize an audit argument to a list of decision records.

    Accepts an :class:`~repro.obs.audit.AuditTrail`, an iterable of
    exported JSONL records, or ``None``.
    """
    if audit is None:
        return []
    if hasattr(audit, "as_records"):
        return [r for r in audit.as_records() if r.get("type") == "decision"]
    records: List[Mapping[str, Any]] = []
    for record in audit:
        if isinstance(record, Mapping) and record.get("type") in (
            None,
            "decision",
        ):
            if "op" in record:
                records.append(record)
    return records


def _count_audit_decisions(
    records: Iterable[Mapping[str, Any]],
    operations: Sequence[ContributingOp],
) -> int:
    keys = {(op.process, op.block, op.op) for op in operations}
    return sum(
        1
        for record in records
        if (record.get("process"), record.get("block"), record.get("op"))
        in keys
    )


def attribute(
    result: SystemSchedule,
    *,
    audit: Any = None,
) -> AttributionReport:
    """Build the ranked area attribution of a finished schedule.

    Args:
        result: The schedule to explain.
        audit: Optional decision audit — an
            :class:`~repro.obs.audit.AuditTrail` or the records it
            exported — used to count the reduction decisions behind each
            bottleneck's operations.

    Entries are ranked by area contribution (ties broken by type name),
    with global types' conflict triples delegated to the certifier's
    :func:`~repro.analysis.static.certifier.pool_conflict` so `explain`
    and `certify` always name the same bottleneck.
    """
    decisions = _audit_decision_records(audit)
    counts = result.instance_counts()
    entries: List[BottleneckEntry] = []
    for rtype in result.library.types:
        instances = counts.get(rtype.name, 0)
        if not instances:
            continue
        if result.assignment.is_global(rtype.name):
            pool = result.global_instances(rtype.name)
            conflict: Counterexample = pool_conflict(
                result, rtype.name, pool
            )
            operations: List[ContributingOp] = []
            for contribution in conflict.contributions:
                operations.extend(
                    _ops_at_step(
                        result,
                        contribution.process,
                        contribution.block,
                        rtype.name,
                        contribution.step,
                    )
                )
            local_extra = instances - pool
            entries.append(
                BottleneckEntry(
                    type_name=rtype.name,
                    scope="global",
                    instances=instances,
                    unit_area=float(rtype.area),
                    area=instances * float(rtype.area),
                    slot=conflict.slot,
                    period=conflict.period,
                    demand=conflict.demand,
                    processes=list(conflict.processes),
                    operations=operations,
                    audit_decisions=_count_audit_decisions(
                        decisions, operations
                    ),
                )
            )
            # Processes using the type outside the sharing group add
            # local instances on top of the pool; surface them so the
            # instance count always reconciles with the area table.
            if local_extra > 0:
                entries.append(
                    BottleneckEntry(
                        type_name=rtype.name,
                        scope="local",
                        instances=local_extra,
                        unit_area=float(rtype.area),
                        area=local_extra * float(rtype.area),
                    )
                )
        else:
            entries.append(
                BottleneckEntry(
                    type_name=rtype.name,
                    scope="local",
                    instances=instances,
                    unit_area=float(rtype.area),
                    area=instances * float(rtype.area),
                )
            )
    entries.sort(key=lambda entry: (-entry.area, entry.type_name, entry.scope))
    return AttributionReport(
        system=result.system.name,
        total_area=result.total_area(),
        entries=entries,
    )
