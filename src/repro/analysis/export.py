"""JSON export of system schedules.

Serializes everything a downstream tool needs — block schedules, instance
counts, authorizations, offsets, area — as plain JSON-compatible data.
The inverse direction is intentionally absent: results are derived
artifacts; re-derive them from the ``.sys`` problem instead.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from ..core.result import SystemSchedule


def result_to_dict(result: SystemSchedule) -> Dict[str, Any]:
    """Plain-data rendering of a system schedule."""
    data: Dict[str, Any] = {
        "system": result.system.name,
        "iterations": result.iterations,
        "wall_time_seconds": round(result.wall_time, 6),
        "area": result.total_area(),
        "instance_counts": result.instance_counts(),
        "periods": result.periods.as_dict,
        "start_offsets": {
            p.name: result.offset_of(p.name) for p in result.system.processes
        },
        "processes": {},
        "global_types": {},
    }
    for process in result.system.processes:
        blocks = {}
        for block_name, sched in result.blocks_of(process.name):
            blocks[block_name] = {
                "deadline": sched.deadline,
                "makespan": sched.makespan,
                "starts": dict(sorted(sched.starts.items())),
            }
        data["processes"][process.name] = {
            "grid_spacing": result.grid_spacing(process.name),
            "blocks": blocks,
        }
    for type_name in result.assignment.global_types:
        data["global_types"][type_name] = {
            "period": result.periods.period(type_name),
            "pool": result.global_instances(type_name),
            "group": result.assignment.group(type_name),
            "authorizations": {
                process: result.authorization(process, type_name).tolist()
                for process in result.assignment.group(type_name)
            },
        }
    return data


def result_to_json(result: SystemSchedule, *, indent: int = 2) -> str:
    """JSON text rendering of a system schedule (deterministic keys)."""
    return json.dumps(result_to_dict(result), indent=indent, sort_keys=True)


def export_result(result: SystemSchedule, path) -> None:
    """Write the JSON rendering to a file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(result_to_json(result))
        handle.write("\n")
