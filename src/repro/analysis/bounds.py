"""Lower bounds on instance counts.

Averaging bounds certify how close a schedule is to optimal:

* **per-block bound** — a block with ``busy`` occupancy-steps of a type
  and time range ``T`` needs at least ``ceil(busy / T)`` instances;
* **per-process bound** — the maximum of its blocks' bounds (blocks never
  overlap);
* **global-pool bound** — a process's per-slot authorizations ``A(tau)``
  cover each slot at most ``ceil(T_b / P)`` times inside a block range,
  so ``sum_tau A(tau) >= busy_b / ceil(T_b / P)``; averaging the slot
  demand over the period then gives
  ``pool >= ceil( sum_p max_b busy_b / (P * ceil(T_b / P)) )``.
  When ``P`` divides every block range this reduces to the utilization
  densities ``busy_b / T_b``.

These hold for *any* valid schedule under the model, so
``achieved == bound`` proves the instance count optimal.

Since the residue-pressure abstract interpretation landed
(:mod:`repro.analysis.absint`), :func:`type_instance_bound` additionally
takes the interval lower envelope when it beats the averaging bound:
the rotation-free interval peak for global pools and the
forced-simultaneity peak for local/per-process counts.  Both are sound
for every grid-admissible schedule (and for re-optimized offsets), so
the strengthened bound keeps the pruning in :mod:`repro.parallel`
admissible while pruning at least as many candidates.
"""

from __future__ import annotations

import math
from typing import Dict

from ..ir.process import Block, Process, SystemSpec
from ..resources.assignment import ResourceAssignment
from ..resources.library import ResourceLibrary
from ..core.periods import PeriodAssignment
from ..core.result import SystemSchedule


def _busy_steps(block: Block, library: ResourceLibrary, type_name: str) -> int:
    rtype = library.type(type_name)
    return sum(rtype.occupancy for op in block.graph if rtype.executes(op.kind))


def block_bound(block: Block, library: ResourceLibrary, type_name: str) -> int:
    """Averaging lower bound on instances of one type for one block."""
    busy = _busy_steps(block, library, type_name)
    if busy == 0:
        return 0
    return math.ceil(busy / block.deadline)


def process_bound(
    process: Process, library: ResourceLibrary, type_name: str
) -> int:
    """Lower bound for one process: max over its (non-overlapping) blocks."""
    return max(
        (block_bound(block, library, type_name) for block in process.blocks),
        default=0,
    )


def process_slot_density(
    process: Process, library: ResourceLibrary, type_name: str, period: int
) -> float:
    """Average per-slot authorization one process needs: the bound on
    ``sum_tau A(tau) / P`` derived from its busiest block."""
    best = 0.0
    for block in process.blocks:
        busy = _busy_steps(block, library, type_name)
        if busy:
            coverage = math.ceil(block.deadline / period)
            best = max(best, busy / (period * coverage))
    return best


def global_pool_bound(
    system: SystemSpec,
    library: ResourceLibrary,
    assignment: ResourceAssignment,
    periods: PeriodAssignment,
    type_name: str,
) -> int:
    """Lower bound on the shared pool of one global type.

    The pool covers the sum of the sharing processes' per-slot densities
    (the slot-wise maximum is at least the slot-wise average) and can
    never be smaller than any single member's own averaging bound.
    """
    group = assignment.group(type_name)
    period = periods.period(type_name)
    density_sum = sum(
        process_slot_density(system.process(name), library, type_name, period)
        for name in group
    )
    per_member = max(
        (process_bound(system.process(name), library, type_name) for name in group),
        default=0,
    )
    if density_sum == 0:
        return per_member
    return max(per_member, math.ceil(density_sum - 1e-9))


def _strengthened_process_bound(
    process: Process,
    library: ResourceLibrary,
    type_name: str,
    use_intervals: bool,
) -> int:
    bound = process_bound(process, library, type_name)
    if use_intervals:
        from .absint import forced_process_bound

        forced = forced_process_bound(process, library, type_name)
        if forced > bound:
            bound = forced
    return bound


def type_instance_bound(
    system: SystemSpec,
    library: ResourceLibrary,
    assignment: ResourceAssignment,
    periods: PeriodAssignment,
    type_name: str,
    *,
    use_intervals: bool = True,
) -> int:
    """System-wide lower bound on instances of one type.

    A global type needs at least its pool bound plus the local bounds of
    any processes using the type outside the sharing group; a local type
    needs the sum of the per-process bounds.  The bound needs no
    schedule, so it is cheap enough to evaluate for every candidate of a
    design-space sweep before any scheduling happens.

    With ``use_intervals`` (the default) each component is maxed with
    its residue-pressure interval counterpart
    (:mod:`repro.analysis.absint`): the rotation-free interval peak for
    the global pool, the forced-simultaneity peak per process.  Pass
    ``use_intervals=False`` for the plain averaging bound (the pre-
    interval behavior, kept for A/B benchmarks).
    """
    if assignment.is_global(type_name):
        bound = global_pool_bound(system, library, assignment, periods, type_name)
        if use_intervals:
            from .absint import interval_pool_bound

            interval = interval_pool_bound(
                system, library, assignment, periods, type_name
            )
            if interval > bound:
                bound = interval
        # Processes using the type outside the group add local bounds.
        for process in system.processes:
            if not assignment.shares_globally(type_name, process.name):
                bound += _strengthened_process_bound(
                    process, library, type_name, use_intervals
                )
        return bound
    return sum(
        _strengthened_process_bound(process, library, type_name, use_intervals)
        for process in system.processes
    )


def area_lower_bound(
    system: SystemSpec,
    library: ResourceLibrary,
    assignment: ResourceAssignment,
    periods: PeriodAssignment,
    *,
    use_intervals: bool = True,
) -> float:
    """Admissible lower bound on the total area of any valid schedule.

    Sums :func:`type_instance_bound` weighted by the types' area costs.
    Admissibility (``bound <= achieved area`` for every schedule the
    model admits) is what makes bound-based pruning in
    :mod:`repro.parallel` sound: a candidate whose bound already meets
    the best achieved area cannot improve on it.  ``use_intervals``
    selects the interval-strengthened bound (default) or the plain
    averaging bound.
    """
    return sum(
        type_instance_bound(
            system,
            library,
            assignment,
            periods,
            rtype.name,
            use_intervals=use_intervals,
        )
        * rtype.area
        for rtype in library.types
    )


def bound_report(result: SystemSchedule) -> Dict[str, Dict[str, int]]:
    """Achieved instance counts next to their lower bounds, per type.

    Returns ``{type: {"achieved": n, "bound": m}}`` for every type the
    system uses; ``achieved >= bound`` always holds for valid schedules,
    and equality certifies optimality of that count.
    """
    report: Dict[str, Dict[str, int]] = {}
    counts = result.instance_counts()
    for rtype in result.library.types:
        if rtype.name not in counts:
            continue
        bound = type_instance_bound(
            result.system,
            result.library,
            result.assignment,
            result.periods,
            rtype.name,
        )
        report[rtype.name] = {"achieved": counts[rtype.name], "bound": bound}
    return report
