"""ASCII Gantt charts for block and system schedules.

Renders each operation as a bar over its latency (``#`` for the occupied
initiation steps, ``-`` for in-flight pipeline latency), grouped by
resource type — the visual counterpart of the distribution tables.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.result import SystemSchedule
from ..scheduling.schedule import BlockSchedule


def block_gantt(schedule: BlockSchedule, *, label_width: int = 12) -> str:
    """Gantt chart of one block schedule."""
    lines: List[str] = []
    header = " " * label_width + "".join(
        f"{step % 10}" for step in range(schedule.deadline)
    )
    lines.append(f"{schedule.graph.name} (deadline {schedule.deadline})")
    lines.append(header)
    ordered = sorted(
        schedule.graph.operations,
        key=lambda op: (
            schedule.library.type_of(op).name,
            schedule.start(op.op_id),
            op.op_id,
        ),
    )
    current_type: Optional[str] = None
    for op in ordered:
        rtype = schedule.library.type_of(op)
        if rtype.name != current_type:
            lines.append(f"-- {rtype.name} --")
            current_type = rtype.name
        start = schedule.start(op.op_id)
        row = [" "] * schedule.deadline
        for step in range(start, min(start + rtype.occupancy, schedule.deadline)):
            row[step] = "#"
        for step in range(
            start + rtype.occupancy,
            min(start + rtype.latency, schedule.deadline),
        ):
            row[step] = "-"
        label = op.label[: label_width - 1].ljust(label_width)
        lines.append(label + "".join(row))
    return "\n".join(lines)


def usage_gantt(schedule: BlockSchedule, type_name: str) -> str:
    """Compact per-step usage counts of one type (distribution row)."""
    profile = schedule.usage_profile(type_name)
    return f"{type_name:<12}" + "".join(
        str(int(v)) if v else "." for v in profile
    )


def system_gantt(result: SystemSchedule) -> str:
    """Gantt charts of every block in the system."""
    parts: List[str] = []
    for (process, block), schedule in result.block_schedules.items():
        parts.append(f"=== {process}/{block} ===")
        parts.append(block_gantt(schedule))
        parts.append("")
    return "\n".join(parts).rstrip()
