"""Global-versus-local comparison harness (the paper's §7 experiment)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..ir.process import SystemSpec
from ..resources.assignment import ResourceAssignment
from ..resources.library import ResourceLibrary
from ..core.periods import PeriodAssignment
from ..core.result import SystemSchedule
from ..core.scheduler import ModuloSystemScheduler
from ..scheduling.forces import DEFAULT_LOOKAHEAD


@dataclass
class Comparison:
    """Outcome of scheduling the same system globally and locally."""

    global_result: SystemSchedule
    local_result: SystemSchedule

    @property
    def global_area(self) -> float:
        return self.global_result.total_area()

    @property
    def local_area(self) -> float:
        return self.local_result.total_area()

    @property
    def area_ratio(self) -> float:
        """How much more the traditional local scheduling costs."""
        if self.global_area == 0:
            return float("inf")
        return self.local_area / self.global_area

    @property
    def area_saving(self) -> float:
        """Fractional area saved by global sharing (the paper's ~40 %)."""
        if self.local_area == 0:
            return 0.0
        return 1.0 - self.global_area / self.local_area

    def render(self) -> str:
        lines = ["global vs local resource assignment"]
        lines.append(
            "  global: "
            + ", ".join(
                f"{c}x {n}" for n, c in self.global_result.instance_counts().items()
            )
            + f"; area {self.global_area:g}"
            + f" ({self.global_result.iterations} iterations,"
            + f" {self.global_result.wall_time:.2f} s)"
        )
        lines.append(
            "  local : "
            + ", ".join(
                f"{c}x {n}" for n, c in self.local_result.instance_counts().items()
            )
            + f"; area {self.local_area:g}"
            + f" ({self.local_result.iterations} iterations,"
            + f" {self.local_result.wall_time:.2f} s)"
        )
        lines.append(
            f"  local costs {self.area_ratio:.2f}x more; "
            f"global saves {self.area_saving:.0%} area"
        )
        return "\n".join(lines)


def compare_scopes(
    system: SystemSpec,
    library: ResourceLibrary,
    assignment: ResourceAssignment,
    periods: PeriodAssignment,
    *,
    lookahead: float = DEFAULT_LOOKAHEAD,
    weights: Optional[Mapping[str, float]] = None,
    tracer=None,
) -> Comparison:
    """Schedule with the given global assignment and with the traditional
    all-local baseline, using identical scheduler parameters.

    Both runs share ``tracer`` (if given), so a trace file covers the
    whole comparison and the tracer's counters are command totals.
    """
    global_scheduler = ModuloSystemScheduler(
        library, lookahead=lookahead, weights=weights, tracer=tracer
    )
    local_scheduler = ModuloSystemScheduler(
        library, lookahead=lookahead, weights=weights, tracer=tracer
    )
    global_result = global_scheduler.schedule(system, assignment, periods)
    local_result = local_scheduler.schedule(
        system, ResourceAssignment.all_local(library)
    )
    return Comparison(global_result=global_result, local_result=local_result)
