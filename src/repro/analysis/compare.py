"""Global-versus-local comparison harness (the paper's §7 experiment)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..ir.process import SystemSpec
from ..resources.assignment import ResourceAssignment
from ..resources.library import ResourceLibrary
from ..core.periods import PeriodAssignment
from ..core.result import SystemSchedule
from ..core.scheduler import ModuloSystemScheduler
from ..scheduling.forces import DEFAULT_LOOKAHEAD


@dataclass
class Comparison:
    """Outcome of scheduling the same system globally and locally."""

    global_result: SystemSchedule
    local_result: SystemSchedule

    @property
    def global_area(self) -> float:
        return self.global_result.total_area()

    @property
    def local_area(self) -> float:
        return self.local_result.total_area()

    @property
    def area_ratio(self) -> float:
        """How much more the traditional local scheduling costs."""
        if self.global_area == 0:
            return float("inf")
        return self.local_area / self.global_area

    @property
    def area_saving(self) -> float:
        """Fractional area saved by global sharing (the paper's ~40 %)."""
        if self.local_area == 0:
            return 0.0
        return 1.0 - self.global_area / self.local_area

    def render(self) -> str:
        return render_comparison(
            comparison_record(self.global_result),
            comparison_record(self.local_result),
        )


def comparison_record(result: SystemSchedule) -> Dict[str, object]:
    """The plain-data slice of a result the comparison report needs.

    The same shape is produced by the parallel engine's job records
    (:class:`repro.parallel.CandidateResult`), so a comparison renders
    identically whether the runs happened in-process or in workers.
    """
    return {
        "instance_counts": result.instance_counts(),
        "area": result.total_area(),
        "iterations": result.iterations,
        "wall_time": result.wall_time,
    }


def render_comparison(
    global_record: Mapping[str, object], local_record: Mapping[str, object]
) -> str:
    """Render the §7 comparison report from plain result records."""
    global_area = float(global_record["area"])
    local_area = float(local_record["area"])
    lines = ["global vs local resource assignment"]
    for label, record in (("global", global_record), ("local ", local_record)):
        lines.append(
            f"  {label}: "
            + ", ".join(
                f"{count}x {name}"
                for name, count in record["instance_counts"].items()
            )
            + f"; area {float(record['area']):g}"
            + f" ({record['iterations']} iterations,"
            + f" {record['wall_time']:.2f} s)"
        )
    ratio = float("inf") if global_area == 0 else local_area / global_area
    saving = 0.0 if local_area == 0 else 1.0 - global_area / local_area
    lines.append(
        f"  local costs {ratio:.2f}x more; global saves {saving:.0%} area"
    )
    return "\n".join(lines)


def compare_scopes(
    system: SystemSpec,
    library: ResourceLibrary,
    assignment: ResourceAssignment,
    periods: PeriodAssignment,
    *,
    lookahead: float = DEFAULT_LOOKAHEAD,
    weights: Optional[Mapping[str, float]] = None,
    tracer=None,
) -> Comparison:
    """Schedule with the given global assignment and with the traditional
    all-local baseline, using identical scheduler parameters.

    Both runs share ``tracer`` (if given), so a trace file covers the
    whole comparison and the tracer's counters are command totals.
    """
    global_scheduler = ModuloSystemScheduler(
        library, lookahead=lookahead, weights=weights, tracer=tracer
    )
    local_scheduler = ModuloSystemScheduler(
        library, lookahead=lookahead, weights=weights, tracer=tracer
    )
    global_result = global_scheduler.schedule(system, assignment, periods)
    local_result = local_scheduler.schedule(
        system, ResourceAssignment.all_local(library)
    )
    return Comparison(global_result=global_result, local_result=local_result)
