"""Transfer functions: block IR -> sound per-step occupancy profiles.

The abstract state of one block is a pair of integer step profiles
``(flo, up)`` with ``flo[j] <= usage[j] <= up[j]`` for the concurrent
usage of one resource type at block-relative step ``j`` under *any*
schedule the mode abstracts over:

* **problem mode** derives the profiles from mobility.  An operation
  with start frame ``[asap, alap]`` and occupancy ``c`` *may* be busy at
  step ``j`` iff ``asap <= j <= alap + c - 1`` (some feasible start
  covers ``j``) and is *forced* busy iff ``alap <= j <= asap + c - 1``
  (every feasible start covers ``j``; nonempty exactly when the
  mobility is smaller than the occupancy).  Both profiles combine guard
  branches like
  :meth:`repro.scheduling.schedule.BlockSchedule.usage_profile` does —
  per condition, the pointwise-maximal branch counts.  That is sound
  for the lower profile too because the concrete quantity being
  bounded is the *authorization* profile, which is itself the
  worst case over branch outcomes: for any schedule,
  ``usage[j] = unguarded(j) + sum_c max_b branch_sum(j)``, and each
  branch sum dominates its own forced sum.

* **schedule mode** uses the concrete start times: both profiles equal
  the exact :meth:`usage_profile`, so every interval is a point and the
  analysis reproduces the certifier's envelopes.

Folding onto the period axis takes the maximum over ``j ≡ tau (mod P)``
for *both* bounds: the per-process envelope is itself a max over steps
(condition C2 — at most one block of a process is active, and within a
block the authorization covers the worst folded step), so
``max_{j≡tau} flo[j] <= E_p[tau] <= max_{j≡tau} up[j]``.

**Widening.**  A block folds ``ceil(T / P)`` steps onto every residue.
When that quotient exceeds the widening limit (never smaller than the
lcm quotient ``lcm(g_p, P) / P`` the certifier's rotation reduction is
built on), only the first ``limit * P`` steps are folded exactly; the
remaining tail contributes ``[0, n_tail]`` where ``n_tail`` counts the
operations whose may-window reaches the tail — each operation occupies
at most one instance at a time, so the count is a sound (if coarse)
upper bound, and dropping the tail from the lower profile only widens
the interval.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ...ir.dfg import DataFlowGraph
from ...ir.process import Block
from ...obs.counters import ABSINT_TRANSFERS, ABSINT_WIDENINGS, count
from ...resources.library import ResourceLibrary

#: Periods-per-block floor below which widening never triggers; chosen
#: far above every paper-scale workload so widening is an asymptotic
#: safety valve, not a precision loss in practice.
DEFAULT_WIDEN_FLOOR = 64


def mobility_frames(
    block: Block, library: ResourceLibrary
) -> Dict[str, Tuple[int, int]]:
    """Unconstrained ``[asap, alap]`` start frames of one block.

    Forward/backward longest path against the block deadline; never
    raises.  An infeasible frame (``asap > alap`` — no schedule exists)
    is clamped to ``[asap, asap]``: the abstraction stays defined and,
    vacuously, sound.
    """
    graph: DataFlowGraph = block.graph
    latency_of = library.latency_of
    asap: Dict[str, int] = {}
    order = graph.topological_order()
    for oid in order:
        asap[oid] = max(
            (
                asap[pred] + latency_of(graph.operation(pred))
                for pred in graph.predecessors(oid)
            ),
            default=0,
        )
    alap: Dict[str, int] = {}
    for oid in reversed(order):
        finish = min(
            (alap[succ] for succ in graph.successors(oid)),
            default=block.deadline,
        )
        alap[oid] = finish - latency_of(graph.operation(oid))
    return {oid: (asap[oid], max(asap[oid], alap[oid])) for oid in order}


def _window(
    frame: Tuple[int, int], occupancy: int, deadline: int
) -> Tuple[Tuple[int, int], Tuple[int, int]]:
    """May- and must-busy step ranges (half-open) of one operation."""
    asap, alap = frame
    may = (max(0, asap), min(deadline, alap + occupancy))
    must = (max(0, alap), min(deadline, asap + occupancy))
    return may, must


def block_step_profiles(
    block: Block,
    library: ResourceLibrary,
    type_name: str,
    *,
    starts: Optional[Dict[str, int]] = None,
) -> Tuple[List[int], List[int]]:
    """Sound per-step ``(flo, up)`` usage profiles of one block.

    With ``starts`` (schedule mode) both profiles are the exact
    guard-aware usage profile; without, they come from mobility frames
    (problem mode).
    """
    deadline = block.deadline
    flo = [0] * deadline
    up = [0] * deadline
    frames = None if starts is not None else mobility_frames(block, library)
    # Guard-aware accumulation mirrors BlockSchedule.usage_profile: rows
    # of branches of one condition are summed per branch, then the
    # pointwise-maximal branch is added.
    up_branches: Dict[str, Dict[str, List[int]]] = {}
    flo_branches: Dict[str, Dict[str, List[int]]] = {}
    transfers = 0
    for op in block.graph:
        rtype = library.type_of(op)
        if rtype.name != type_name:
            continue
        transfers += 1
        if starts is not None:
            start = starts[op.op_id]
            may = (start, min(deadline, start + rtype.occupancy))
            must = may
        else:
            assert frames is not None
            may, must = _window(frames[op.op_id], rtype.occupancy, deadline)
        if op.guard is None:
            for j in range(*may):
                up[j] += 1
            for j in range(*must):
                flo[j] += 1
        else:
            condition, branch = op.guard
            row = up_branches.setdefault(condition, {}).setdefault(
                branch, [0] * deadline
            )
            for j in range(*may):
                row[j] += 1
            row_lo = flo_branches.setdefault(condition, {}).setdefault(
                branch, [0] * deadline
            )
            for j in range(*must):
                row_lo[j] += 1
    for per_branch in up_branches.values():
        rows = list(per_branch.values())
        for j in range(deadline):
            up[j] += max(row[j] for row in rows)
    for per_branch in flo_branches.values():
        rows = list(per_branch.values())
        for j in range(deadline):
            flo[j] += max(row[j] for row in rows)
    count(ABSINT_TRANSFERS, transfers)
    return flo, up


def effective_busy(
    block: Block, library: ResourceLibrary, type_name: str
) -> int:
    """Guard-aware busy-step mass one block forces onto one type.

    Every schedule runs each unguarded operation for its full occupancy;
    for guarded operations the authorization profile carries, per
    condition, at least the heaviest branch
    (``sum_j max_b branch[j] >= max_b sum_j branch[j]``).  The mass is
    placement-independent, so it lower-bounds ``sum_j usage[j]`` of any
    schedule — the guard-sound refinement of
    :func:`repro.analysis.bounds._busy_steps`.
    """
    unguarded = 0
    branch_mass: Dict[str, Dict[str, int]] = {}
    for op in block.graph:
        rtype = library.type_of(op)
        if rtype.name != type_name:
            continue
        if op.guard is None:
            unguarded += rtype.occupancy
        else:
            condition, branch = op.guard
            per_branch = branch_mass.setdefault(condition, {})
            per_branch[branch] = per_branch.get(branch, 0) + rtype.occupancy
    return unguarded + sum(
        max(per_branch.values()) for per_branch in branch_mass.values()
    )


def fold_profiles(
    flo: List[int],
    up: List[int],
    period: int,
    *,
    widen_limit: Optional[int] = None,
) -> Tuple[List[int], List[int], bool]:
    """Fold step profiles onto the period axis (max over ``j ≡ tau``).

    Returns ``(lo_fold, hi_fold, widened)``.  With a ``widen_limit`` and
    more than that many period windows, steps past ``widen_limit * P``
    are widened: they add ``[0, coarse]`` to the residues the tail
    touches, where ``coarse`` is the tail's maximum possible concurrent
    usage bounded by the pointwise profile maximum over the tail.
    """
    steps = len(up)
    windows = -(-steps // period) if steps else 0
    cut = steps
    widened = False
    if widen_limit is not None and windows > widen_limit:
        cut = widen_limit * period
        widened = True
    lo_fold = [0] * period
    hi_fold = [0] * period
    for j in range(cut):
        tau = j % period
        if flo[j] > lo_fold[tau]:
            lo_fold[tau] = flo[j]
        if up[j] > hi_fold[tau]:
            hi_fold[tau] = up[j]
    if widened:
        coarse = max(up[cut:], default=0)
        touched = (
            range(period) if steps - cut >= period else [j % period for j in range(cut, steps)]
        )
        for tau in touched:
            if coarse > hi_fold[tau]:
                hi_fold[tau] = coarse
        count(ABSINT_WIDENINGS)
    return lo_fold, hi_fold, widened
