"""Residue-pressure abstract interpretation over the system IR.

A sound middle layer between the averaging bounds
(:mod:`repro.analysis.bounds`) and the exact symbolic certifier
(:mod:`repro.analysis.static.certifier`): per (resource type, slot
residue class) under the eq. 2-3 period grid, the analysis computes
lower/upper occupancy intervals valid for *any* grid-admissible
schedule (see docs/analysis.md):

* :func:`analyze_problem` — scheduler-free, from mobility windows;
* :func:`analyze_schedule` — exact fold of one finished schedule;
* :func:`extract_bottleneck_cone` — the ops/blocks/edges pinning the
  tightest interval, with the certifier's conflict triple attached.

Consumers: sweep pruning (`analysis.bounds`), the certifier's interval
fast path, the ``LINT3xx`` pressure rules, and ``repro analyze``.
"""

from .analyze import (
    MODEL_ANY,
    MODEL_DEPLOYED,
    analyze_problem,
    analyze_schedule,
    forced_process_bound,
    interval_pool_bound,
    join_rotations,
)
from .cone import ConeOp, SubgraphExtract, extract_bottleneck_cone
from .domain import (
    ABSINT_FORMAT,
    ABSINT_VERSION,
    MODE_PROBLEM,
    MODE_SCHEDULE,
    AbsIntResult,
    ProcessPressure,
    TypePressure,
)
from .transfer import (
    DEFAULT_WIDEN_FLOOR,
    block_step_profiles,
    effective_busy,
    fold_profiles,
    mobility_frames,
)

__all__ = [
    "ABSINT_FORMAT",
    "ABSINT_VERSION",
    "AbsIntResult",
    "ConeOp",
    "DEFAULT_WIDEN_FLOOR",
    "MODE_PROBLEM",
    "MODE_SCHEDULE",
    "MODEL_ANY",
    "MODEL_DEPLOYED",
    "ProcessPressure",
    "SubgraphExtract",
    "TypePressure",
    "analyze_problem",
    "analyze_schedule",
    "block_step_profiles",
    "effective_busy",
    "extract_bottleneck_cone",
    "fold_profiles",
    "forced_process_bound",
    "interval_pool_bound",
    "join_rotations",
    "mobility_frames",
]
