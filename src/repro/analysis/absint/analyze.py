"""Abstract interpretation over the system IR: residue-pressure intervals.

:func:`analyze_problem` bounds, per global type and period residue
class, the slot pressure of *every* grid-admissible schedule of a
:class:`~repro.api.Problem`, without running the scheduler;
:func:`analyze_schedule` folds one concrete
:class:`~repro.core.result.SystemSchedule` exactly (intervals collapse
to points, reproducing the certifier's envelopes).

Soundness of the rotation join (all quantities per type, period ``P``;
``R_p`` the admissible rotation set of process ``p``, ``E_p`` its folded
envelope with ``lo_p <= E_p <= hi_p`` pointwise):

* ``slot_hi[tau] = sum_p max_{rho in R_p} hi_p[(tau - rho) % P]``
  dominates the demand at ``tau`` of every schedule under every
  admissible rotation choice, hence ``upper_peak = max_tau slot_hi``
  dominates the exact peak the certifier enumerates.
* ``slot_lo[tau] = sum_p min_{rho in R_p} lo_p[(tau - rho) % P]`` is a
  demand every rotation choice must generate at ``tau``, so
  ``max_tau slot_lo`` is a sound peak lower bound; so is
  ``max_p max_tau lo_p[tau]`` (a rotation permutes slots — some slot
  carries each process's own envelope peak) and the averaging term
  ``ceil(sum_p sum_tau lo_p[tau] / P)`` (the total demand mass is
  rotation-invariant and some slot carries at least the average).
  ``lower_peak`` is the max of the three.

Offset models mirror the certifier: ``deployed`` uses the configured
offset cosets (singletons under the eq. 3 grid rule ``P | g_p``);
``any`` joins over all ``P`` rotations — the model that stays sound
when :func:`repro.core.offsets.optimize_offsets` re-picks offsets,
which is why the sweep-pruning bounds use it.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Tuple

from ...obs.tracer import as_tracer
from .domain import (
    MODE_PROBLEM,
    MODE_SCHEDULE,
    AbsIntResult,
    ProcessPressure,
    TypePressure,
)
from .transfer import (
    DEFAULT_WIDEN_FLOOR,
    block_step_profiles,
    effective_busy,
    fold_profiles,
)

if TYPE_CHECKING:
    from typing import Any

    from ...api import Problem
    from ...core.result import SystemSchedule

#: Accepted ``offset_model`` spellings (mirrors the certifier).
MODEL_DEPLOYED = "deployed"
MODEL_ANY = "any"
_MODELS = {
    "deployed": MODEL_DEPLOYED,
    "any": MODEL_ANY,
    "any-offset": MODEL_ANY,
}


def _widen_limit(grid: int, period: int, widen_limit: Optional[int]) -> int:
    """Effective widening limit: never below the certifier's lcm quotient."""
    quotient = (grid * period // math.gcd(grid, period)) // period
    if widen_limit is None:
        return max(DEFAULT_WIDEN_FLOOR, quotient)
    return max(widen_limit, quotient, 1)


def _process_pressure(
    process_name: str,
    blocks: List[Tuple[str, "Any"]],
    type_name: str,
    period: int,
    grid: int,
    offset: int,
    model: str,
    library: "Any",
    widen_limit: Optional[int],
    starts_of: Optional[Dict[str, Dict[str, int]]],
) -> ProcessPressure:
    """Join one process's blocks into its interval envelope."""
    limit = _widen_limit(grid, period, widen_limit)
    lo = [0] * period
    hi = [0] * period
    widened = False
    mass_floor = 0
    for block_name, block in blocks:
        starts = None if starts_of is None else starts_of[block_name]
        flo, up = block_step_profiles(block, library, type_name, starts=starts)
        lo_fold, hi_fold, block_widened = fold_profiles(
            flo, up, period, widen_limit=limit
        )
        widened = widened or block_widened
        # Envelope-mass floor: the block forces ``effective_busy`` busy
        # steps, each residue is visited ceil(T_b / P) times, and the
        # envelope of THIS block alone already must absorb the average
        # (sum_tau E >= busy / coverage); maxing over blocks is sound
        # because the process envelope covers every block.
        coverage = max(1, -(-block.deadline // period))
        block_mass = -(-effective_busy(block, library, type_name) // coverage)
        if block_mass > mass_floor:
            mass_floor = block_mass
        # Cross-block join is max for BOTH bounds: the authorization of
        # a process must cover every one of its (non-overlapping, C2)
        # blocks, so each block's folded bounds constrain the envelope.
        for tau in range(period):
            if lo_fold[tau] > lo[tau]:
                lo[tau] = lo_fold[tau]
            if hi_fold[tau] > hi[tau]:
                hi[tau] = hi_fold[tau]
    if model == MODEL_DEPLOYED:
        rotation_step = math.gcd(grid, period)
        rotation_count = period // rotation_step
        rotation_base = offset % period
    else:
        rotation_step = 1
        rotation_count = period
        rotation_base = 0
    return ProcessPressure(
        process=process_name,
        grid=grid,
        offset=offset,
        rotation_base=rotation_base,
        rotation_step=rotation_step,
        rotation_count=rotation_count,
        lo=lo,
        hi=hi,
        widened=widened,
        mass_lo=max(sum(lo), mass_floor),
    )


def join_rotations(
    processes: List[ProcessPressure], period: int
) -> Tuple[List[int], List[int], int, int]:
    """Rotation-join per-process envelopes into slot intervals and peaks.

    Returns ``(slot_lo, slot_hi, lower_peak, upper_peak)``; see the
    module docstring for the soundness argument of each component.
    """
    slot_lo = [0] * period
    slot_hi = [0] * period
    for env in processes:
        rotations = env.rotations()
        for tau in range(period):
            slot_hi[tau] += max(env.hi[(tau - rho) % period] for rho in rotations)
            slot_lo[tau] += min(env.lo[(tau - rho) % period] for rho in rotations)
    upper_peak = max(slot_hi, default=0)
    mass = sum(max(env.mass_lo, sum(env.lo)) for env in processes)
    lower_peak = max(
        max(slot_lo, default=0),
        max((max(env.lo, default=0) for env in processes), default=0),
        -(-mass // period) if mass else 0,
    )
    return slot_lo, slot_hi, lower_peak, upper_peak


def _analyze(
    system: "Any",
    library: "Any",
    assignment: "Any",
    periods: "Any",
    *,
    mode: str,
    model: str,
    pools: Optional[Mapping[str, int]],
    offsets: Optional[Mapping[str, int]],
    starts: Optional[Dict[Tuple[str, str], Dict[str, int]]],
    widen_limit: Optional[int],
    type_names: Optional[List[str]] = None,
) -> AbsIntResult:
    types: List[TypePressure] = []
    for type_name in (
        type_names if type_names is not None else assignment.global_types
    ):
        period = periods.period(type_name)
        pressures: List[ProcessPressure] = []
        for process_name in assignment.group(type_name):
            process = system.process(process_name)
            grid = max(1, periods.process_grid(assignment, process_name))
            offset = 0 if offsets is None else int(offsets.get(process_name, 0))
            starts_of: Optional[Dict[str, Dict[str, int]]] = None
            if starts is not None:
                starts_of = {
                    block.name: starts[(process_name, block.name)]
                    for block in process.blocks
                }
            pressures.append(
                _process_pressure(
                    process_name,
                    [(block.name, block) for block in process.blocks],
                    type_name,
                    period,
                    grid,
                    offset,
                    model,
                    library,
                    widen_limit,
                    starts_of,
                )
            )
        slot_lo, slot_hi, lower_peak, upper_peak = join_rotations(
            pressures, period
        )
        pool = None
        if pools is not None and type_name in pools:
            pool = int(pools[type_name])
        types.append(
            TypePressure(
                type_name=type_name,
                period=period,
                mode=mode,
                offset_model=model,
                pool=pool,
                slot_lo=slot_lo,
                slot_hi=slot_hi,
                lower_peak=lower_peak,
                upper_peak=upper_peak,
                processes=pressures,
            )
        )
    return AbsIntResult(
        system=system.name, mode=mode, offset_model=model, types=types
    )


def _resolve_model(offset_model: str) -> str:
    try:
        return _MODELS[offset_model]
    except KeyError:
        raise ValueError(
            f"unknown offset model {offset_model!r}; use 'deployed' or 'any'"
        ) from None


def analyze_problem(
    problem: "Problem",
    *,
    offset_model: str = MODEL_DEPLOYED,
    pools: Optional[Mapping[str, int]] = None,
    widen_limit: Optional[int] = None,
    tracer: Optional["Any"] = None,
    type_names: Optional[List[str]] = None,
) -> AbsIntResult:
    """Bound the slot pressure of every grid-admissible schedule.

    Runs no scheduler: the transfer functions abstract each operation by
    its mobility window.  ``pools`` optionally names allocations to
    compare against (problem mode has none of its own).
    """
    model = _resolve_model(offset_model)
    tracer = as_tracer(tracer)
    with tracer.activate(), tracer.span(
        "absint", system=problem.system.name, mode=MODE_PROBLEM, model=model
    ):
        return _analyze(
            problem.system,
            problem.library,
            problem.assignment,
            problem.periods,
            mode=MODE_PROBLEM,
            model=model,
            pools=pools,
            offsets=None,
            starts=None,
            widen_limit=widen_limit,
            type_names=type_names,
        )


def analyze_schedule(
    result: "SystemSchedule",
    *,
    offset_model: str = MODEL_DEPLOYED,
    pools: Optional[Mapping[str, int]] = None,
    widen_limit: Optional[int] = None,
    tracer: Optional["Any"] = None,
) -> AbsIntResult:
    """Fold one concrete schedule's exact profiles into the domain.

    Every per-process interval is a point (``lo == hi`` equals the
    certifier's envelope); under deployed singleton cosets the joined
    ``slot_lo == slot_hi`` reproduce
    :meth:`~repro.core.result.SystemSchedule.global_demand`.  Pools
    default to the schedule's own allocations.
    """
    model = _resolve_model(offset_model)
    tracer = as_tracer(tracer)
    starts: Dict[Tuple[str, str], Dict[str, int]] = {
        key: sched.starts for key, sched in result.block_schedules.items()
    }
    merged_pools: Dict[str, int] = {
        type_name: result.global_instances(type_name)
        for type_name in result.assignment.global_types
    }
    if pools is not None:
        merged_pools.update({name: int(v) for name, v in pools.items()})
    with tracer.activate(), tracer.span(
        "absint", system=result.system.name, mode=MODE_SCHEDULE, model=model
    ):
        return _analyze(
            result.system,
            result.library,
            result.assignment,
            result.periods,
            mode=MODE_SCHEDULE,
            model=model,
            pools=merged_pools,
            offsets={
                name: result.offset_of(name)
                for name in result.system.process_names
            },
            starts=starts,
            widen_limit=widen_limit,
        )


# ----------------------------------------------------------------------
# Bound helpers consumed by repro.analysis.bounds
# ----------------------------------------------------------------------
def interval_pool_bound(
    system: "Any",
    library: "Any",
    assignment: "Any",
    periods: "Any",
    type_name: str,
) -> int:
    """Interval lower bound on the pool of one global type.

    Uses the rotation-free (``any``) model so the bound stays admissible
    even when offsets are later re-optimized; for multicycle types the
    coloring pool dominates the peak slot demand, so the bound holds
    there too.
    """
    result = _analyze(
        system,
        library,
        assignment,
        periods,
        mode=MODE_PROBLEM,
        model=MODEL_ANY,
        pools=None,
        offsets=None,
        starts=None,
        widen_limit=None,
        type_names=[type_name],
    )
    return result.types[0].lower_peak


def forced_process_bound(
    process: "Any", library: "Any", type_name: str
) -> int:
    """Forced-simultaneity lower bound on one process's local instances.

    The peak of the must-busy profile: operations whose mobility is
    smaller than their occupancy overlap in every feasible schedule, so
    the forced peak can beat the averaging bound on rigid blocks.
    """
    best = 0
    for block in process.blocks:
        flo, _ = block_step_profiles(block, library, type_name)
        peak = max(flo, default=0)
        if peak > best:
            best = peak
    return best
