"""The residue-pressure interval domain: pure data, JSON in/out.

An abstract value of the analysis is, per (resource type, slot residue
class) under the eq. 2-3 period grid, an integer interval ``[lo, hi]``
bounding the per-process folded occupancy envelope of *any*
grid-admissible schedule:

* :class:`ProcessPressure` — one process's interval envelope over the
  period axis, plus its admissible rotation coset (the same base/step/
  count arithmetic the certifier uses);
* :class:`TypePressure` — the rotation-joined slot intervals of one
  global type, with the derived sound peak bounds ``lower_peak`` /
  ``upper_peak`` (see :mod:`repro.analysis.absint.analyze` for the
  soundness argument of each component);
* :class:`AbsIntResult` — the whole analysis of one system, one entry
  per global type.

Like the certificate artifacts, this module imports nothing from the
scheduling layers: results are plain data and stay loadable anywhere.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Format tag of the JSON artifact; bump on breaking schema changes.
ABSINT_FORMAT = "repro-absint"
ABSINT_VERSION = 1

#: Analysis modes: ``problem`` abstracts over every grid-admissible
#: schedule (mobility windows); ``schedule`` folds one concrete
#: schedule's exact profiles (intervals collapse to points).
MODE_PROBLEM = "problem"
MODE_SCHEDULE = "schedule"


@dataclass(frozen=True)
class ProcessPressure:
    """Interval envelope of one process for one global type.

    ``lo[tau] <= E_p[tau] <= hi[tau]`` holds for the folded occupancy
    envelope ``E_p`` of every schedule the analysis abstracts over; both
    arrays are *unrotated* (block-relative), exactly like the
    certifier's :class:`~repro.analysis.static.certificate.ProcessEnvelope`.
    The admissible rotations along the period axis form the coset
    ``{(base + i * step) % period : 0 <= i < count}``.
    """

    process: str
    grid: int
    offset: int
    rotation_base: int
    rotation_step: int
    rotation_count: int
    lo: List[int]
    hi: List[int]
    widened: bool = False
    #: Sound lower bound on the envelope's mass ``sum_tau E_p[tau]``:
    #: the maximum of the slot-wise lower bounds' sum and the busiest
    #: block's guard-aware busy mass averaged over its period coverage.
    mass_lo: int = 0

    @property
    def period(self) -> int:
        return len(self.hi)

    def rotations(self) -> List[int]:
        period = self.period
        return [
            (self.rotation_base + i * self.rotation_step) % period
            for i in range(self.rotation_count)
        ]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "process": self.process,
            "grid": self.grid,
            "offset": self.offset,
            "rotation": {
                "base": self.rotation_base,
                "step": self.rotation_step,
                "count": self.rotation_count,
            },
            "lo": list(self.lo),
            "hi": list(self.hi),
            "widened": self.widened,
            "mass_lo": self.mass_lo,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ProcessPressure":
        rotation = data.get("rotation", {})
        return cls(
            process=str(data["process"]),
            grid=int(data["grid"]),
            offset=int(data["offset"]),
            rotation_base=int(rotation.get("base", 0)),
            rotation_step=int(rotation.get("step", 1)),
            rotation_count=int(rotation.get("count", 1)),
            lo=[int(v) for v in data.get("lo", [])],
            hi=[int(v) for v in data.get("hi", [])],
            widened=bool(data.get("widened", False)),
            mass_lo=int(data.get("mass_lo", 0)),
        )


@dataclass(frozen=True)
class TypePressure:
    """Slot-pressure intervals of one global type after the rotation join.

    ``slot_lo[tau] <= demand[tau] <= slot_hi[tau]`` bounds the summed
    slot demand of every abstracted schedule under every admissible
    rotation choice; ``lower_peak <= pool_needed <= upper_peak`` bounds
    the peak slot demand (the quantity the certifier proves exactly).
    ``pool`` is the allocation the intervals are compared against, when
    one is known (``None`` in pool-free problem mode).
    """

    type_name: str
    period: int
    mode: str
    offset_model: str
    pool: Optional[int]
    slot_lo: List[int]
    slot_hi: List[int]
    lower_peak: int
    upper_peak: int
    processes: List[ProcessPressure] = field(default_factory=list)

    @property
    def slack(self) -> Optional[int]:
        """``pool - lower_peak``: how far the allocation sits above the
        demand every admissible schedule is forced to generate; ``None``
        without a pool."""
        if self.pool is None:
            return None
        return self.pool - self.lower_peak

    @property
    def proven_safe(self) -> Optional[bool]:
        """True when no admissible schedule can exceed the pool."""
        if self.pool is None:
            return None
        return self.upper_peak <= self.pool

    def tightest_slot(self) -> int:
        """The residue class with the highest possible pressure
        (ties resolved to the smallest slot)."""
        return max(range(self.period), key=lambda tau: (self.slot_hi[tau], -tau))

    def unreachable_slots(self) -> List[int]:
        """Residue classes no abstracted schedule can ever occupy."""
        return [tau for tau in range(self.period) if self.slot_hi[tau] == 0]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "type": self.type_name,
            "period": self.period,
            "mode": self.mode,
            "offset_model": self.offset_model,
            "pool": self.pool,
            "slot_lo": list(self.slot_lo),
            "slot_hi": list(self.slot_hi),
            "lower_peak": self.lower_peak,
            "upper_peak": self.upper_peak,
            "processes": [p.as_dict() for p in self.processes],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TypePressure":
        pool = data.get("pool")
        return cls(
            type_name=str(data["type"]),
            period=int(data["period"]),
            mode=str(data.get("mode", MODE_PROBLEM)),
            offset_model=str(data.get("offset_model", "deployed")),
            pool=None if pool is None else int(pool),
            slot_lo=[int(v) for v in data.get("slot_lo", [])],
            slot_hi=[int(v) for v in data.get("slot_hi", [])],
            lower_peak=int(data["lower_peak"]),
            upper_peak=int(data["upper_peak"]),
            processes=[
                ProcessPressure.from_dict(entry)
                for entry in data.get("processes", [])
            ],
        )


@dataclass
class AbsIntResult:
    """The residue-pressure analysis of one system."""

    system: str
    mode: str
    offset_model: str
    types: List[TypePressure] = field(default_factory=list)

    def pressure(self, type_name: str) -> TypePressure:
        for entry in self.types:
            if entry.type_name == type_name:
                return entry
        raise KeyError(f"analysis holds no pressure for type {type_name!r}")

    def summary(self) -> str:
        lines = [
            f"residue pressure for {self.system!r} "
            f"({self.mode} mode, {self.offset_model} offsets):"
        ]
        for entry in self.types:
            pool = "?" if entry.pool is None else str(entry.pool)
            lines.append(
                f"  {entry.type_name}: period {entry.period}, peak in "
                f"[{entry.lower_peak}, {entry.upper_peak}], pool {pool}"
            )
            tight = entry.tightest_slot()
            lines.append(
                f"    tightest slot {tight}: demand in "
                f"[{entry.slot_lo[tight]}, {entry.slot_hi[tight]}]"
            )
            idle = entry.unreachable_slots()
            if idle:
                lines.append(f"    unreachable slot(s): {idle}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        return {
            "format": ABSINT_FORMAT,
            "version": ABSINT_VERSION,
            "system": self.system,
            "mode": self.mode,
            "offset_model": self.offset_model,
            "types": [entry.as_dict() for entry in self.types],
        }

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AbsIntResult":
        if data.get("format") != ABSINT_FORMAT:
            raise ValueError(
                f"not a {ABSINT_FORMAT} artifact: format={data.get('format')!r}"
            )
        return cls(
            system=str(data.get("system", "")),
            mode=str(data.get("mode", MODE_PROBLEM)),
            offset_model=str(data.get("offset_model", "deployed")),
            types=[TypePressure.from_dict(entry) for entry in data.get("types", [])],
        )

    @classmethod
    def from_json(cls, text: str) -> "AbsIntResult":
        return cls.from_dict(json.loads(text))
