"""Bottleneck-cone extraction: the subgraph pinning the tightest interval.

:func:`extract_bottleneck_cone` names the operations, blocks, and edges
that generate the pressure at a type's tightest residue class — the
input contract for the feedback-guided iterative rescheduling pass
(ROADMAP: subgraph extraction per arXiv 2401.12343): a focused
re-reduction only has to perturb the extracted cone, not the whole
system.

The cone of one ``(type, slot)`` pair contains, per sharing process,
every operation of the type whose scheduled busy steps fold onto the
slot under the process's deployed rotation (the *contributing* ops),
plus their transitive predecessors inside the block (the dependence
cone constraining where the contributors can move).  The certifier's
``(type, slot, processes)`` conflict triple for the slot is attached
via :func:`repro.analysis.static.certifier.pool_conflict`, so the
extract carries the same witness shape ``repro.core.verify`` reports.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from ...core.result import SystemSchedule
from ..static.certificate import Counterexample
from ..static.certifier import pool_conflict
from .analyze import analyze_schedule
from .domain import AbsIntResult


@dataclass(frozen=True)
class ConeOp:
    """One operation of a bottleneck cone."""

    process: str
    block: str
    op_id: str
    kind: str
    start: int
    #: True when the op's busy steps fold onto the bottleneck slot;
    #: False for dependence-cone predecessors pulled in for context.
    contributing: bool

    @property
    def ref(self) -> str:
        return f"{self.process}/{self.block}/{self.op_id}"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "process": self.process,
            "block": self.block,
            "op": self.op_id,
            "kind": self.kind,
            "start": self.start,
            "contributing": self.contributing,
        }


@dataclass
class SubgraphExtract:
    """The ops/blocks/edges pinning one type's tightest interval."""

    type_name: str
    period: int
    slot: int
    pool: int
    lower_peak: int
    upper_peak: int
    conflict: Counterexample
    ops: List[ConeOp] = field(default_factory=list)
    #: ``(src_ref, dst_ref)`` dependence edges induced on the cone ops.
    edges: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def blocks(self) -> List[Tuple[str, str]]:
        """``(process, block)`` pairs covered by the cone, in op order."""
        seen: List[Tuple[str, str]] = []
        for op in self.ops:
            key = (op.process, op.block)
            if key not in seen:
                seen.append(key)
        return seen

    @property
    def processes(self) -> List[str]:
        seen: List[str] = []
        for op in self.ops:
            if op.process not in seen:
                seen.append(op.process)
        return seen

    def as_dict(self) -> Dict[str, Any]:
        return {
            "type": self.type_name,
            "period": self.period,
            "slot": self.slot,
            "pool": self.pool,
            "lower_peak": self.lower_peak,
            "upper_peak": self.upper_peak,
            "conflict": self.conflict.as_dict(),
            "blocks": [list(pair) for pair in self.blocks],
            "ops": [op.as_dict() for op in self.ops],
            "edges": [list(edge) for edge in self.edges],
        }

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=False)

    def render(self) -> str:
        contributing = [op for op in self.ops if op.contributing]
        lines = [
            f"bottleneck cone {self.conflict.triple()}: peak in "
            f"[{self.lower_peak}, {self.upper_peak}] against pool {self.pool} "
            f"(period {self.period})",
            f"  {len(contributing)} contributing op(s), "
            f"{len(self.ops) - len(contributing)} dependence predecessor(s), "
            f"{len(self.edges)} edge(s) over {len(self.blocks)} block(s)",
        ]
        for op in self.ops:
            marker = "*" if op.contributing else " "
            lines.append(
                f"  {marker} {op.ref} ({op.kind}) start {op.start}"
            )
        return "\n".join(lines)


def _tightest_type(absint: AbsIntResult) -> str:
    """The type with the least slack (pool - upper_peak); ties resolve
    to the highest upper peak, then the name."""

    def key(entry: Any) -> Tuple[float, int, str]:
        slack = (
            float("inf")
            if entry.pool is None
            else entry.pool - entry.upper_peak
        )
        return (slack, -entry.upper_peak, entry.type_name)

    if not absint.types:
        raise ValueError("analysis covers no global types; nothing to extract")
    return min(absint.types, key=key).type_name


def extract_bottleneck_cone(
    result: SystemSchedule,
    *,
    absint: Optional[AbsIntResult] = None,
    type_name: Optional[str] = None,
) -> SubgraphExtract:
    """Extract the subgraph pinning the tightest interval of a schedule.

    Args:
        result: The scheduled system to extract from.
        absint: A prior :func:`~repro.analysis.absint.analyze_schedule`
            result to reuse (recomputed when omitted).
        type_name: Extract for this global type instead of the one with
            the least slack.
    """
    if absint is None:
        absint = analyze_schedule(result)
    if type_name is None:
        type_name = _tightest_type(absint)
    pressure = absint.pressure(type_name)
    slot = pressure.tightest_slot()
    period = pressure.period
    pool = (
        pressure.pool
        if pressure.pool is not None
        else result.global_instances(type_name)
    )
    conflict = pool_conflict(result, type_name, pool)

    ops: List[ConeOp] = []
    edges: List[Tuple[str, str]] = []
    for process_name in result.assignment.group(type_name):
        rotation = result.offset_of(process_name) % period
        process = result.system.process(process_name)
        for block_name, sched in result.blocks_of(process_name):
            graph = process.block(block_name).graph
            contributing: Set[str] = set()
            for oid, start in sched.starts.items():
                op = graph.operation(oid)
                rtype = result.library.type_of(op)
                if rtype.name != type_name:
                    continue
                busy = range(start, start + rtype.occupancy)
                if any((rotation + j) % period == slot for j in busy):
                    contributing.add(oid)
            if not contributing:
                continue
            # Dependence cone: transitive predecessors of the
            # contributors, walked inside the block.
            cone: Set[str] = set(contributing)
            stack = list(contributing)
            while stack:
                oid = stack.pop()
                for pred in graph.predecessors(oid):
                    if pred not in cone:
                        cone.add(pred)
                        stack.append(pred)
            order = [oid for oid in graph.topological_order() if oid in cone]
            for oid in order:
                op = graph.operation(oid)
                ops.append(
                    ConeOp(
                        process=process_name,
                        block=block_name,
                        op_id=oid,
                        kind=op.kind.value,
                        start=sched.starts[oid],
                        contributing=oid in contributing,
                    )
                )
            prefix = f"{process_name}/{block_name}/"
            for src, dst in graph.edges:
                if src in cone and dst in cone:
                    edges.append((prefix + src, prefix + dst))
    return SubgraphExtract(
        type_name=type_name,
        period=period,
        slot=slot,
        pool=pool,
        lower_peak=pressure.lower_peak,
        upper_peak=pressure.upper_peak,
        conflict=conflict,
        ops=ops,
        edges=edges,
    )
