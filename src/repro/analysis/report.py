"""Self-contained run reports: schedule + profile + attribution.

``repro report`` (and :func:`run_report` behind it) folds everything a
single run produces — the schedule summary, the area table, the
telemetry profile with its metric histograms, and the bottleneck
attribution of :mod:`repro.analysis.attribution` — into one document a
reader can consume without the repository checked out.  The markdown
form is what CI uploads as the run artifact; the JSON form
(:meth:`RunReport.as_dict`) is the machine-readable twin used by the
bench-regression gate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..core.result import SystemSchedule
from ..obs.profile import render_profile
from .attribution import AttributionReport, attribute
from .metrics import area_breakdown


@dataclass
class RunReport:
    """One run, fully described."""

    system: str
    source: Optional[str]
    summary: str
    area_rows: List[Dict[str, Any]] = field(default_factory=list)
    telemetry: Dict[str, Any] = field(default_factory=dict)
    attribution: Optional[AttributionReport] = None

    def render_markdown(self) -> str:
        title = self.source or self.system
        lines = [
            f"# Run report: `{title}`",
            "",
            "## Schedule",
            "",
            "```",
            self.summary,
            "```",
            "",
            "## Area",
            "",
            "| type | instances | unit area | total |",
            "| --- | --- | --- | --- |",
        ]
        for row in self.area_rows:
            lines.append(
                f"| `{row['type']}` | {row['instances']} "
                f"| {row['unit_area']:g} | {row['total_area']:g} |"
            )
        if self.telemetry:
            lines.extend(
                [
                    "",
                    "## Profile",
                    "",
                    "```",
                    render_profile(self.telemetry, title=f"profile: {title}"),
                    "```",
                ]
            )
        if self.attribution is not None:
            lines.extend(["", self.attribution.render_markdown()])
        lines.append("")
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "system": self.system,
            "source": self.source,
            "summary": self.summary,
            "area": self.area_rows,
            "telemetry": self.telemetry,
        }
        if self.attribution is not None:
            record["attribution"] = self.attribution.as_dict()
        return record

    def as_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)


def run_report(
    result: SystemSchedule,
    *,
    audit: Any = None,
    source: Optional[str] = None,
) -> RunReport:
    """Build the full report for a finished schedule.

    Args:
        result: The schedule to report on; its attached ``telemetry``
            supplies the profile section.
        audit: Optional decision audit forwarded to :func:`attribute`.
        source: The ``.sys`` path the run came from, for the title.

    Attribution is only attempted when the assignment has global types
    (a purely local baseline has no conflict triples to report).
    """
    area_rows = [
        {
            "type": item.type_name,
            "instances": item.instances,
            "unit_area": item.unit_area,
            "total_area": item.total_area,
        }
        for item in area_breakdown(result)
    ]
    attribution = attribute(result, audit=audit)
    return RunReport(
        system=result.system.name,
        source=source,
        summary=result.summary(),
        area_rows=area_rows,
        telemetry=dict(result.telemetry),
        attribution=attribution,
    )
