"""Metrics over schedules and systems: area, utilization, mobility."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..ir.process import Block
from ..resources.library import ResourceLibrary
from ..core.result import SystemSchedule
from ..scheduling.timeframes import FrameTable


@dataclass(frozen=True)
class AreaItem:
    """Area contribution of one resource type."""

    type_name: str
    instances: int
    unit_area: float

    @property
    def total_area(self) -> float:
        return self.instances * self.unit_area


def area_breakdown(result: SystemSchedule) -> List[AreaItem]:
    """Instance counts and area per resource type, deterministic order."""
    items: List[AreaItem] = []
    counts = result.instance_counts()
    for rtype in result.library.types:
        if rtype.name in counts:
            items.append(
                AreaItem(
                    type_name=rtype.name,
                    instances=counts[rtype.name],
                    unit_area=rtype.area,
                )
            )
    return items


def static_utilization(result: SystemSchedule, type_name: str) -> float:
    """Scheduled busy steps over available instance-steps.

    Uses each block's deadline as its activity window; a low value for an
    expensive type is the paper's motivation for sharing it.
    """
    counts = result.instance_counts()
    instances = counts.get(type_name, 0)
    if instances == 0:
        return 0.0
    busy = 0
    window = 0
    for (process_name, block_name), sched in result.block_schedules.items():
        busy += int(sched.usage_profile(type_name).sum())
        window += sched.deadline
    if window == 0:
        return 0.0
    return busy / (instances * window)


def mobility_histogram(block: Block, library: ResourceLibrary) -> Dict[int, int]:
    """Histogram of operation mobilities (ALAP - ASAP) in one block."""
    table = FrameTable(block.graph, library.latency_of, block.deadline)
    histogram: Dict[int, int] = {}
    for op_id in block.graph.op_ids:
        mobility = table.mobility(op_id)
        histogram[mobility] = histogram.get(mobility, 0) + 1
    return dict(sorted(histogram.items()))
