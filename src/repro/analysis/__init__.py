"""Evaluation harness: metrics, tables, comparisons, attribution."""

from .attribution import (
    AttributionReport,
    BottleneckEntry,
    ContributingOp,
    attribute,
)
from .bounds import block_bound, bound_report, global_pool_bound, process_bound
from .compare import Comparison, compare_scopes
from .export import export_result, result_to_dict, result_to_json
from .gantt import block_gantt, system_gantt, usage_gantt
from .interconnect import (
    InterconnectReport,
    interconnect_report,
    total_area_with_interconnect,
)
from .metrics import AreaItem, area_breakdown, mobility_histogram, static_utilization
from .report import RunReport, run_report
from .tables import table1, usage_table

__all__ = [
    "AreaItem",
    "AttributionReport",
    "BottleneckEntry",
    "ContributingOp",
    "RunReport",
    "attribute",
    "run_report",
    "block_bound",
    "bound_report",
    "Comparison",
    "area_breakdown",
    "block_gantt",
    "compare_scopes",
    "export_result",
    "InterconnectReport",
    "interconnect_report",
    "global_pool_bound",
    "process_bound",
    "mobility_histogram",
    "static_utilization",
    "table1",
    "result_to_dict",
    "result_to_json",
    "system_gantt",
    "usage_gantt",
    "total_area_with_interconnect",
    "usage_table",
]
