"""Command-line interface for the modulo scheduling system.

Usage (after ``pip install -e .``)::

    python -m repro schedule system.sys            # global modulo scheduling
    python -m repro schedule system.sys --local    # traditional baseline
    python -m repro schedule system.sys --profile  # + phase/counter table
    python -m repro schedule system.sys --trace t.jsonl   # JSONL trace
    python -m repro profile system.sys             # profiling front and center
    python -m repro compare system.sys             # both + area comparison
    python -m repro simulate system.sys --cycles 5000 --seed 3
    python -m repro sweep system.sys               # period enumeration (S2)
    python -m repro sweep system.sys --live        # stream candidate progress
    python -m repro sweep system.sys --resume ck.jsonl  # crash-safe sweep
    python -m repro check system.sys               # preflight diagnostics
    python -m repro lint system.sys                # IR lint (LINT* codes)
    python -m repro certify system.sys             # static safety proof
    python -m repro certify system.sys --offset-model any
    python -m repro analyze system.sys             # residue-pressure intervals
    python -m repro analyze system.sys --mode problem --format json
    python -m repro explain system.sys             # bottleneck attribution
    python -m repro report system.sys -o run.md    # self-contained run report
    python -m repro info system.sys                # problem statistics
    python -m repro serve --state dir              # scheduling job server
    python -m repro schedule system.sys --server 127.0.0.1:7070
    python -m repro jobs --server 127.0.0.1:7070 --watch

``-v``/``-vv`` raise the ``repro.*`` log level (INFO/DEBUG on stderr);
``-q`` silences everything below ERROR.  User-facing results always go
to stdout.  The ``.sys`` input format is documented in
:mod:`repro.ir.systemio`.

Exit codes (docs/robustness.md): 0 success, 1 "ran but found nothing
usable" (no candidate schedules, verification/simulation violations,
diagnostic warnings), 2 errors.  Errors print one ``error [CODE]:``
line on stderr; the full traceback appears only under ``-v``.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
import traceback
from typing import Dict, List, Optional

from .analysis.compare import compare_scopes, render_comparison
from .analysis.tables import table1
from .api import load_problem
from .binding.instances import bind_instances
from .core.periods import enumerate_period_assignments_capped
from .core.verify import verify_system_schedule
from .errors import ReproError
from .obs import (
    AuditTrail,
    EventBus,
    Tracer,
    configure_logging,
    get_logger,
    render_profile,
)
from .obs.events import EVENT_CANDIDATE, EVENT_PRUNE
from .parallel import (
    STATUS_OK,
    STATUS_PRUNED,
    CandidateResult,
    ExplorationEngine,
)
from .scheduling.forces import area_weights
from .sim.simulator import SystemSimulator
from .validation import RunBudget, validate_path

_log = get_logger(__name__)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Time constrained modulo scheduling with global resource sharing",
    )
    verbosity = argparse.ArgumentParser(add_help=False)
    verbosity.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="log repro.* at INFO (-v) or DEBUG (-vv) on stderr",
    )
    verbosity.add_argument(
        "-q", "--quiet", action="store_true", help="only log errors"
    )
    observe = argparse.ArgumentParser(add_help=False)
    observe.add_argument(
        "--trace",
        metavar="FILE",
        help="write a JSONL trace (spans + per-iteration events) to FILE",
    )
    observe.add_argument(
        "--profile",
        action="store_true",
        help="print a phase-timing and counter table after the run",
    )
    audit = argparse.ArgumentParser(add_help=False)
    audit.add_argument(
        "--audit",
        metavar="FILE",
        help="record every reduction decision (candidates, forces, "
        "time-frame deltas, cache classification) and write the trail "
        "as JSONL to FILE",
    )
    audit.add_argument(
        "--audit-capacity",
        type=int,
        default=None,
        metavar="N",
        help="ring-buffer capacity of the audit trail; older decisions "
        "are dropped beyond it (default 16384)",
    )
    workers = argparse.ArgumentParser(add_help=False)
    workers.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes; 1 (default) runs in-process "
        "(see docs/parallel.md)",
    )
    server = argparse.ArgumentParser(add_help=False)
    server.add_argument(
        "--server",
        metavar="ADDR",
        default=None,
        help="run this command as a thin client of a `repro serve` "
        "daemon at ADDR (HOST:PORT or a unix-socket path); results "
        "come from its content-addressed cache (see docs/service.md)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    schedule = sub.add_parser(
        "schedule",
        help="schedule a .sys problem",
        parents=[verbosity, observe, audit, server],
    )
    schedule.add_argument("file", help="path to a .sys problem file")
    schedule.add_argument(
        "--local", action="store_true", help="ignore global scopes (baseline)"
    )
    schedule.add_argument(
        "--table", action="store_true", help="print the full Table-1 report"
    )
    schedule.add_argument(
        "--no-verify", action="store_true", help="skip static verification"
    )
    schedule.add_argument(
        "--no-check",
        action="store_true",
        help="skip the preflight diagnostics pass",
    )
    schedule.add_argument(
        "--max-iterations",
        type=int,
        default=None,
        metavar="N",
        help="scheduler iteration budget; exhausting it degrades to the "
        "list-scheduling fallback instead of running on",
    )
    schedule.add_argument(
        "--time-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="scheduler wall-clock budget; exceeding it degrades to the "
        "list-scheduling fallback",
    )
    schedule.add_argument(
        "--no-scoreboard",
        action="store_true",
        help="select reductions with the full candidate rescan instead "
        "of the incremental dirty-cone scoreboard (decisions are "
        "identical; see docs/performance.md)",
    )

    compare = sub.add_parser(
        "compare",
        help="global vs local comparison",
        parents=[verbosity, observe, workers],
    )
    compare.add_argument("file")

    simulate = sub.add_parser(
        "simulate", help="randomized reactive simulation", parents=[verbosity]
    )
    simulate.add_argument("file")
    simulate.add_argument("--cycles", type=int, default=5000)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--trigger", type=float, default=0.25)
    simulate.add_argument(
        "--trials",
        type=int,
        default=1,
        metavar="N",
        help="run N simulations with seeds seed..seed+N-1 and report "
        "the first failing seed (default %(default)s)",
    )

    sweep = sub.add_parser(
        "sweep",
        help="enumerate period assignments (step S2)",
        parents=[verbosity, observe, workers, server],
    )
    sweep.add_argument("file")
    sweep.add_argument(
        "--limit",
        type=int,
        default=200,
        help="cap on enumerated candidates; exceeding it truncates the "
        "sweep with a warning (default %(default)s)",
    )
    sweep.add_argument(
        "--no-prune",
        action="store_true",
        help="evaluate every candidate instead of skipping those whose "
        "area lower bound meets the best area found so far",
    )
    sweep.add_argument(
        "--chunk-size",
        type=int,
        default=1,
        metavar="N",
        help="candidates batched per worker call (default %(default)s)",
    )
    sweep.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-candidate wall-clock budget; a candidate exceeding it "
        "is retried once, then reported as failed",
    )
    sweep.add_argument(
        "--resume",
        metavar="PATH",
        default=None,
        help="JSONL checkpoint journal; finished candidates found in it "
        "are restored instead of re-evaluated, new results are appended "
        "durably so a killed sweep can resume exactly-once",
    )
    sweep.add_argument(
        "--no-check",
        action="store_true",
        help="skip the preflight diagnostics pass",
    )
    sweep.add_argument(
        "--certify",
        action="store_true",
        help="statically certify the incumbent best after the sweep "
        "(exit 1 when the proof fails)",
    )
    sweep.add_argument(
        "--live",
        action="store_true",
        help="stream one progress line per candidate (evaluated or "
        "pruned) to stderr as the engine's events arrive",
    )
    sweep.add_argument(
        "--no-scoreboard",
        action="store_true",
        help="evaluate candidates with the full candidate rescan "
        "instead of the incremental dirty-cone scoreboard (decisions "
        "are identical; see docs/performance.md)",
    )

    check = sub.add_parser(
        "check",
        help="preflight diagnostics without scheduling",
        parents=[verbosity],
    )
    check.add_argument("file", help="path to a .sys problem file")
    check.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default %(default)s)",
    )

    lint = sub.add_parser(
        "lint",
        help="rule-driven IR lint (LINT* codes; see docs/static-analysis.md)",
        parents=[verbosity],
    )
    lint.add_argument(
        "paths",
        nargs="+",
        help=".sys files or directories (directories lint every *.sys)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default %(default)s)",
    )
    lint.add_argument(
        "--rule",
        action="append",
        metavar="NAME",
        default=None,
        help="run only the named rule (repeatable); default: all rules",
    )

    certify = sub.add_parser(
        "certify",
        help="prove pool safety over all admissible offsets",
        parents=[verbosity, observe, server],
    )
    certify.add_argument("file", help="path to a .sys problem file")
    certify.add_argument(
        "--offset-model",
        choices=("deployed", "any"),
        default="deployed",
        help="offset space to prove: the configured deployment or every "
        "grid-aligned offset assignment (default %(default)s)",
    )
    certify.add_argument(
        "--pool",
        action="append",
        metavar="TYPE=N",
        default=None,
        help="certify against a fixed pool allocation instead of the "
        "derived one (repeatable)",
    )
    certify.add_argument(
        "-o",
        "--output",
        metavar="FILE",
        help="write the certificate JSON to FILE",
    )
    certify.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="stdout format (default %(default)s)",
    )
    certify.add_argument(
        "--recheck",
        action="store_true",
        help="re-verify the certificate with the independent checker",
    )

    analyze = sub.add_parser(
        "analyze",
        help="residue-pressure intervals and bottleneck cone "
        "(see docs/analysis.md)",
        parents=[verbosity, observe],
    )
    analyze.add_argument("file", help="path to a .sys problem file")
    analyze.add_argument(
        "--mode",
        choices=("problem", "schedule"),
        default="schedule",
        help="'problem' bounds every grid-admissible schedule without "
        "scheduling; 'schedule' folds one produced schedule exactly and "
        "extracts its bottleneck cone (default %(default)s)",
    )
    analyze.add_argument(
        "--offset-model",
        choices=("deployed", "any"),
        default="deployed",
        help="rotation space to join over (default %(default)s)",
    )
    analyze.add_argument(
        "--pool",
        action="append",
        metavar="TYPE=N",
        default=None,
        help="compare the intervals against a fixed pool allocation "
        "(repeatable)",
    )
    analyze.add_argument(
        "--type",
        dest="type_name",
        metavar="NAME",
        default=None,
        help="extract the bottleneck cone of this type (default: the "
        "type with the least interval slack)",
    )
    analyze.add_argument(
        "--no-cone",
        action="store_true",
        help="skip the bottleneck-cone extraction (schedule mode only)",
    )
    analyze.add_argument(
        "-o",
        "--output",
        metavar="FILE",
        help="write the analysis JSON to FILE",
    )
    analyze.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="stdout format (default %(default)s)",
    )

    profile = sub.add_parser(
        "profile",
        help="schedule with full instrumentation and report the profile",
        parents=[verbosity],
    )
    profile.add_argument("file")
    profile.add_argument(
        "--local", action="store_true", help="profile the all-local baseline"
    )
    profile.add_argument(
        "--trace", metavar="FILE", help="also write the JSONL trace to FILE"
    )
    profile.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format; json emits the full telemetry summary "
        "(counters, gauges, histograms, phase times) (default %(default)s)",
    )

    explain = sub.add_parser(
        "explain",
        help="schedule and attribute the area to its bottlenecks",
        parents=[verbosity, audit],
    )
    explain.add_argument("file", help="path to a .sys problem file")
    explain.add_argument(
        "--format",
        choices=("text", "json", "markdown"),
        default="text",
        help="output format (default %(default)s)",
    )

    report = sub.add_parser(
        "report",
        help="schedule with full instrumentation and emit a run report",
        parents=[verbosity, audit],
    )
    report.add_argument("file", help="path to a .sys problem file")
    report.add_argument(
        "-o", "--output", help="write the report here (default stdout)"
    )
    report.add_argument(
        "--format",
        choices=("markdown", "json"),
        default="markdown",
        help="report format (default %(default)s)",
    )

    info = sub.add_parser(
        "info", help="print problem statistics", parents=[verbosity]
    )
    info.add_argument("file")

    rtl = sub.add_parser(
        "rtl",
        help="schedule, bind, and emit Verilog text",
        parents=[verbosity],
    )
    rtl.add_argument("file")
    rtl.add_argument("-o", "--output", help="write HDL to this path (default stdout)")

    gantt = sub.add_parser(
        "gantt",
        help="schedule and print ASCII Gantt charts",
        parents=[verbosity],
    )
    gantt.add_argument("file")

    export = sub.add_parser(
        "export",
        help="schedule and emit the result as JSON",
        parents=[verbosity],
    )
    export.add_argument("file")
    export.add_argument("-o", "--output", help="write JSON here (default stdout)")

    serve = sub.add_parser(
        "serve",
        help="run the crash-safe scheduling job server (docs/service.md)",
        parents=[verbosity],
    )
    serve.add_argument(
        "--state",
        required=True,
        metavar="DIR",
        help="state directory: job journal, result cache, sweep journals",
    )
    serve.add_argument(
        "--address",
        default="127.0.0.1:7070",
        metavar="ADDR",
        help="HOST:PORT (port 0 picks a free port) or a unix-socket "
        "path (default %(default)s)",
    )
    serve.add_argument(
        "--serve-workers",
        type=int,
        default=1,
        metavar="N",
        help="worker threads draining the job queue (default %(default)s)",
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        metavar="N",
        help="max queued jobs before submissions get 429 "
        "(default %(default)s)",
    )
    serve.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-attempt wall-clock budget; timed-out attempts retry "
        "under the backoff policy",
    )
    serve.add_argument(
        "--inject-fault",
        metavar="SPEC",
        default=None,
        help="chaos harness: fire a fault on the Nth job attempt, "
        "e.g. 'exit:7@2' or 'hang:5@1x2' (DIRECTIVE[@N[xC]]; "
        "see repro.parallel.jobs)",
    )

    jobs = sub.add_parser(
        "jobs",
        help="list or watch the jobs of a running `repro serve` daemon, "
        "or garbage-collect an offline store's result cache",
        parents=[verbosity],
    )
    jobs.add_argument(
        "--server",
        metavar="ADDR",
        default=None,
        help="the daemon's address (HOST:PORT or unix-socket path); "
        "required unless --gc operates on a local state directory",
    )
    jobs.add_argument(
        "--gc",
        action="store_true",
        help="evict least-recently-used result-cache payloads of a "
        "local --state-dir down to --max-cache-bytes (tombstoned in "
        "the job journal; recovery never resurrects them)",
    )
    jobs.add_argument(
        "--state-dir",
        metavar="DIR",
        default=None,
        help="the store's state directory (for --gc)",
    )
    jobs.add_argument(
        "--max-cache-bytes",
        type=int,
        default=None,
        metavar="N",
        help="cache byte budget for --gc; oldest payloads are evicted "
        "until the cache fits",
    )
    jobs.add_argument(
        "--watch",
        action="store_true",
        help="keep polling and print every job state change until "
        "interrupted (or until all jobs are terminal)",
    )
    jobs.add_argument(
        "--interval",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="poll interval for --watch (default %(default)s)",
    )
    jobs.add_argument(
        "--metrics",
        action="store_true",
        help="print the daemon's Prometheus metrics instead of the "
        "job table",
    )
    return parser


def _tracer_for(args: argparse.Namespace) -> Optional[Tracer]:
    """A live tracer when ``--trace``/``--profile`` ask for one, else None."""
    if getattr(args, "trace", None) or getattr(args, "profile", False):
        return Tracer()
    return None


def _finish_trace(args: argparse.Namespace, tracer: Optional[Tracer]) -> None:
    """Write the JSONL trace file if ``--trace`` was given."""
    if tracer is not None and getattr(args, "trace", None):
        written = tracer.write_jsonl(args.trace)
        print(f"wrote {args.trace}: {written} trace records")


def _audit_for(
    args: argparse.Namespace, *, always: bool = False
) -> Optional[AuditTrail]:
    """An :class:`AuditTrail` when ``--audit`` asks for one.

    ``always`` forces a trail even without the flag (``explain`` and
    ``report`` enrich their output with it regardless).
    """
    if not always and not getattr(args, "audit", None):
        return None
    capacity = getattr(args, "audit_capacity", None)
    return AuditTrail(capacity) if capacity else AuditTrail()


def _finish_audit(
    args: argparse.Namespace, audit: Optional[AuditTrail]
) -> None:
    """Write the audit JSONL file if ``--audit`` was given."""
    if audit is not None and getattr(args, "audit", None):
        written = audit.write_jsonl(args.audit)
        print(f"wrote {args.audit}: {written} audit records")


def _live_progress(tracer: Tracer, total: int) -> None:
    """Subscribe a per-candidate progress line to the tracer's bus.

    The engine publishes one ``candidate`` event per finished candidate
    (and a ``prune`` event before it for skipped ones); rendering them
    as they arrive is what makes ``repro sweep --live`` a progress bar
    instead of a post-mortem.  Lines go to stderr so piped stdout stays
    machine-readable.
    """
    if tracer.bus is None:
        tracer.bus = EventBus()
    done = {"count": 0}

    def _render(event) -> None:
        if event.name == EVENT_PRUNE:
            return  # the paired candidate event carries the status
        if event.name != EVENT_CANDIDATE:
            return
        done["count"] += 1
        attrs = event.attrs
        status = attrs.get("status")
        if status == STATUS_OK:
            detail = f"area {attrs.get('area'):g}"
        elif status == STATUS_PRUNED:
            detail = f"pruned (bound {attrs.get('bound'):g})"
        else:
            detail = status or "?"
        print(
            f"[{done['count']}/{total}] {attrs.get('periods')} -> {detail}",
            file=sys.stderr,
        )

    tracer.bus.subscribe(_render)


def _preflight(args: argparse.Namespace) -> bool:
    """Run the diagnostics pass before scheduling (``--no-check`` skips).

    Errors are rendered on stderr and veto the run; warnings are
    rendered on stderr but let it proceed.
    """
    if getattr(args, "no_check", False):
        return True
    report = validate_path(args.file)
    if report.errors or report.warnings:
        print(report.render(), file=sys.stderr)
    if report.errors:
        print(
            f"error [CHECK]: {args.file}: preflight found "
            f"{len(report.errors)} error(s); fix them or rerun with "
            "--no-check",
            file=sys.stderr,
        )
        return False
    return True


def _run_budget(args: argparse.Namespace) -> Optional[RunBudget]:
    """A RunBudget from ``--max-iterations``/``--time-budget``, or None."""
    max_iterations = getattr(args, "max_iterations", None)
    time_budget = getattr(args, "time_budget", None)
    if max_iterations is None and time_budget is None:
        return None
    return RunBudget(max_iterations=max_iterations, wall_deadline=time_budget)


# ----------------------------------------------------------------------
# Thin-client paths (--server ADDR; see docs/service.md)
# ----------------------------------------------------------------------
def _reject_server_flags(
    args: argparse.Namespace, flags: Dict[str, str]
) -> None:
    """Fail fast on flags the remote protocol cannot honor.

    ``flags`` maps attribute names to the user-facing spelling; an
    attribute that is set (truthy, or non-default where a default is
    embedded in the message) raises a ``SERVE``-coded error instead of
    being silently dropped.
    """
    from .service import ServiceError

    for attr, flag in flags.items():
        if getattr(args, attr, None):
            raise ServiceError(
                f"{flag} is not supported with --server; run locally "
                "or drop the flag"
            )


def _remote_outcome(args: argparse.Namespace, kind: str, options: Dict):
    """Submit one job to the daemon and wait for its payload."""
    from .service import RemoteSession

    with open(args.file, encoding="utf-8") as handle:
        text = handle.read()
    session = RemoteSession(args.server)
    outcome = session.run(kind, text, options)
    if outcome.cached:
        print(
            "cache hit: result served from the daemon's "
            "content-addressed cache",
            file=sys.stderr,
        )
    return outcome


def _render_result_payload(payload: Dict) -> None:
    """Mirror ``SystemSchedule.summary()`` from a service payload."""
    counts = payload.get("instance_counts") or {}
    parts = [f"{count}x {name}" for name, count in counts.items()]
    line = f"system {payload.get('system')!r}: " + ", ".join(parts)
    line += f"; area {payload.get('area'):g}"
    if payload.get("iterations"):
        line += f"; {payload['iterations']} iterations"
    print(line)
    if payload.get("degraded"):
        print(
            "warning: the server's budget degraded this schedule to the "
            "list-scheduling fallback",
            file=sys.stderr,
        )


def _remote_schedule(args: argparse.Namespace) -> int:
    _reject_server_flags(
        args,
        {
            "table": "--table",
            "profile": "--profile",
            "trace": "--trace",
            "audit": "--audit",
            "time_budget": "--time-budget",
        },
    )
    if not _preflight(args):
        return 2
    options: Dict[str, object] = {}
    if args.local:
        options["local"] = True
    if args.no_scoreboard:
        options["use_scoreboard"] = False
    if args.max_iterations is not None:
        options["max_iterations"] = args.max_iterations
    outcome = _remote_outcome(args, "schedule", options)
    _render_result_payload(outcome.payload)
    if not args.no_verify:
        if not outcome.payload.get("verified"):
            print(
                "error [VERIFY]: the server-side verification failed",
                file=sys.stderr,
            )
            return 2
        print("verified: server-side static checks ok")
    return 0


def _remote_sweep(args: argparse.Namespace) -> int:
    _reject_server_flags(
        args,
        {
            "profile": "--profile",
            "trace": "--trace",
            "resume": "--resume",
            "live": "--live",
            "certify": "--certify",
            "job_timeout": "--job-timeout",
        },
    )
    if args.workers > 1 or args.chunk_size > 1:
        from .service import ServiceError

        raise ServiceError(
            "--workers/--chunk-size are not supported with --server; "
            "the daemon sweeps serially for deterministic, cacheable "
            "results"
        )
    if not _preflight(args):
        return 2
    options: Dict[str, object] = {"limit": args.limit}
    if args.no_prune:
        options["prune"] = False
    if args.no_scoreboard:
        options["use_scoreboard"] = False
    outcome = _remote_outcome(args, "sweep", options)
    payload = outcome.payload
    print(
        f"{payload.get('total')} period assignments survive the "
        "eq. 3 filters"
    )
    if payload.get("dropped"):
        print(
            f"warning: truncated at --limit {args.limit} "
            f"({payload['dropped']} combinations not examined)",
            file=sys.stderr,
        )
    if args.verbose:
        for record in payload.get("candidates") or []:
            if record["status"] == STATUS_OK:
                print(f"  {record['periods']} -> area {record['area']:g}")
            elif record["status"] == STATUS_PRUNED:
                print(
                    f"  {record['periods']} -> pruned "
                    f"(bound {record['bound']:g})"
                )
            else:
                print(f"  {record['periods']} -> failed: {record['error']}")
    print(
        f"sweep: {payload.get('evaluated')} evaluated, "
        f"{payload.get('pruned')} pruned, {payload.get('failed')} failed "
        f"(server: {args.server})"
    )
    best = payload.get("best")
    if best:
        print(f"best: {best['periods']} (area {best['area']:g})")
    elif payload.get("total"):
        print("error: no candidate produced a schedule", file=sys.stderr)
        return 1
    return 0


def _remote_certify(args: argparse.Namespace) -> int:
    _reject_server_flags(
        args,
        {
            "profile": "--profile",
            "trace": "--trace",
            "pool": "--pool",
            "recheck": "--recheck",
        },
    )
    options: Dict[str, object] = {}
    if args.offset_model != "deployed":
        options["offset_model"] = args.offset_model
    outcome = _remote_outcome(args, "certify", options)
    payload = outcome.payload
    certificate = payload.get("certificate") or {}
    if args.format == "json":
        print(json.dumps(certificate, indent=2))
    else:
        _render_result_payload(payload)
        print(
            f"certificate: {payload.get('verdict')} "
            f"({len(certificate.get('types') or [])} type proof(s), "
            f"offset model {certificate.get('offset_model')})"
        )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(certificate, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.output}", file=sys.stderr)
    return 0 if payload.get("safe") else 1


def cmd_serve(args: argparse.Namespace) -> int:
    from .parallel.jobs import FaultPlan
    from .service import JobStore, ServiceServer

    fault_plan = (
        FaultPlan.parse(args.inject_fault) if args.inject_fault else None
    )
    if fault_plan is not None:
        _log.warning(
            "fault injection armed: %s (chaos-testing mode)",
            fault_plan.spec(),
        )
    store = JobStore(
        args.state,
        queue_limit=args.queue_limit,
        job_timeout=args.job_timeout,
        fault_plan=fault_plan,
        bus=EventBus(),
    )
    server = ServiceServer(
        store, args.address, workers=args.serve_workers
    ).start()
    print(
        f"repro serve: listening on {server.address} "
        f"(state: {args.state}, workers: {args.serve_workers})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        server.shutdown()
    return 0


def _job_line(job: Dict) -> str:
    line = (
        f"{str(job.get('job'))[:16]}  {job.get('kind'):<9} "
        f"{job.get('state'):<9} attempts={job.get('attempts')}"
    )
    if job.get("cached"):
        line += "  (cached)"
    if job.get("error"):
        line += f"  error: {job['error']}"
    return line


def cmd_jobs(args: argparse.Namespace) -> int:
    import time as _time

    from .service import ServiceClient

    if args.gc:
        from .service import JobStore

        if not args.state_dir or args.max_cache_bytes is None:
            print(
                "error [SERVE]: --gc needs --state-dir and "
                "--max-cache-bytes",
                file=sys.stderr,
            )
            return 2
        with JobStore(args.state_dir) as store:
            store.recover()
            stats = store.gc(args.max_cache_bytes)
        print(
            f"gc {args.state_dir}: evicted {stats['evicted']} payload(s), "
            f"freed {stats['freed_bytes']} bytes, "
            f"{stats['remaining_bytes']} bytes remain"
        )
        return 0
    if not args.server:
        print(
            "error [SERVE]: --server is required (or use --gc with a "
            "local --state-dir)",
            file=sys.stderr,
        )
        return 2
    client = ServiceClient(args.server)
    if args.metrics:
        print(client.metrics_text(), end="")
        return 0
    if not args.watch:
        jobs = client.jobs()
        if not jobs:
            print("no jobs")
            return 0
        for job in jobs:
            print(_job_line(job))
        return 0
    terminal = ("done", "failed", "cancelled")
    seen: Dict[str, object] = {}
    try:
        while True:
            jobs = client.jobs()
            for job in jobs:
                job_id = str(job.get("job"))
                key = (job.get("state"), job.get("attempts"))
                if seen.get(job_id) != key:
                    seen[job_id] = key
                    print(_job_line(job), flush=True)
            if jobs and all(job.get("state") in terminal for job in jobs):
                return 0
            _time.sleep(args.interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive
        return 0


def cmd_check(args: argparse.Namespace) -> int:
    report = validate_path(args.file)
    if getattr(args, "format", "text") == "json":
        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(report.render())
    return report.exit_code


def _sys_paths(paths: List[str]) -> List[str]:
    """Expand directories to the ``*.sys`` files they contain."""
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            files.extend(sorted(glob.glob(os.path.join(path, "*.sys"))))
        else:
            files.append(path)
    return files


def cmd_lint(args: argparse.Namespace) -> int:
    from .analysis.static import RULES_BY_NAME, run_lint

    rules = None
    if args.rule:
        unknown = [name for name in args.rule if name not in RULES_BY_NAME]
        if unknown:
            print(
                f"error [CHECK]: unknown lint rule(s) "
                f"{', '.join(unknown)}; known: "
                f"{', '.join(sorted(RULES_BY_NAME))}",
                file=sys.stderr,
            )
            return 2
        rules = [RULES_BY_NAME[name] for name in args.rule]
    files = _sys_paths(args.paths)
    if not files:
        print("error [CHECK]: no .sys files to lint", file=sys.stderr)
        return 2
    reports = []
    worst = 0
    for path in files:
        report = validate_path(path)
        if report.ok:
            report = run_lint(load_problem(path), rules=rules, source=path)
        else:
            report.label = "lint"
        reports.append(report)
        worst = max(worst, report.exit_code)
    if args.format == "json":
        records = [report.as_dict() for report in reports]
        print(json.dumps(records[0] if len(records) == 1 else records, indent=2))
    else:
        for report in reports:
            print(report.render())
    return worst


def _parse_pools(entries: Optional[List[str]]) -> Optional[Dict[str, int]]:
    """``--pool TYPE=N`` entries as a mapping (None when absent)."""
    if not entries:
        return None
    pools: Dict[str, int] = {}
    for entry in entries:
        name, sep, value = entry.partition("=")
        try:
            pools[name] = int(value)
        except ValueError:
            sep = ""
        if not sep or not name:
            raise ReproError(f"--pool expects TYPE=N, got {entry!r}")
    return pools


def cmd_certify(args: argparse.Namespace) -> int:
    if getattr(args, "server", None):
        return _remote_certify(args)
    from .analysis.static import certify, check_certificate

    pools = _parse_pools(args.pool)
    problem = load_problem(args.file)
    tracer = _tracer_for(args)
    result = problem.schedule(tracer=tracer)
    certificate = certify(
        result, pools=pools, offset_model=args.offset_model, tracer=tracer
    )
    if args.format == "json":
        print(certificate.to_json())
    else:
        print(certificate.summary())
    if args.output:
        certificate.save(args.output)
        print(f"wrote {args.output}", file=sys.stderr)
    if args.recheck:
        problems = check_certificate(certificate, result, pools=pools)
        if problems:
            for problem_text in problems:
                print(f"recheck: {problem_text}", file=sys.stderr)
            print(
                "error [CERT]: the independent checker rejected the "
                f"certificate ({len(problems)} problem(s))",
                file=sys.stderr,
            )
            return 2
        if args.format != "json":
            print("recheck: certificate independently re-verified")
    if args.profile and tracer is not None:
        print()
        print(render_profile(tracer.summary(), title=f"profile: {args.file}"))
    _finish_trace(args, tracer)
    return 0 if certificate.safe else 1


def cmd_analyze(args: argparse.Namespace) -> int:
    from .analysis.absint import (
        analyze_problem,
        analyze_schedule,
        extract_bottleneck_cone,
    )

    pools = _parse_pools(args.pool)
    problem = load_problem(args.file)
    tracer = _tracer_for(args)
    cone = None
    if args.mode == "problem":
        analysis = analyze_problem(
            problem,
            offset_model=args.offset_model,
            pools=pools,
            tracer=tracer,
        )
    else:
        result = problem.schedule(tracer=tracer)
        analysis = analyze_schedule(
            result,
            offset_model=args.offset_model,
            pools=pools,
            tracer=tracer,
        )
        if not args.no_cone and analysis.types:
            cone = extract_bottleneck_cone(
                result, absint=analysis, type_name=args.type_name
            )
    payload = analysis.as_dict()
    if cone is not None:
        payload["bottleneck_cone"] = cone.as_dict()
    if args.format == "json":
        print(json.dumps(payload, indent=2))
    else:
        print(analysis.summary())
        if cone is not None:
            print()
            print(cone.render())
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.output}", file=sys.stderr)
    if args.profile and tracer is not None:
        print()
        print(render_profile(tracer.summary(), title=f"profile: {args.file}"))
    _finish_trace(args, tracer)
    return 0


def cmd_schedule(args: argparse.Namespace) -> int:
    if getattr(args, "server", None):
        return _remote_schedule(args)
    if not _preflight(args):
        return 2
    problem = load_problem(args.file)
    tracer = _tracer_for(args)
    audit = _audit_for(args)
    budget = _run_budget(args)
    kwargs = {} if budget is None else {"budget": budget}
    if audit is not None:
        kwargs["audit"] = audit
    if args.no_scoreboard:
        kwargs["use_scoreboard"] = False
    if args.local:
        result = problem.schedule_local_baseline(tracer=tracer, **kwargs)
    else:
        result = problem.schedule(tracer=tracer, **kwargs)
    print(result.summary())
    if result.degraded:
        info = result.telemetry.get("degraded", {})
        print(
            f"warning: budget exhausted ({info.get('reason', 'unknown')}); "
            f"result is a {info.get('fallback', 'fallback')} schedule, "
            "not force-directed",
            file=sys.stderr,
        )
    if args.table:
        print()
        print(table1(result))
    if args.profile:
        print()
        print(render_profile(result.telemetry, title=f"profile: {args.file}"))
    if not args.no_verify:
        report = verify_system_schedule(result)
        if not report.ok:
            print(report, file=sys.stderr)
            return 2
        binding = bind_instances(result)
        print(
            f"verified: {len(report.checks)} checks ok, "
            f"{len(binding.binding)} operations bound"
        )
    _finish_audit(args, audit)
    _finish_trace(args, tracer)
    return 0


def _comparison_record(result: CandidateResult) -> dict:
    """Adapt an engine record to :func:`render_comparison`'s shape."""
    return {
        "instance_counts": result.instance_counts,
        "area": result.area,
        "iterations": result.iterations,
        "wall_time": result.wall_time,
    }


def cmd_compare(args: argparse.Namespace) -> int:
    problem = load_problem(args.file)
    tracer = _tracer_for(args)
    if args.workers > 1:
        engine = ExplorationEngine(
            problem, workers=args.workers, prune=False, tracer=tracer
        )
        outcome = engine.compare()
        print(
            render_comparison(
                _comparison_record(outcome.global_result),
                _comparison_record(outcome.local_result),
            )
        )
        telemetry = outcome.telemetry
    else:
        comparison = compare_scopes(
            problem.system,
            problem.library,
            problem.assignment,
            problem.periods,
            weights=area_weights(problem.library),
            tracer=tracer,
        )
        print(comparison.render())
        telemetry = tracer.summary() if tracer is not None else None
    if args.profile and telemetry is not None:
        print()
        print(
            render_profile(
                telemetry, title=f"profile: {args.file} (both runs)"
            )
        )
    _finish_trace(args, tracer)
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    problem = load_problem(args.file)
    result = problem.schedule()
    simulator = SystemSimulator(
        result, seed=args.seed, trigger_probability=args.trigger
    )
    if args.trials <= 1:
        stats = simulator.run(args.cycles)
        print(stats.summary())
        return 0 if stats.ok else 1
    failed = []
    for seed in range(args.seed, args.seed + args.trials):
        stats = simulator.run(args.cycles, seed=seed)
        if not stats.ok:
            failed.append(seed)
            print(
                f"seed {seed}: {len(stats.trace.violations)} violation(s)",
                file=sys.stderr,
            )
    print(
        f"simulated {args.trials} trials x {args.cycles} cycles "
        f"(seeds {args.seed}..{args.seed + args.trials - 1}): "
        f"{len(failed)} failing"
    )
    if failed:
        print(
            f"failing seeds: {', '.join(str(s) for s in failed)} "
            f"(reproduce with --seed N --trials 1)",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    if getattr(args, "server", None):
        return _remote_sweep(args)
    if not _preflight(args):
        return 2
    problem = load_problem(args.file)
    tracer = _tracer_for(args)
    if args.live and tracer is None:
        tracer = Tracer()
    candidates, dropped = enumerate_period_assignments_capped(
        problem.system, problem.assignment, limit=args.limit
    )
    print(f"{len(candidates)} period assignments survive the eq. 3 filters")
    if dropped:
        _log.warning(
            "sweep truncated at --limit %d: %d period combinations "
            "were never examined; raise --limit for a complete sweep",
            args.limit,
            dropped,
        )
        print(
            f"warning: truncated at --limit {args.limit} "
            f"({dropped} combinations not examined)",
            file=sys.stderr,
        )

    def show(record: CandidateResult) -> None:
        """Per-candidate progress line, completion order (behind -v)."""
        if record.status == STATUS_OK:
            print(f"  {record.periods} -> area {record.area:g}")
        elif record.status == STATUS_PRUNED:
            print(f"  {record.periods} -> pruned (bound {record.bound:g})")
        else:
            print(f"  {record.periods} -> failed: {record.error}")

    if args.live:
        _live_progress(tracer, total=len(candidates))
    engine = ExplorationEngine(
        problem,
        workers=args.workers,
        prune=not args.no_prune,
        chunk_size=args.chunk_size,
        timeout=args.job_timeout,
        tracer=tracer,
        checkpoint=args.resume,
        use_scoreboard=not args.no_scoreboard,
    )
    outcome = engine.sweep(
        candidates, on_result=show if args.verbose else None
    )
    outcome.telemetry["candidates_truncated"] = dropped
    restored = outcome.telemetry.get("candidates_restored", 0)
    if restored:
        print(
            f"resumed from {args.resume}: {restored} candidate(s) "
            "restored from the journal"
        )
    summary = (
        f"sweep: {outcome.evaluated} evaluated, {outcome.pruned} pruned, "
        f"{outcome.failed} failed"
    )
    if dropped:
        summary += f", {dropped} truncated"
    summary += f" (workers: {args.workers})"
    print(summary)
    certified_safe = True
    if outcome.best is not None:
        # Tie-break among equal-area winners: lexicographically smallest
        # sorted(periods.items()) — deterministic across worker counts.
        print(f"best: {outcome.best.periods} (area {outcome.best.area:g})")
        if args.certify:
            _, certificate = engine.certify_best(outcome)
            print()
            print(certificate.summary())
            certified_safe = certificate.safe
    if args.profile:
        print()
        print(
            render_profile(
                outcome.telemetry,
                title=f"profile: {args.file} "
                f"({outcome.evaluated} sweep runs)",
            )
        )
    _finish_trace(args, tracer)
    if candidates and outcome.best is None:
        print("error: no candidate produced a schedule", file=sys.stderr)
        return 1
    if not certified_safe:
        print(
            "error: the best candidate failed static certification",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    problem = load_problem(args.file)
    tracer = Tracer()
    if args.local:
        result = problem.schedule_local_baseline(tracer=tracer)
    else:
        result = problem.schedule(tracer=tracer)
    if args.format == "json":
        print(json.dumps(result.telemetry, indent=2, sort_keys=True))
    else:
        print(result.summary())
        print()
        print(render_profile(result.telemetry, title=f"profile: {args.file}"))
    _finish_trace(args, tracer)
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    from .analysis.attribution import attribute

    problem = load_problem(args.file)
    audit = _audit_for(args, always=True)
    result = problem.schedule(audit=audit)
    report = attribute(result, audit=audit)
    if args.format == "json":
        print(report.as_json())
    elif args.format == "markdown":
        print(report.render_markdown())
    else:
        print(report.render())
    _finish_audit(args, audit)
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from .analysis.report import run_report

    problem = load_problem(args.file)
    tracer = Tracer()
    audit = _audit_for(args, always=True)
    result = problem.schedule(tracer=tracer, audit=audit)
    report = run_report(result, audit=audit, source=args.file)
    text = (
        report.as_json()
        if args.format == "json"
        else report.render_markdown()
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text if text.endswith("\n") else text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    _finish_audit(args, audit)
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    problem = load_problem(args.file)
    system = problem.system
    print(f"system {system.name!r}: {len(system)} processes, "
          f"{system.operation_count} operations")
    for process in system.processes:
        for block in process.blocks:
            counts = ", ".join(
                f"{n}x {kind.symbol}"
                for kind, n in block.graph.count_by_kind().items()
            )
            cp = block.graph.critical_path_length(problem.library.latency_of)
            tag = " (repeats)" if block.repeats else ""
            print(
                f"  {process.name}/{block.name}: {len(block.graph)} ops "
                f"({counts}), critical path {cp}, deadline {block.deadline}{tag}"
            )
    for type_name in problem.assignment.global_types:
        group = ", ".join(problem.assignment.group(type_name))
        print(
            f"  global {type_name}: shared by {group}, "
            f"period {problem.periods.period(type_name)}"
        )
    return 0


def cmd_rtl(args: argparse.Namespace) -> int:
    from .rtl.design import build_rtl
    from .rtl.verilog import emit_verilog

    problem = load_problem(args.file)
    result = problem.schedule()
    design = build_rtl(result)
    design.consistency_check()
    text = emit_verilog(design)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        stats = design.stats()
        print(
            f"wrote {args.output}: {stats['units']} units, "
            f"{stats['controllers']} controllers, {stats['issues']} issues"
        )
    else:
        print(text)
    return 0


def cmd_gantt(args: argparse.Namespace) -> int:
    from .analysis.gantt import system_gantt

    problem = load_problem(args.file)
    result = problem.schedule()
    print(result.summary())
    print()
    print(system_gantt(result))
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    from .analysis.export import export_result, result_to_json

    problem = load_problem(args.file)
    result = problem.schedule()
    if args.output:
        export_result(result, args.output)
        print(f"wrote {args.output}")
    else:
        print(result_to_json(result))
    return 0


_COMMANDS = {
    "schedule": cmd_schedule,
    "compare": cmd_compare,
    "simulate": cmd_simulate,
    "sweep": cmd_sweep,
    "check": cmd_check,
    "lint": cmd_lint,
    "certify": cmd_certify,
    "analyze": cmd_analyze,
    "explain": cmd_explain,
    "report": cmd_report,
    "profile": cmd_profile,
    "info": cmd_info,
    "rtl": cmd_rtl,
    "gantt": cmd_gantt,
    "export": cmd_export,
    "serve": cmd_serve,
    "jobs": cmd_jobs,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    verbose = getattr(args, "verbose", 0)
    configure_logging(verbose, getattr(args, "quiet", False))
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        if verbose:
            traceback.print_exc()
        print(f"error [{exc.code}]: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        if verbose:
            traceback.print_exc()
        print(f"error [OS]: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
