"""Time Constrained Modulo Scheduling with Global Resource Sharing.

A reproduction of Jäschke, Beckmann & Laur (DATE 1999): high-level
synthesis scheduling that statically shares functional-unit instances
across *independent processes* through periodic access authorizations,
implemented as a two-part modification of Improved Force-Directed
Scheduling.

Typical use::

    from repro import ModuloSystemScheduler
    from repro.workloads import paper_system, paper_assignment, paper_periods

    system, library = paper_system()
    scheduler = ModuloSystemScheduler(library)
    result = scheduler.schedule(system, paper_assignment(library), paper_periods())
    print(result.summary())

Subpackages: :mod:`repro.ir` (dataflow graphs, processes),
:mod:`repro.resources` (unit types, libraries, scope assignment),
:mod:`repro.scheduling` (frames, FDS, IFDS, list scheduling),
:mod:`repro.core` (modulo scheduling itself), :mod:`repro.binding`
(instances, authorizations), :mod:`repro.sim` (dynamic validation),
:mod:`repro.workloads` and :mod:`repro.analysis` (evaluation),
:mod:`repro.obs` (tracing, counters, logging, profiling).
"""

from .errors import (
    BindingError,
    GraphError,
    InfeasibleError,
    PeriodError,
    ReproError,
    ResourceError,
    SchedulingError,
    SimulationError,
    SpecificationError,
    VerificationError,
)
from .ir import (
    Block,
    DataFlowGraph,
    ExprBuilder,
    OpKind,
    Operation,
    Process,
    SystemSpec,
    parse_behavior,
)
from .resources import (
    ResourceAssignment,
    ResourceLibrary,
    ResourceType,
    alu_library,
    default_library,
    resource_type,
)
from .scheduling import (
    BlockSchedule,
    ForceDirectedScheduler,
    ImprovedForceDirectedScheduler,
    ListScheduler,
    area_weights,
    uniform_weights,
)
from .core import (
    ModuloSystemScheduler,
    PeriodAssignment,
    RCModuloScheduler,
    SystemSchedule,
    auto_assignment,
    enumerate_period_assignments,
    suggest_periods,
    verify,
    verify_system_schedule,
)
from .binding import AccessAuthorizationTable, InstanceBinding, bind_instances
from .obs import (
    NULL_TRACER,
    Counters,
    NullTracer,
    Tracer,
    configure_logging,
    get_logger,
    render_profile,
)
from .sim import SystemSimulator
from .analysis import Comparison, bound_report, compare_scopes, table1
from .api import Problem, load_problem, loads_problem
from .core import optimize_offsets, optimize_periods
from .rtl import RTLDesign, build_rtl, emit_verilog

__version__ = "1.0.0"

__all__ = [
    "AccessAuthorizationTable",
    "BindingError",
    "Block",
    "BlockSchedule",
    "Comparison",
    "Counters",
    "DataFlowGraph",
    "ExprBuilder",
    "ForceDirectedScheduler",
    "GraphError",
    "ImprovedForceDirectedScheduler",
    "InfeasibleError",
    "InstanceBinding",
    "ListScheduler",
    "ModuloSystemScheduler",
    "NULL_TRACER",
    "NullTracer",
    "OpKind",
    "Operation",
    "PeriodAssignment",
    "PeriodError",
    "Problem",
    "Process",
    "RCModuloScheduler",
    "RTLDesign",
    "ReproError",
    "ResourceAssignment",
    "ResourceError",
    "ResourceLibrary",
    "ResourceType",
    "SchedulingError",
    "SimulationError",
    "SpecificationError",
    "SystemSchedule",
    "SystemSimulator",
    "SystemSpec",
    "Tracer",
    "VerificationError",
    "alu_library",
    "area_weights",
    "auto_assignment",
    "bind_instances",
    "bound_report",
    "build_rtl",
    "compare_scopes",
    "configure_logging",
    "default_library",
    "emit_verilog",
    "enumerate_period_assignments",
    "get_logger",
    "load_problem",
    "loads_problem",
    "optimize_offsets",
    "parse_behavior",
    "optimize_periods",
    "render_profile",
    "resource_type",
    "suggest_periods",
    "table1",
    "uniform_weights",
    "verify",
    "verify_system_schedule",
]
