"""Start-offset optimization: rotate processes against each other.

An extension beyond the paper: the paper fixes every process's block
starts to multiples of its grid (offset 0), so two processes whose
authorizations peak at the same slots pay for the overlap.  But any
constant *offset* per process is equally valid — blocks then start at
absolute times ≡ offset (mod grid), which rotates all of the process's
periodic authorizations by the offset without touching a single block
schedule.  Choosing offsets that interleave the peaks flattens the slot
demand and can shrink the global pools for free.

The optimizer minimizes the area-weighted sum of pool sizes over the
offset lattice: exhaustively for small systems, greedily (processes in
order, each picking the best offset against the already-placed demand)
with local-improvement sweeps otherwise.  Everything downstream —
verification, binding, simulation, RTL — honors
``SystemSchedule.start_offsets``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import SchedulingError
from .result import SystemSchedule


@dataclass
class OffsetOutcome:
    """Result of an offset optimization."""

    offsets: Dict[str, int]
    area_before: float
    area_after: float
    pools_before: Dict[str, int]
    pools_after: Dict[str, int]

    @property
    def improved(self) -> bool:
        return self.area_after < self.area_before


def _base_authorizations(
    result: SystemSchedule,
) -> Dict[str, Dict[str, np.ndarray]]:
    """Un-rotated authorizations per global type and process."""
    saved = result.start_offsets
    result.start_offsets = {}
    try:
        base: Dict[str, Dict[str, np.ndarray]] = {}
        for type_name in result.assignment.global_types:
            base[type_name] = {
                process: result.authorization(process, type_name)
                for process in result.assignment.group(type_name)
            }
        return base
    finally:
        result.start_offsets = saved


def _pool_area(
    result: SystemSchedule,
    base: Dict[str, Dict[str, np.ndarray]],
    offsets: Dict[str, int],
) -> Tuple[float, Dict[str, int]]:
    """Area-weighted global pool cost under the given offsets."""
    area = 0.0
    pools: Dict[str, int] = {}
    for type_name, grants in base.items():
        period = result.periods.period(type_name)
        demand = np.zeros(period, dtype=int)
        for process, auth in grants.items():
            demand += np.roll(auth, offsets.get(process, 0) % period)
        pool = int(demand.max()) if demand.size else 0
        pools[type_name] = pool
        area += pool * result.library.type(type_name).area
    return area, pools


def optimize_offsets(
    result: SystemSchedule,
    *,
    exhaustive_limit: int = 20000,
    apply: bool = True,
) -> OffsetOutcome:
    """Choose per-process start offsets minimizing global pool area.

    Args:
        result: A finished system schedule (its block schedules are never
            modified; only ``start_offsets`` is set when ``apply``).
        exhaustive_limit: Exhaustive search is used when the offset
            lattice has at most this many points; otherwise a greedy
            placement with improvement sweeps runs.
        apply: Write the best offsets back into ``result``.

    Returns:
        The chosen offsets and before/after pool sizes and areas.
    """
    base = _base_authorizations(result)
    sharing = [
        process.name
        for process in result.system.processes
        if result.assignment.global_types_of(process.name)
    ]
    grids = {
        name: max(1, result.grid_spacing(name)) for name in sharing
    }
    global_area_before, pools_before = _pool_area(result, base, {})
    # Local instances are offset-independent; include them so the reported
    # areas match SystemSchedule.total_area().
    local_area = 0.0
    for rtype in result.library.types:
        for process in result.system.processes:
            local_area += rtype.area * result.local_instances(
                process.name, rtype.name
            )
    area_before = global_area_before + local_area

    if not sharing:
        return OffsetOutcome({}, area_before, area_before, pools_before, pools_before)

    lattice = 1
    for name in sharing:
        lattice *= grids[name]
    if lattice <= exhaustive_limit:
        best = _exhaustive(result, base, sharing, grids)
    else:
        best = _greedy(result, base, sharing, grids)

    global_area_after, pools_after = _pool_area(result, base, best)
    area_after = global_area_after + local_area
    # Never return something worse than the zero-offset default.
    if area_after > area_before:
        best, area_after, pools_after = {}, area_before, pools_before
    if apply:
        result.start_offsets = dict(best)
    return OffsetOutcome(
        offsets=dict(best),
        area_before=area_before,
        area_after=area_after,
        pools_before=pools_before,
        pools_after=pools_after,
    )


def _exhaustive(
    result: SystemSchedule,
    base: Dict[str, Dict[str, np.ndarray]],
    sharing: List[str],
    grids: Dict[str, int],
) -> Dict[str, int]:
    # The first process can stay at 0 (rotations of everything together
    # change nothing), shrinking the lattice by one dimension.
    best: Dict[str, int] = {}
    best_area: Optional[float] = None
    ranges = [range(1) if i == 0 else range(grids[name])
              for i, name in enumerate(sharing)]
    for combo in itertools.product(*ranges):
        offsets = dict(zip(sharing, combo))
        area, _pools = _pool_area(result, base, offsets)
        if best_area is None or area < best_area - 1e-12:
            best_area = area
            best = offsets
    return best


def _greedy(
    result: SystemSchedule,
    base: Dict[str, Dict[str, np.ndarray]],
    sharing: List[str],
    grids: Dict[str, int],
) -> Dict[str, int]:
    offsets: Dict[str, int] = {name: 0 for name in sharing}

    def best_offset_for(name: str) -> int:
        best_value = offsets[name]
        best_area: Optional[float] = None
        for candidate in range(grids[name]):
            trial = dict(offsets)
            trial[name] = candidate
            area, _pools = _pool_area(result, base, trial)
            if best_area is None or area < best_area - 1e-12:
                best_area = area
                best_value = candidate
        return best_value

    # Greedy placement followed by improvement sweeps to a fixpoint.
    for _sweep in range(len(sharing) + 2):
        changed = False
        for name in sharing:
            chosen = best_offset_for(name)
            if chosen != offsets[name]:
                offsets[name] = chosen
                changed = True
        if not changed:
            break
    return offsets
