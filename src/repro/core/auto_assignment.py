"""Automatic selection of the assignment scope per resource type.

The paper does step (S1) manually and names the automatic selection as
current work (§8: "Current work is in progress in order to automatically
select the assignment scope of each resource").  This module implements a
utilization-based heuristic for it:

For a resource type ``k`` and process ``p``, the *utilization* is the total
occupancy (busy steps) of ``k``-operations divided by the tightest block
deadline — a lower bound on the average instance need.  Locally, every
using process needs at least ``ceil(utilization)`` (and at least one)
instance; globally, a pool of roughly ``ceil(sum of utilizations)``
instances suffices on average.  Whenever the estimated pool is smaller
than the sum of the local minima, sharing the type saves area — which is
exactly the paper's motivation: low-utilization, high-cost resources are
the ones worth sharing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from ..ir.process import Process, SystemSpec
from ..resources.assignment import ResourceAssignment
from ..resources.library import ResourceLibrary
from ..resources.types import ResourceType


@dataclass(frozen=True)
class ScopeDecision:
    """Why one resource type was assigned its scope."""

    type_name: str
    make_global: bool
    users: tuple
    local_estimate: int
    global_estimate: int
    area_saving: float


def process_utilization(
    process: Process, library: ResourceLibrary, rtype: ResourceType
) -> float:
    """Estimated average instance need of a type within one process.

    Maximum over the process's blocks of (total busy steps / deadline);
    blocks never overlap, so the peak block dominates.
    """
    best = 0.0
    for block in process.blocks:
        busy = sum(
            rtype.occupancy for op in block.graph if rtype.executes(op.kind)
        )
        if busy:
            best = max(best, busy / block.deadline)
    return best


def decide_scopes(
    system: SystemSpec,
    library: ResourceLibrary,
    *,
    min_saving: float = 0.0,
) -> List[ScopeDecision]:
    """Evaluate the sharing benefit for every resource type.

    Args:
        min_saving: Minimum estimated area saving required to pick a global
            scope (use > 0 to keep cheap types local, reflecting that the
            paper does not weigh multiplexer/wiring overhead but flags it).
    """
    decisions: List[ScopeDecision] = []
    for rtype in library.types:
        users = [
            process
            for process in system.processes
            if any(kind in process.kinds_used() for kind in rtype.kinds)
        ]
        if len(users) < 2:
            continue
        utilizations = [process_utilization(p, library, rtype) for p in users]
        local_estimate = sum(max(1, math.ceil(u)) for u in utilizations)
        global_estimate = max(1, math.ceil(sum(utilizations)))
        saving = (local_estimate - global_estimate) * rtype.area
        decisions.append(
            ScopeDecision(
                type_name=rtype.name,
                make_global=saving > min_saving,
                users=tuple(p.name for p in users),
                local_estimate=local_estimate,
                global_estimate=global_estimate,
                area_saving=saving,
            )
        )
    return decisions


def auto_assignment(
    system: SystemSpec,
    library: ResourceLibrary,
    *,
    min_saving: float = 0.0,
) -> ResourceAssignment:
    """Build a :class:`ResourceAssignment` from the scope heuristic."""
    assignment = ResourceAssignment(library)
    for decision in decide_scopes(system, library, min_saving=min_saving):
        if decision.make_global:
            assignment.make_global(decision.type_name, list(decision.users))
    return assignment
