"""Periodic conflict-graph coloring for multicycle global types.

Occupancy-1 global types partition the pool by slot: per slot, each
process owns a contiguous id range sized by its grant, and the pool is
the maximum slot demand.  A *non-pipelined multicycle* unit breaks that
scheme — one operation must hold a single physical instance across
several consecutive slots, and slot-varying ranges cannot promise that.

The sound replacement is a synthesis-time coloring of the *periodic
conflict graph* over all operations of the type:

* two operations of the same block conflict iff their occupancy windows
  overlap in block-relative time (and they are not mutually exclusive
  branch alternatives);
* operations of different blocks of one process never conflict (C2);
* operations of different processes conflict iff their *absolute period
  slot sets* intersect — block start times are arbitrary grid-aligned
  values, so any slot collision is realized by some interleaving.

A greedy smallest-color pass in deterministic order yields the instance
assignment; the number of colors is the pool size.  It always lies
between the maximum slot demand (cliques realize it) and the sum of
per-process peak grants (the fixed-range fallback).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..errors import BindingError

OpKey = Tuple[str, str, str]  # (process, block, op)


def _arcs(result, type_name: str) -> List[Tuple[OpKey, int, int, Set[int], object]]:
    """Collect (key, start, end, absolute slot set, operation) per op."""
    period = result.periods.period(type_name)
    occupancy = result.library.type(type_name).occupancy
    arcs = []
    for process_name in result.assignment.group(type_name):
        offset = result.offset_of(process_name)
        for block_name, sched in result.blocks_of(process_name):
            for op in sched.graph:
                if result.library.type_of(op).name != type_name:
                    continue
                start = sched.start(op.op_id)
                slots = {
                    (step + offset) % period
                    for step in range(start, start + occupancy)
                }
                arcs.append(
                    (
                        (process_name, block_name, op.op_id),
                        start,
                        start + occupancy,
                        slots,
                        op,
                    )
                )
    return arcs


def _conflict(a, b) -> bool:
    (key_a, start_a, end_a, slots_a, op_a) = a
    (key_b, start_b, end_b, slots_b, op_b) = b
    if key_a[0] == key_b[0]:
        if key_a[1] != key_b[1]:
            return False  # different blocks of one process never overlap (C2)
        if op_a.excludes(op_b):
            return False  # mutually exclusive branches
        return start_a < end_b and start_b < end_a
    # Different processes: any shared absolute slot can collide at run time.
    return bool(slots_a & slots_b)


def multicycle_coloring(result, type_name: str) -> Dict[OpKey, int]:
    """Greedy instance coloring for one multicycle global type."""
    if not result.assignment.is_global(type_name):
        raise BindingError(f"type {type_name!r} is not globally assigned")
    arcs = _arcs(result, type_name)
    arcs.sort(key=lambda arc: (arc[0][0], arc[0][1], arc[1], arc[0][2]))
    colors: Dict[OpKey, int] = {}
    for index, arc in enumerate(arcs):
        taken = {
            colors[other[0]]
            for other in arcs[:index]
            if _conflict(arc, other)
        }
        color = 0
        while color in taken:
            color += 1
        colors[arc[0]] = color
    return colors


def multicycle_pool(result, type_name: str) -> int:
    """Pool size for a multicycle global type: colors used by the greedy
    periodic coloring (0 when no operation uses the type)."""
    colors = multicycle_coloring(result, type_name)
    return max(colors.values()) + 1 if colors else 0
