"""Process-merging baseline (the paper's related work, §1.1 / [5]).

Before modulo scheduling, the only way to share resources across
processes was to *merge* them into a single scheduling unit: concatenate
the operation sets, schedule once, and let the classic per-block resource
counting see everything together.  This works only under strong
restrictions — all merged processes must start simultaneously and have
statically known timing ("merging processes is not applicable in case of
unpredictable block starting times").

This module implements that baseline so the trade-off can be measured:

* on a *deterministic* system (every process released together, one
  block each), merging is the strongest possible sharing — a single
  block with the max deadline;
* on a *reactive* system it is simply inapplicable
  (:func:`merge_system` refuses multi-block or repeating processes),
  which is the gap the paper's method fills.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..errors import SpecificationError
from ..ir.dfg import DataFlowGraph
from ..ir.process import Block, Process, SystemSpec
from ..resources.library import ResourceLibrary
from ..scheduling.forces import DEFAULT_LOOKAHEAD
from ..scheduling.ifds import ImprovedForceDirectedScheduler
from ..scheduling.schedule import BlockSchedule


def merge_system(system: SystemSpec, *, name: str = "") -> Block:
    """Merge all processes of a system into one block.

    Operation ids are prefixed with their process name to stay unique;
    the merged deadline is the maximum of the block deadlines (all
    processes are assumed released at time 0 — the merging assumption).

    Raises:
        SpecificationError: if any process has more than one block or a
            repeating (unbounded-loop) block — the cases the paper's
            method exists for.
    """
    merged = DataFlowGraph(name=name or f"{system.name}-merged")
    deadline = 0
    for process in system.processes:
        if len(process.blocks) != 1:
            raise SpecificationError(
                f"process {process.name!r} has {len(process.blocks)} blocks; "
                "merging requires exactly one statically-timed block"
            )
        block = process.blocks[0]
        if block.repeats:
            raise SpecificationError(
                f"process {process.name!r} repeats (unbounded loop); "
                "merging cannot handle unpredictable block starting times"
            )
        deadline = max(deadline, block.deadline)
        for op in block.graph:
            merged.add_operation(
                type(op)(
                    op_id=f"{process.name}.{op.op_id}",
                    kind=op.kind,
                    name=op.name,
                    tags=op.tags,
                    guard=op.guard,
                )
            )
        for src, dst in block.graph.edges:
            merged.add_edge(f"{process.name}.{src}", f"{process.name}.{dst}")
    merged.validate()
    return Block(name=merged.name, graph=merged, deadline=deadline)


def schedule_merged(
    system: SystemSpec,
    library: ResourceLibrary,
    *,
    lookahead: float = DEFAULT_LOOKAHEAD,
    weights: Optional[Dict[str, float]] = None,
) -> Tuple[BlockSchedule, Dict[str, int], float]:
    """Merge, schedule with IFDS, and report instance counts and area.

    Returns:
        ``(schedule, counts, area)`` where counts are the per-type peak
        usages of the merged schedule (one pool for everything) and area
        is their cost.
    """
    block = merge_system(system)
    scheduler = ImprovedForceDirectedScheduler(
        library, lookahead=lookahead, weights=weights
    )
    schedule = scheduler.schedule(block)
    counts = {name: peak for name, peak in schedule.peaks().items() if peak}
    area = sum(library.type(name).area * count for name, count in counts.items())
    return schedule, counts, area
