"""Resource-constrained modulo scheduling with global resource sharing.

The companion method of the paper's reference [8] (Jäschke & Laur, ISSS
1998): instead of minimizing resources under time constraints, minimize
each block's latency under *fixed* instance counts, with global types
governed by the same periodic access-authorization model.

Processes claim slot capacity in a deterministic order.  For every global
type, the remaining per-slot capacity is the pool size minus the
authorizations already granted to earlier processes; within one process
each block may use the full remaining capacity (blocks never overlap, C2),
and the process's authorization is the slot-wise maximum over its blocks'
folded usage.  Blocks themselves are scheduled with list scheduling whose
slot-capacity hook enforces the periodic limits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

import numpy as np

from ..errors import SchedulingError
from ..ir.process import SystemSpec
from ..resources.assignment import ResourceAssignment
from ..resources.library import ResourceLibrary
from ..scheduling.list_scheduling import ListScheduler
from ..scheduling.schedule import BlockSchedule
from .modulo import modulo_max_int
from .periods import PeriodAssignment

BlockKey = Tuple[str, str]


@dataclass
class RCModuloResult:
    """Result of resource-constrained modulo scheduling."""

    system: SystemSpec
    library: ResourceLibrary
    assignment: ResourceAssignment
    periods: PeriodAssignment
    capacity: Dict[str, int]
    block_schedules: Dict[BlockKey, BlockSchedule]
    authorizations: Dict[Tuple[str, str], np.ndarray] = field(default_factory=dict)

    def makespan(self, process_name: str, block_name: str) -> int:
        return self.block_schedules[(process_name, block_name)].makespan

    def makespans(self) -> Dict[BlockKey, int]:
        return {key: sched.makespan for key, sched in self.block_schedules.items()}

    def meets_deadlines(self) -> bool:
        """Whether every block finished within its specified deadline."""
        for process, block in self.system.iter_blocks():
            if self.makespan(process.name, block.name) > block.deadline:
                return False
        return True

    def authorization(self, process_name: str, type_name: str) -> np.ndarray:
        return self.authorizations[(process_name, type_name)]


class RCModuloScheduler:
    """Latency-minimizing scheduler under fixed, globally shared resources.

    Args:
        library: Resource library.
        capacity: Instances per resource type.  For a global type this is
            the shared pool size; for a local type, the per-process count.
        fair_share: Reserve one instance per slot for every group member
            still to be scheduled: a process may claim at most
            ``max(1, pool - remaining members)`` instances per slot.
            Without the reservation, the first process list-schedules as
            greedily as the pool allows and its folded claims can starve
            later processes of the group; the cap trades some
            early-process latency for group-wide schedulability.
    """

    def __init__(
        self,
        library: ResourceLibrary,
        capacity: Mapping[str, int],
        *,
        fair_share: bool = True,
    ) -> None:
        self.library = library
        self.capacity = dict(capacity)
        self.fair_share = fair_share

    def schedule(
        self,
        system: SystemSpec,
        assignment: ResourceAssignment,
        periods: PeriodAssignment,
    ) -> RCModuloResult:
        assignment.validate(system)
        periods.validate(assignment)
        remaining: Dict[str, np.ndarray] = {}
        for type_name in assignment.global_types:
            if type_name not in self.capacity:
                raise SchedulingError(f"no capacity for global type {type_name!r}")
            period = periods.period(type_name)
            remaining[type_name] = np.full(
                period, self.capacity[type_name], dtype=int
            )

        block_schedules: Dict[BlockKey, BlockSchedule] = {}
        authorizations: Dict[Tuple[str, str], np.ndarray] = {}
        scheduled: set = set()
        for process in system.processes:
            shared_types = [
                t for t in assignment.global_types
                if assignment.shares_globally(t, process.name)
            ]

            limits: Dict[str, int] = {}
            for type_name in shared_types:
                pool = self.capacity[type_name]
                if self.fair_share:
                    still_to_come = sum(
                        1
                        for member in assignment.group(type_name)
                        if member != process.name and member not in scheduled
                    )
                    limits[type_name] = max(1, pool - still_to_come)
                else:
                    limits[type_name] = pool

            def slot_capacity(type_name: str, step: int, _shared=tuple(shared_types)):
                if type_name in _shared:
                    period = periods.period(type_name)
                    available = int(remaining[type_name][step % period])
                    return min(available, limits[type_name])
                # Local types are bounded by the static capacity that the
                # list scheduler already enforces.
                return self.capacity.get(type_name, 1_000_000)

            scheduler = ListScheduler(self.library, self.capacity)
            claimed: Dict[str, np.ndarray] = {
                t: np.zeros(periods.period(t), dtype=int) for t in shared_types
            }
            for block in process.blocks:
                sched = scheduler.schedule(block, slot_capacity=slot_capacity)
                block_schedules[(process.name, block.name)] = sched
                for type_name in shared_types:
                    period = periods.period(type_name)
                    usage = sched.usage_profile(type_name)
                    folded = modulo_max_int(usage, period)
                    np.maximum(claimed[type_name], folded, out=claimed[type_name])
            for type_name in shared_types:
                remaining[type_name] -= claimed[type_name]
                authorizations[(process.name, type_name)] = claimed[type_name]
            scheduled.add(process.name)

        return RCModuloResult(
            system=system,
            library=self.library,
            assignment=assignment,
            periods=periods,
            capacity=dict(self.capacity),
            block_schedules=block_schedules,
            authorizations=authorizations,
        )
