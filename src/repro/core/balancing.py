"""Global balancing of resource requirements (§5.2, eq. 9).

Blocks of one process never overlap (condition C2), so — like branches of
an alternation in classic FDS — the process needs, per period slot, only
the **maximum** of its blocks' modulo-transformed distributions.  Across
the processes of a sharing group the requirements add up: the processes
run independently, so at any absolute time each may be exercising its full
authorization simultaneously.  The balanced system distribution

    S_k(tau) = sum over processes p of ( max over blocks b of Q_{b,k}(tau) )

is therefore exactly the instance count the global type needs at slot
``tau``; the modified force minimizes its maximum over ``tau``.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from ..errors import SchedulingError


def process_max(block_distributions: Sequence[np.ndarray], period: int) -> np.ndarray:
    """Pointwise maximum of the blocks' modulo distributions (eq. 9).

    An empty sequence yields the all-zero distribution (the process never
    touches the type).
    """
    result = np.zeros(period, dtype=float)
    for array in block_distributions:
        if array.shape != (period,):
            raise SchedulingError(
                f"block distribution has shape {array.shape}, expected ({period},)"
            )
        np.maximum(result, array, out=result)
    return result


def system_sum(process_maxima: Iterable[np.ndarray], period: int) -> np.ndarray:
    """Sum of the per-process maxima over the sharing group."""
    result = np.zeros(period, dtype=float)
    for array in process_maxima:
        if array.shape != (period,):
            raise SchedulingError(
                f"process distribution has shape {array.shape}, expected ({period},)"
            )
        result += array
    return result


def balance(
    per_process_blocks: Sequence[Sequence[np.ndarray]], period: int
) -> np.ndarray:
    """Full balancing: per-process max, then sum across processes."""
    maxima: List[np.ndarray] = [
        process_max(blocks, period) for blocks in per_process_blocks
    ]
    return system_sum(maxima, period)
