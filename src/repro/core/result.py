"""System-level schedule results: instance counts, authorizations, area.

A :class:`SystemSchedule` bundles the per-block schedules produced by the
modulo system scheduler (or by per-process classic scheduling, for the
baseline) with the scope and period decisions, and derives everything the
paper's evaluation reports:

* per-process **access authorizations** for global types (how many
  instances a process may touch at each period slot — the synthesis-time
  artifact replacing any runtime executive);
* **instance counts**: global pools sized by the slot-wise sum of the
  per-process authorizations; local types sized per process by peak
  concurrent usage;
* total **area cost**.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import SchedulingError
from ..ir.process import SystemSpec
from ..resources.assignment import ResourceAssignment
from ..resources.library import ResourceLibrary
from ..scheduling.schedule import BlockSchedule
from .modulo import modulo_max_int
from .periods import PeriodAssignment

BlockKey = Tuple[str, str]


@dataclass
class SystemSchedule:
    """Schedules of every block of the system plus sharing decisions.

    ``start_offsets`` optionally shifts a process's start grid: its blocks
    then start at absolute times ≡ offset (mod its grid spacing), which
    rotates all of its periodic authorizations by the offset.  Offsets
    default to 0 (the paper's convention); :func:`repro.core.offsets.
    optimize_offsets` picks them to flatten the slot demand.
    """

    system: SystemSpec
    library: ResourceLibrary
    assignment: ResourceAssignment
    periods: PeriodAssignment
    block_schedules: Dict[BlockKey, BlockSchedule]
    iterations: int = 0
    wall_time: float = 0.0
    start_offsets: Dict[str, int] = field(default_factory=dict)
    #: True when a :class:`~repro.validation.budget.RunBudget` exhausted
    #: mid-run and the blocks were rescheduled by the list-scheduling
    #: fallback; the reason lives in ``telemetry["degraded"]``.
    degraded: bool = False
    #: Observability summary filled in by the scheduler: ``phase_times``
    #: (setup / reduction_loop / finalization seconds), ``wall_time``,
    #: ``iterations``, ``counters`` (from the run's tracer; empty when
    #: scheduled through the no-op tracer), and ``events`` (trace-event
    #: count).  Empty for hand-built results.
    telemetry: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def schedule_of(self, process_name: str, block_name: str) -> BlockSchedule:
        try:
            return self.block_schedules[(process_name, block_name)]
        except KeyError:
            raise SchedulingError(
                f"no schedule for block {block_name!r} of process {process_name!r}"
            ) from None

    def blocks_of(self, process_name: str) -> List[Tuple[str, BlockSchedule]]:
        return [
            (block, sched)
            for (process, block), sched in self.block_schedules.items()
            if process == process_name
        ]

    # ------------------------------------------------------------------
    # Authorizations and instance counts
    # ------------------------------------------------------------------
    def offset_of(self, process_name: str) -> int:
        """Start-grid offset of a process (0 unless offsets were optimized)."""
        return self.start_offsets.get(process_name, 0)

    def authorization(self, process_name: str, type_name: str) -> np.ndarray:
        """Access authorization of a process for a global type.

        Entry ``tau`` is the number of instances the process may use at
        every absolute time step congruent to ``tau`` modulo the type's
        period: the maximum, over the process's blocks, of the
        modulo-max-folded integer usage (eqs. 1, 7 applied to the final
        schedule), rotated by the process's start offset (blocks start at
        absolute times ≡ offset, so relative slot ``s`` lands on absolute
        slot ``s + offset``).
        """
        if not self.assignment.shares_globally(type_name, process_name):
            raise SchedulingError(
                f"type {type_name!r} is not globally shared by process "
                f"{process_name!r}"
            )
        period = self.periods.period(type_name)
        auth = np.zeros(period, dtype=int)
        for _, sched in self.blocks_of(process_name):
            folded = modulo_max_int(sched.usage_profile(type_name), period)
            np.maximum(auth, folded, out=auth)
        offset = self.offset_of(process_name) % period
        if offset:
            auth = np.roll(auth, offset)
        return auth

    def global_demand(self, type_name: str) -> np.ndarray:
        """Slot-wise sum of the sharing processes' authorizations (``S_k``)."""
        if not self.assignment.is_global(type_name):
            raise SchedulingError(f"type {type_name!r} is not global")
        period = self.periods.period(type_name)
        demand = np.zeros(period, dtype=int)
        for process_name in self.assignment.group(type_name):
            demand += self.authorization(process_name, type_name)
        return demand

    def global_instances(self, type_name: str) -> int:
        """Pool size of a global type.

        For occupancy-1 types (unit latency or pipelined) the pool is the
        maximum slot demand: processes own *per-slot* disjoint instance-id
        ranges, so instances are reused across slots.  A non-pipelined
        multicycle unit spans several slots per operation, and slot-varying
        id ranges cannot guarantee one stable instance across the span —
        such types are pooled by a synthesis-time coloring of the periodic
        conflict graph instead (:mod:`repro.core.coloring`), which lies
        between the maximum slot demand and the sum of per-process peaks.
        """
        if self.library.type(type_name).occupancy > 1:
            from .coloring import multicycle_pool

            return multicycle_pool(self, type_name)
        demand = self.global_demand(type_name)
        return int(demand.max()) if demand.size else 0

    def local_instances(self, process_name: str, type_name: str) -> int:
        """Per-process instance need of a type used locally by the process.

        Zero if the process shares the type globally (it then draws from
        the pool) or never uses it.
        """
        if self.assignment.shares_globally(type_name, process_name):
            return 0
        peak = 0
        for _, sched in self.blocks_of(process_name):
            peak = max(peak, sched.peak_usage(type_name))
        return peak

    def instance_counts(self) -> Dict[str, int]:
        """Total instances per resource type (global pool + local sums)."""
        counts: Dict[str, int] = {}
        for rtype in self.library.types:
            total = 0
            if self.assignment.is_global(rtype.name):
                total += self.global_instances(rtype.name)
            for process in self.system.processes:
                total += self.local_instances(process.name, rtype.name)
            if total:
                counts[rtype.name] = total
        return counts

    def total_area(self) -> float:
        """Sum of instance counts weighted by the types' area costs."""
        return sum(
            count * self.library.type(name).area
            for name, count in self.instance_counts().items()
        )

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def grid_spacing(self, process_name: str) -> int:
        """Start-time grid of a process (eq. 3); 1 if it shares nothing."""
        return self.periods.process_grid(self.assignment, process_name)

    def validate(self) -> None:
        """Validate every block schedule and the coverage of the system."""
        for process, block in self.system.iter_blocks():
            sched = self.schedule_of(process.name, block.name)
            sched.validate()
            if sched.deadline > block.deadline:
                raise SchedulingError(
                    f"block {block.name!r} of {process.name!r} scheduled over "
                    f"{sched.deadline} steps, deadline is {block.deadline}"
                )

    def summary(self) -> str:
        """One-paragraph human-readable result summary."""
        counts = self.instance_counts()
        parts = [f"{count}x {name}" for name, count in counts.items()]
        return (
            f"system {self.system.name!r}: "
            + ", ".join(parts)
            + f"; area {self.total_area():g}"
            + (f"; {self.iterations} iterations" if self.iterations else "")
        )
