"""Static verification of system schedules.

The safety argument of the paper (§3.2) reduces to a per-slot inequality:
block start times are restricted to multiples of the process grid (eq. 2),
so at any absolute time ``u`` an active block contributes usage at the
relative step ``u - start ≡ u (mod P)``; condition C2 gives at most one
active block per process; hence the concurrent usage of a global type
never exceeds the slot-wise sum of the per-process authorizations.  The
verifier checks every link of that chain on a concrete result:

* every block schedule satisfies precedence and deadline constraints;
* authorizations dominate the folded usage of every block;
* the global pool size equals the maximum slot demand;
* local instance counts dominate every block's peak usage.

The randomized dynamic counterpart lives in :mod:`repro.sim`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..errors import VerificationError
from .modulo import modulo_max_int
from .result import SystemSchedule


@dataclass
class Check:
    """One verification check outcome."""

    name: str
    ok: bool
    detail: str = ""


@dataclass
class VerificationReport:
    """All checks performed on one system schedule."""

    checks: List[Check] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    def failures(self) -> List[Check]:
        return [check for check in self.checks if not check.ok]

    def add(self, name: str, ok: bool, detail: str = "") -> None:
        self.checks.append(Check(name=name, ok=ok, detail=detail))

    def raise_on_failure(self) -> None:
        bad = self.failures()
        if bad:
            lines = [f"{check.name}: {check.detail}" for check in bad]
            raise VerificationError("verification failed:\n" + "\n".join(lines))

    def __str__(self) -> str:
        lines = []
        for check in self.checks:
            status = "ok " if check.ok else "FAIL"
            suffix = f" ({check.detail})" if check.detail else ""
            lines.append(f"[{status}] {check.name}{suffix}")
        return "\n".join(lines)


def verify_system_schedule(result: SystemSchedule) -> VerificationReport:
    """Run all static checks; returns a report (never raises)."""
    report = VerificationReport()
    _check_blocks(result, report)
    _check_authorizations(result, report)
    _check_global_pools(result, report)
    _check_local_counts(result, report)
    return report


def verify(result: SystemSchedule) -> None:
    """Run all static checks; raise :class:`VerificationError` on failure."""
    verify_system_schedule(result).raise_on_failure()


def _check_blocks(result: SystemSchedule, report: VerificationReport) -> None:
    for process, block in result.system.iter_blocks():
        name = f"block {process.name}/{block.name}"
        try:
            sched = result.schedule_of(process.name, block.name)
            sched.validate()
        except Exception as exc:  # noqa: BLE001 - reported, not swallowed
            report.add(name, False, str(exc))
            continue
        if sched.makespan > block.deadline:
            report.add(
                name, False, f"makespan {sched.makespan} > deadline {block.deadline}"
            )
        else:
            report.add(name, True)


def _check_authorizations(result: SystemSchedule, report: VerificationReport) -> None:
    for type_name in result.assignment.global_types:
        period = result.periods.period(type_name)
        for process_name in result.assignment.group(type_name):
            auth = result.authorization(process_name, type_name)
            offset = result.offset_of(process_name) % period
            name = f"authorization {process_name}/{type_name}"
            ok = True
            detail = ""
            for block_name, sched in result.blocks_of(process_name):
                folded = modulo_max_int(sched.usage_profile(type_name), period)
                if offset:
                    folded = np.roll(folded, offset)
                over = np.flatnonzero(folded > auth)
                if over.size:
                    slot = int(over[0])
                    ok = False
                    detail = (
                        f"(type {type_name!r}, slot {slot}, processes "
                        f"{process_name}): block {block_name} usage "
                        f"{int(folded[slot])} exceeds authorization "
                        f"{int(auth[slot])}"
                    )
                    break
            report.add(name, ok, detail)


def _check_global_pools(result: SystemSchedule, report: VerificationReport) -> None:
    for type_name in result.assignment.global_types:
        demand = result.global_demand(type_name)
        instances = result.global_instances(type_name)
        name = f"global pool {type_name}"
        if demand.size and int(demand.max()) > instances:
            report.add(
                name, False, _pool_conflict_detail(result, type_name, instances)
            )
        else:
            report.add(name, True, f"pool {instances}")


def _pool_conflict_detail(
    result: SystemSchedule, type_name: str, instances: int
) -> str:
    """A pool-exceeded detail naming the ``(type, slot, processes)`` triple.

    Reuses the certifier's counterexample realization so the verifier and
    ``repro certify`` render one conflict identically.  Imported lazily:
    the certifier sits above this module in the layering.
    """
    try:
        from ..analysis.static.certifier import pool_conflict

        return pool_conflict(result, type_name, instances).render()
    except Exception:  # noqa: BLE001 - a broken detail must not mask the FAIL
        demand = result.global_demand(type_name)
        return f"slot demand {int(demand.max())} > pool {instances}"


def _check_local_counts(result: SystemSchedule, report: VerificationReport) -> None:
    for process in result.system.processes:
        for rtype in result.library.types:
            if result.assignment.shares_globally(rtype.name, process.name):
                continue
            declared = result.local_instances(process.name, rtype.name)
            peak = 0
            for _, sched in result.blocks_of(process.name):
                peak = max(peak, sched.peak_usage(rtype.name))
            name = f"local {process.name}/{rtype.name}"
            if peak > declared:
                report.add(name, False, f"peak {peak} > instances {declared}")
            elif peak:
                report.add(name, True, f"{declared} instances")
