"""Heuristic period optimization (the paper's stated current work, §8).

The paper finds periods by complete enumeration filtered through eq. 3
and names "finding the optimal periods of the global resource types
without a complete enumeration" as work in progress.  This module
implements that search as seeded local search over the candidate lattice:

1. start from the ``min-deadline`` suggestion (the paper's own choice);
2. repeatedly evaluate neighbor assignments — one type's period moved one
   step up or down its candidate list — by actually scheduling the
   system, keeping the best (area, grid) result;
3. stop when no neighbor improves or the evaluation budget is spent.

Every evaluation is cached, assignments are filtered through the same
eq. 3 rules as the enumeration, and the search is deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..ir.process import SystemSpec
from ..resources.assignment import ResourceAssignment
from ..resources.library import ResourceLibrary
from .periods import (
    PeriodAssignment,
    candidate_periods,
    is_harmonic,
    lcm_all,
    suggest_periods,
)
from .result import SystemSchedule
from .scheduler import ModuloSystemScheduler


@dataclass
class SearchOutcome:
    """Result of a period search."""

    periods: PeriodAssignment
    result: SystemSchedule
    evaluations: int
    trace: List[Tuple[Dict[str, int], float]]
    #: Neighbors skipped because their admissible area lower bound
    #: already met the incumbent area (``prune_with_bounds=True``).
    pruned: int = 0

    @property
    def area(self) -> float:
        return self.result.total_area()


def _passes_filters(
    system: SystemSpec, assignment: ResourceAssignment, periods: Dict[str, int]
) -> bool:
    for process in system.processes:
        type_names = assignment.global_types_of(process.name)
        if not type_names:
            continue
        values = [periods[name] for name in type_names]
        if not is_harmonic(values):
            return False
        if lcm_all(values) > min(b.deadline for b in process.blocks):
            return False
    return True


def optimize_periods(
    system: SystemSpec,
    library: ResourceLibrary,
    assignment: ResourceAssignment,
    *,
    budget: int = 25,
    weights: Optional[Mapping[str, float]] = None,
    prune_with_bounds: bool = False,
) -> SearchOutcome:
    """Local search for a good period assignment.

    Args:
        budget: Maximum number of scheduling evaluations.
        prune_with_bounds: Skip neighbors whose admissible area lower
            bound (:func:`repro.analysis.bounds.area_lower_bound`)
            already meets the incumbent area.  Saves evaluations
            without ever discarding an area improvement; off by
            default because the tie-break on equal-area neighbors
            (finer start grids) can no longer inspect skipped ones.

    Returns:
        The best assignment found, its schedule, and the search trace.
    """
    global_types = assignment.global_types
    candidates = {
        name: candidate_periods(system, assignment, name) for name in global_types
    }
    scheduler = ModuloSystemScheduler(library, weights=weights)
    cache: Dict[Tuple[int, ...], SystemSchedule] = {}
    trace: List[Tuple[Dict[str, int], float]] = []
    pruned = 0

    def evaluate(periods: Dict[str, int]) -> Optional[SystemSchedule]:
        key = tuple(periods[name] for name in global_types)
        if key in cache:
            return cache[key]
        if len(cache) >= budget:
            return None
        result = scheduler.schedule(
            system, assignment, PeriodAssignment(dict(periods))
        )
        cache[key] = result
        trace.append((dict(periods), result.total_area()))
        return result

    current = suggest_periods(system, assignment, strategy="min-deadline").as_dict
    best_result = evaluate(current)
    assert best_result is not None  # first evaluation is within any budget

    improved = True
    while improved:
        improved = False
        for name in global_types:
            options = candidates[name]
            index = options.index(current[name]) if current[name] in options else None
            neighbor_indexes = []
            if index is None:
                neighbor_indexes = list(range(len(options)))
            else:
                if index > 0:
                    neighbor_indexes.append(index - 1)
                if index + 1 < len(options):
                    neighbor_indexes.append(index + 1)
            for neighbor_index in neighbor_indexes:
                neighbor = dict(current)
                neighbor[name] = options[neighbor_index]
                if not _passes_filters(system, assignment, neighbor):
                    continue
                if prune_with_bounds and tuple(
                    neighbor[n] for n in global_types
                ) not in cache:
                    from ..analysis.bounds import area_lower_bound

                    bound = area_lower_bound(
                        system,
                        library,
                        assignment,
                        PeriodAssignment(dict(neighbor)),
                    )
                    if bound >= best_result.total_area():
                        pruned += 1
                        continue
                result = evaluate(neighbor)
                if result is None:
                    break  # budget exhausted
                if _better(result, best_result):
                    best_result = result
                    current = neighbor
                    improved = True
    best_periods = PeriodAssignment(
        {name: best_result.periods.period(name) for name in global_types}
    )
    return SearchOutcome(
        periods=best_periods,
        result=best_result,
        evaluations=len(cache),
        trace=trace,
        pruned=pruned,
    )


def _better(candidate: SystemSchedule, incumbent: SystemSchedule) -> bool:
    """Primary: smaller area.  Tie-break: finer start grids (reactivity)."""
    ca, ia = candidate.total_area(), incumbent.total_area()
    if ca != ia:
        return ca < ia
    c_grid = sum(
        candidate.grid_spacing(p.name) for p in candidate.system.processes
    )
    i_grid = sum(
        incumbent.grid_spacing(p.name) for p in incumbent.system.processes
    )
    return c_grid < i_grid
