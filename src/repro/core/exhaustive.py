"""Exhaustive interleaving verification for small systems.

The simulator samples random activations; this module *enumerates* them.
Because every block start is grid-aligned and every usage profile is
finite, the concurrent usage of the whole system is determined by, per
process, (a) which block is active and (b) the start phase modulo the
hyperperiod.  Checking every combination of block choice and phase over
one hyperperiod therefore covers **all** reachable interleavings — if no
combination exceeds a pool, no execution ever will.

The combination count is ``prod_p (#blocks_p * grid_p + 1)`` (the ``+1``
is the idle choice, subsumed by smaller usage but kept implicitly), so
this is for small systems and unit tests; the randomized simulator covers
the large ones.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import VerificationError
from .periods import lcm_all
from .result import SystemSchedule


@dataclass
class ExhaustiveReport:
    """Outcome of the exhaustive interleaving check."""

    combinations: int
    hyperperiod: int
    worst_usage: Dict[str, int]
    pools: Dict[str, int]
    violation: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.violation is None

    def raise_on_failure(self) -> None:
        if self.violation is not None:
            raise VerificationError(self.violation)


def _worst_case_profiles(result: SystemSchedule):
    """Per process: list of (block name, per-type worst-case usage rows)."""
    per_process = {}
    for process in result.system.processes:
        entries = []
        for block in process.blocks:
            sched = result.schedule_of(process.name, block.name)
            profiles = {}
            for rtype in result.library.types_used_by(block.graph):
                profiles[rtype.name] = sched.usage_profile(rtype.name)
            entries.append((block.name, profiles))
        per_process[process.name] = entries
    return per_process


def exhaustive_interleaving_check(
    result: SystemSchedule, *, max_combinations: int = 250_000
) -> ExhaustiveReport:
    """Enumerate every block/phase combination and check the pools.

    Args:
        result: The schedule to verify.
        max_combinations: Guard against combinatorial blow-up; exceeding
            it raises :class:`VerificationError` (use the simulator then).

    Returns:
        A report with the worst concurrent usage observed per type; its
        ``violation`` names the first combination exceeding a pool.
    """
    processes = result.system.processes
    grids = {p.name: max(1, result.grid_spacing(p.name)) for p in processes}
    offsets = {p.name: result.offset_of(p.name) for p in processes}
    hyperperiod = lcm_all(grids.values())
    profiles = _worst_case_profiles(result)
    pools = result.instance_counts()

    choices: List[List[Optional[Tuple[str, int, Dict[str, np.ndarray]]]]] = []
    total = 1
    for process in processes:
        options: List[Optional[Tuple[str, int, Dict[str, np.ndarray]]]] = [None]
        for block_name, block_profiles in profiles[process.name]:
            for phase in range(
                offsets[process.name] % grids[process.name],
                hyperperiod,
                grids[process.name],
            ):
                options.append((block_name, phase, block_profiles))
        total *= len(options)
        choices.append(options)
    if total > max_combinations:
        raise VerificationError(
            f"exhaustive check needs {total} combinations "
            f"(limit {max_combinations}); use the randomized simulator"
        )

    type_names = list(pools)
    horizon = hyperperiod + max(
        (sched.deadline for sched in result.block_schedules.values()), default=1
    )
    worst: Dict[str, int] = {name: 0 for name in type_names}
    violation: Optional[str] = None

    for combo in itertools.product(*choices):
        usage = {name: np.zeros(horizon, dtype=int) for name in type_names}
        for option in combo:
            if option is None:
                continue
            __, phase, block_profiles = option
            for type_name, profile in block_profiles.items():
                end = phase + profile.size
                usage[type_name][phase:end] += profile
        for type_name in type_names:
            peak = int(usage[type_name].max())
            worst[type_name] = max(worst[type_name], peak)
            if violation is None and peak > pools.get(type_name, 0):
                described = [
                    f"{processes[i].name}:{opt[0]}@{opt[1]}"
                    for i, opt in enumerate(combo)
                    if opt is not None
                ]
                violation = (
                    f"{type_name}: usage {peak} exceeds pool "
                    f"{pools.get(type_name, 0)} under {{{', '.join(described)}}}"
                )

    return ExhaustiveReport(
        combinations=total,
        hyperperiod=hyperperiod,
        worst_usage=worst,
        pools=dict(pools),
        violation=violation,
    )
