"""Step (S2): periodicity of global resource types (§3.2, eqs. 2-3).

Every global resource type ``k`` gets a period ``P_k``.  A block using
global types may then start only on an equidistant grid: movements by
multiples of ``lcm{P_k}`` over the types the block uses keep the schedule
valid (eq. 2), so the grid spacing of a process ``p`` is taken over all of
its global types, ``g_p = lcm{P_k : k in G_p}`` (eq. 3).

The period choice is twofold (§3.2): larger periods let more processes
share one instance, but coarsen the start grid and may lengthen the
invocation interval of critical loops.  The paper enumerates candidate
period sets by permutation and filters them through eq. 3; this module
implements that enumeration plus the heuristic selection the paper lists
as current work.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..errors import PeriodError
from ..ir.process import SystemSpec
from ..resources.assignment import ResourceAssignment


def lcm_all(values: Iterable[int]) -> int:
    """Least common multiple of the values (1 for an empty iterable)."""
    result = 1
    for value in values:
        result = result * value // math.gcd(result, value)
    return result


def divisors(value: int) -> List[int]:
    """All positive divisors of ``value`` in ascending order."""
    if value < 1:
        raise PeriodError(f"divisors of non-positive value {value}")
    small, large = [], []
    for d in range(1, int(math.isqrt(value)) + 1):
        if value % d == 0:
            small.append(d)
            if d != value // d:
                large.append(value // d)
    return small + large[::-1]


def is_harmonic(periods: Sequence[int]) -> bool:
    """Whether the periods form a divisor chain (each divides the next).

    Harmonic period sets keep the combined grid spacing equal to the
    largest period instead of an inflated lcm — the practically useful
    subset of eq. 3's compliance condition.
    """
    ordered = sorted(periods)
    return all(ordered[i + 1] % ordered[i] == 0 for i in range(len(ordered) - 1))


class PeriodAssignment:
    """Periods for every globally assigned resource type."""

    def __init__(self, periods: Mapping[str, int]) -> None:
        self._periods: Dict[str, int] = {}
        for name, period in periods.items():
            if period < 1:
                raise PeriodError(f"type {name!r}: period must be >= 1, got {period}")
            self._periods[name] = int(period)

    def period(self, type_name: str) -> int:
        try:
            return self._periods[type_name]
        except KeyError:
            raise PeriodError(f"no period assigned to type {type_name!r}") from None

    def __contains__(self, type_name: str) -> bool:
        return type_name in self._periods

    @property
    def as_dict(self) -> Dict[str, int]:
        return dict(self._periods)

    def grid_spacing(self, type_names: Iterable[str]) -> int:
        """Grid spacing over a set of global types (eq. 2/3): lcm of periods."""
        return lcm_all(self.period(name) for name in type_names)

    def validate(self, assignment: ResourceAssignment) -> None:
        """Every global type needs a period; no period for local types."""
        for type_name in assignment.global_types:
            if type_name not in self._periods:
                raise PeriodError(f"global type {type_name!r} has no period")
        for type_name in self._periods:
            if not assignment.is_global(type_name):
                raise PeriodError(
                    f"period assigned to non-global type {type_name!r}"
                )

    def process_grid(self, assignment: ResourceAssignment, process_name: str) -> int:
        """Start-time grid spacing of one process (the paper's ``g_p``)."""
        return self.grid_spacing(assignment.global_types_of(process_name))

    def __repr__(self) -> str:
        return f"PeriodAssignment({self._periods})"


def _deadlines_of_group(
    system: SystemSpec, assignment: ResourceAssignment, type_name: str
) -> List[int]:
    deadlines: List[int] = []
    for process_name in assignment.group(type_name):
        for block in system.process(process_name).blocks:
            deadlines.append(block.deadline)
    return deadlines


def candidate_periods(
    system: SystemSpec, assignment: ResourceAssignment, type_name: str
) -> List[int]:
    """Candidate periods for one global type.

    Determined by the timing constraints of the sharing processes: the
    divisors of the group's block deadlines, capped at the smallest
    deadline so that every sharing block folds at least once.
    """
    deadlines = _deadlines_of_group(system, assignment, type_name)
    if not deadlines:
        raise PeriodError(f"type {type_name!r} has an empty process group")
    cap = min(deadlines)
    candidates = sorted(
        {d for deadline in deadlines for d in divisors(deadline) if d <= cap}
    )
    return candidates


def estimate_enumeration_size(
    system: SystemSpec, assignment: ResourceAssignment
) -> int:
    """Size of the unfiltered permutation space (the paper's §6 bound).

    The product of the candidate-list lengths over all global types;
    typically most combinations are filtered out by the eq. 3 rules
    before any scheduling happens.
    """
    total = 1
    for type_name in assignment.global_types:
        total *= len(candidate_periods(system, assignment, type_name))
    return total


def enumerate_period_assignments(
    system: SystemSpec,
    assignment: ResourceAssignment,
    *,
    harmonic: bool = True,
    max_grid: Optional[int] = None,
    limit: int = 10000,
) -> List[PeriodAssignment]:
    """Enumerate candidate period assignments (the paper's permutation).

    Args:
        harmonic: Keep only assignments whose periods are, per process, a
            divisor chain (the eq. 3 filter).
        max_grid: Keep only assignments whose per-process grid spacing does
            not exceed this bound (defaults to the process's smallest block
            deadline, so a process is never frozen longer than one of its
            blocks runs).
        limit: Safety cap on the number of enumerated combinations.

    Returns:
        The surviving assignments, deterministic order.
    """
    global_types = assignment.global_types
    if not global_types:
        return [PeriodAssignment({})]
    candidate_lists = [
        candidate_periods(system, assignment, name) for name in global_types
    ]
    total = 1
    for candidates in candidate_lists:
        total *= len(candidates)
    if total > limit:
        raise PeriodError(
            f"period enumeration would produce {total} combinations "
            f"(limit {limit}); restrict candidates or raise the limit"
        )
    results: List[PeriodAssignment] = []
    for combo in itertools.product(*candidate_lists):
        periods = PeriodAssignment(dict(zip(global_types, combo)))
        if _passes_filters(system, assignment, periods, harmonic, max_grid):
            results.append(periods)
    return results


def enumerate_period_assignments_capped(
    system: SystemSpec,
    assignment: ResourceAssignment,
    *,
    harmonic: bool = True,
    max_grid: Optional[int] = None,
    limit: int = 10000,
) -> Tuple[List[PeriodAssignment], int]:
    """Enumerate candidates, truncating instead of raising at ``limit``.

    Like :func:`enumerate_period_assignments`, but when the space is
    larger than ``limit`` *surviving* candidates the enumeration stops
    there and reports how much was left unexplored, so callers can
    surface the truncation instead of silently (or fatally) capping.

    Returns:
        ``(assignments, dropped)`` where ``dropped`` counts the raw
        period combinations never examined (0 when the enumeration
        completed).  Deterministic prefix of the full enumeration order.
    """
    global_types = assignment.global_types
    if not global_types:
        return [PeriodAssignment({})], 0
    candidate_lists = [
        candidate_periods(system, assignment, name) for name in global_types
    ]
    total = 1
    for candidates in candidate_lists:
        total *= len(candidates)
    results: List[PeriodAssignment] = []
    examined = 0
    for combo in itertools.product(*candidate_lists):
        if len(results) >= limit:
            break
        examined += 1
        periods = PeriodAssignment(dict(zip(global_types, combo)))
        if _passes_filters(system, assignment, periods, harmonic, max_grid):
            results.append(periods)
    return results, total - examined


def _passes_filters(
    system: SystemSpec,
    assignment: ResourceAssignment,
    periods: PeriodAssignment,
    harmonic: bool,
    max_grid: Optional[int],
) -> bool:
    for process in system.processes:
        type_names = assignment.global_types_of(process.name)
        if not type_names:
            continue
        values = [periods.period(name) for name in type_names]
        if harmonic and not is_harmonic(values):
            return False
        grid = lcm_all(values)
        bound = max_grid
        if bound is None:
            bound = min(block.deadline for block in process.blocks)
        if grid > bound:
            return False
    return True


def suggest_periods(
    system: SystemSpec,
    assignment: ResourceAssignment,
    *,
    strategy: str = "min-deadline",
) -> PeriodAssignment:
    """Heuristic period selection without complete enumeration.

    Strategies:

    * ``"min-deadline"`` — period of each global type = smallest block
      deadline among the sharing processes (maximal folding while every
      sharing block still spans at least one full period; this reproduces
      the paper's choice of 15 for deadlines 30/30/25/15/15).
    * ``"gcd"`` — greatest common divisor of the group's block deadlines
      (finest grid that divides every deadline).
    """
    periods: Dict[str, int] = {}
    for type_name in assignment.global_types:
        deadlines = _deadlines_of_group(system, assignment, type_name)
        if not deadlines:
            raise PeriodError(f"type {type_name!r} has an empty process group")
        if strategy == "min-deadline":
            periods[type_name] = min(deadlines)
        elif strategy == "gcd":
            periods[type_name] = math.gcd(*deadlines) if len(deadlines) > 1 else deadlines[0]
        else:
            raise PeriodError(f"unknown period strategy {strategy!r}")
    return PeriodAssignment(periods)
