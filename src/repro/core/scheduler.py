"""Step (S3): coupled modified IFDS over all blocks of the system (§5).

All blocks of all processes are scheduled *simultaneously*: a partial
solution is the set of time frames of every operation in the system, and
each iteration performs one IFDS gradual frame reduction somewhere in the
system.  The force of a tentative placement combines:

* for **local** resource types — the classic weighted Hooke force on the
  block's own distribution graph (eqs. 4-6);
* for **global** resource types — the force on the *balanced system
  distribution*: the block's displaced distribution is modulo-max
  transformed (eq. 7, §5.1 periodical alignment), maximized with the
  other blocks of the same process (eq. 9) and summed over the sharing
  processes (§5.2 global balancing).  Displacements hidden below a slot
  maximum cost nothing, which aligns operations of a global type onto the
  already-authorized period slots.

Both modification parts can be disabled independently for ablations.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..errors import SchedulingError
from ..ir.process import Block, Process, SystemSpec
from ..obs import SCHEDULER_ITERATIONS, as_tracer, get_logger
from ..resources.assignment import ResourceAssignment
from ..resources.library import ResourceLibrary
from ..scheduling.forces import DEFAULT_LOOKAHEAD, hooke_force
from ..scheduling.schedule import BlockSchedule
from ..scheduling.state import BlockState
from .modulo import modulo_max
from .periods import PeriodAssignment
from .result import SystemSchedule

_log = get_logger(__name__)


@dataclass
class _Entry:
    """One block being scheduled, with its system coordinates."""

    process_name: str
    block: Block
    state: BlockState


class ModuloSystemScheduler:
    """Time-constrained modulo scheduling with global resource sharing.

    Args:
        library: Resource library (latencies, occupancies, areas).
        lookahead: Paulin look-ahead fraction (classic 1/3).
        weights: Per-type spring-constant weights; ``None`` means 1.0
            everywhere (pass :func:`repro.scheduling.area_weights` for
            Verhaegh's global spring constants).
        periodical_alignment: Enable modification part 1 (§5.1).  When
            disabled, global types are treated like local ones during force
            evaluation (instance counts are still derived globally).
        global_balancing: Enable modification part 2 (§5.2).  Only
            meaningful while alignment is enabled.
        tracer: Observability sink (:class:`repro.obs.Tracer`); the
            default no-op tracer records nothing and costs nothing.
    """

    def __init__(
        self,
        library: ResourceLibrary,
        *,
        lookahead: float = DEFAULT_LOOKAHEAD,
        weights: Optional[Mapping[str, float]] = None,
        periodical_alignment: bool = True,
        global_balancing: bool = True,
        tracer=None,
    ) -> None:
        self.library = library
        self.lookahead = lookahead
        self.weights = dict(weights) if weights is not None else None
        self.periodical_alignment = periodical_alignment
        self.global_balancing = global_balancing
        self.tracer = as_tracer(tracer)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def schedule(
        self,
        system: SystemSpec,
        assignment: ResourceAssignment,
        periods: Optional[PeriodAssignment] = None,
        *,
        tracer=None,
    ) -> SystemSchedule:
        """Schedule the whole system; returns a validated result.

        ``periods`` may be omitted only when the assignment declares no
        global types (the traditional baseline).  ``tracer`` overrides
        the scheduler-level tracer for this one run.
        """
        if periods is None:
            if assignment.global_types:
                raise SchedulingError(
                    "a PeriodAssignment is required when global types exist"
                )
            periods = PeriodAssignment({})
        tracer = self.tracer if tracer is None else as_tracer(tracer)
        with tracer.activate(), tracer.span(
            "schedule", system=system.name, blocks=sum(1 for _ in system.iter_blocks())
        ):
            return self._schedule_traced(system, assignment, periods, tracer)

    def _schedule_traced(
        self,
        system: SystemSpec,
        assignment: ResourceAssignment,
        periods: PeriodAssignment,
        tracer,
    ) -> SystemSchedule:
        started = time.perf_counter()
        _log.debug(
            "scheduling system %r: %d operations, %d global types",
            system.name,
            system.operation_count,
            len(assignment.global_types),
        )
        with tracer.span("setup"):
            assignment.validate(system)
            periods.validate(assignment)
            system.validate(self.library.latency_of)
            entries = [
                _Entry(process.name, block, BlockState(block, self.library))
                for process, block in system.iter_blocks()
            ]
            coupling = _GlobalCoupling(entries, assignment, periods)
        setup_done = time.perf_counter()

        iterations = 0
        with tracer.span("reduction_loop"):
            while True:
                best = self._select_reduction(entries, coupling)
                if best is None:
                    break
                iterations += 1
                entry_index, op_id, shrink_low, score, candidates = best
                entry = entries[entry_index]
                lo, hi = entry.state.frames.frame(op_id)
                if shrink_low:
                    touched = entry.state.commit_reduce(op_id, lo + 1, hi)
                else:
                    touched = entry.state.commit_reduce(op_id, lo, hi - 1)
                coupling.refresh(entry_index, touched)
                if tracer.enabled:
                    tracer.count(SCHEDULER_ITERATIONS)
                    tracer.event(
                        "reduction",
                        iteration=iterations,
                        process=entry.process_name,
                        block=entry.block.name,
                        op=op_id,
                        side="low" if shrink_low else "high",
                        score=round(score, 9),
                        candidates=candidates,
                        frames_remaining=sum(
                            len(e.state.frames.unfixed()) for e in entries
                        ),
                    )
        loop_done = time.perf_counter()

        with tracer.span("finalization"):
            block_schedules: Dict[Tuple[str, str], BlockSchedule] = {}
            for entry in entries:
                sched = BlockSchedule(
                    graph=entry.block.graph,
                    library=self.library,
                    starts=entry.state.frames.as_schedule(),
                    deadline=entry.block.deadline,
                )
                sched.validate()
                block_schedules[(entry.process_name, entry.block.name)] = sched

            finished = time.perf_counter()
            result = SystemSchedule(
                system=system,
                library=self.library,
                assignment=assignment,
                periods=periods,
                block_schedules=block_schedules,
                iterations=iterations,
                wall_time=finished - started,
                telemetry={
                    "phase_times": {
                        "setup": setup_done - started,
                        "reduction_loop": loop_done - setup_done,
                        "finalization": finished - loop_done,
                    },
                    "wall_time": finished - started,
                    "iterations": iterations,
                    "counters": (
                        tracer.counters.as_dict() if tracer.enabled else {}
                    ),
                    "events": len(tracer.events) if tracer.enabled else 0,
                },
            )
            result.validate()
        if _log.isEnabledFor(logging.INFO):
            _log.info(
                "scheduled system %r: %d iterations in %.3f s, area %g",
                system.name,
                iterations,
                result.wall_time,
                result.total_area(),
            )
        return result

    # ------------------------------------------------------------------
    # Force evaluation
    # ------------------------------------------------------------------
    def _select_reduction(
        self, entries: List[_Entry], coupling: "_GlobalCoupling"
    ) -> Optional[Tuple[int, str, bool, float, int]]:
        """Pick the IFDS reduction with the largest weighted force difference.

        Returns ``(entry_index, op_id, shrink_low, score, candidates)``
        where ``candidates`` is the number of mobile operations examined,
        or ``None`` once every frame has collapsed.
        """
        best_score = None
        best: Optional[Tuple[int, str, bool]] = None
        candidates = 0
        for index, entry in enumerate(entries):
            for op_id in entry.state.frames.unfixed():
                candidates += 1
                lo, hi = entry.state.frames.frame(op_id)
                force_low = self._placement_force(index, entry, coupling, op_id, lo)
                force_high = self._placement_force(index, entry, coupling, op_id, hi)
                eta = 1.0 if hi - lo + 1 <= 2 else 0.5
                score = eta * abs(force_low - force_high)
                if best_score is None or score > best_score + 1e-12:
                    best_score = score
                    best = (index, op_id, force_low > force_high + 1e-12)
        if best is None:
            return None
        assert best_score is not None
        return best + (best_score, candidates)

    def _placement_force(
        self,
        entry_index: int,
        entry: _Entry,
        coupling: "_GlobalCoupling",
        op_id: str,
        start: int,
    ) -> float:
        """Modified force F' (§5.3) of tentatively placing ``op_id`` at ``start``."""
        total = 0.0
        for type_name, delta in entry.state.placement_deltas(op_id, start).items():
            weight = (
                1.0 if self.weights is None else float(self.weights.get(type_name, 1.0))
            )
            shared = coupling.is_shared(entry.process_name, type_name)
            if shared and self.periodical_alignment:
                total += weight * self._global_force(
                    entry_index, entry, coupling, type_name, delta
                )
            else:
                total += weight * hooke_force(
                    entry.state.dist.array(type_name), delta, self.lookahead
                )
        return total

    def _global_force(
        self,
        entry_index: int,
        entry: _Entry,
        coupling: "_GlobalCoupling",
        type_name: str,
        delta: np.ndarray,
    ) -> float:
        period = coupling.period(type_name)
        displaced = entry.state.dist.array(type_name) + delta
        q_new = modulo_max(displaced, period)
        if not self.global_balancing:
            q_old = coupling.block_q(entry_index, type_name)
            return hooke_force(q_old, q_new - q_old, self.lookahead)
        others = coupling.other_blocks_max(entry_index, type_name)
        m_new = np.maximum(others, q_new)
        m_old = coupling.process_max(entry.process_name, type_name)
        delta_s = m_new - m_old
        return hooke_force(
            coupling.system_distribution(type_name), delta_s, self.lookahead
        )


class _GlobalCoupling:
    """Modulo-transformed and balanced distributions of all global types.

    Maintains, per (block, global type), the block's modulo-max transform
    ``Q`` (eq. 7); per (process, type) the block maximum ``M`` (eq. 9); and
    per type the system sum ``S`` over the sharing group (§5.2).
    """

    def __init__(
        self,
        entries: List[_Entry],
        assignment: ResourceAssignment,
        periods: PeriodAssignment,
    ) -> None:
        self.entries = entries
        self.assignment = assignment
        self.periods = periods
        self._q: Dict[Tuple[int, str], np.ndarray] = {}
        self._m: Dict[Tuple[str, str], np.ndarray] = {}
        self._s: Dict[str, np.ndarray] = {}
        for index, entry in enumerate(entries):
            for type_name in self._shared_types(entry):
                self._q[(index, type_name)] = self._fold(index, type_name)
        for type_name in assignment.global_types:
            for process_name in assignment.group(type_name):
                self._rebuild_process(process_name, type_name)
            self._rebuild_system(type_name)

    # -- queries --------------------------------------------------------
    def period(self, type_name: str) -> int:
        return self.periods.period(type_name)

    def is_shared(self, process_name: str, type_name: str) -> bool:
        return self.assignment.shares_globally(type_name, process_name)

    def block_q(self, entry_index: int, type_name: str) -> np.ndarray:
        key = (entry_index, type_name)
        if key not in self._q:
            self._q[key] = self._fold(entry_index, type_name)
        return self._q[key]

    def process_max(self, process_name: str, type_name: str) -> np.ndarray:
        return self._m[(process_name, type_name)]

    def system_distribution(self, type_name: str) -> np.ndarray:
        return self._s[type_name]

    def other_blocks_max(self, entry_index: int, type_name: str) -> np.ndarray:
        """Max of the sibling blocks' Q arrays (eq. 9 without this block)."""
        process_name = self.entries[entry_index].process_name
        period = self.period(type_name)
        result = np.zeros(period, dtype=float)
        for index, entry in enumerate(self.entries):
            if index == entry_index or entry.process_name != process_name:
                continue
            if type_name in entry.state.dist.type_names:
                np.maximum(result, self.block_q(index, type_name), out=result)
        return result

    # -- updates ---------------------------------------------------------
    def refresh(self, entry_index: int, touched_types) -> None:
        """Re-fold after a committed reduction changed some distributions."""
        entry = self.entries[entry_index]
        for type_name in touched_types:
            if not self.is_shared(entry.process_name, type_name):
                continue
            self._q[(entry_index, type_name)] = self._fold(entry_index, type_name)
            self._rebuild_process(entry.process_name, type_name)
            self._rebuild_system(type_name)

    # -- internals --------------------------------------------------------
    def _shared_types(self, entry: _Entry) -> List[str]:
        return [
            type_name
            for type_name in entry.state.dist.type_names
            if self.is_shared(entry.process_name, type_name)
        ]

    def _fold(self, entry_index: int, type_name: str) -> np.ndarray:
        entry = self.entries[entry_index]
        period = self.period(type_name)
        if type_name not in entry.state.dist.type_names:
            return np.zeros(period, dtype=float)
        return modulo_max(entry.state.dist.array(type_name), period)

    def _rebuild_process(self, process_name: str, type_name: str) -> None:
        period = self.period(type_name)
        result = np.zeros(period, dtype=float)
        for index, entry in enumerate(self.entries):
            if entry.process_name != process_name:
                continue
            if type_name in entry.state.dist.type_names:
                np.maximum(result, self.block_q(index, type_name), out=result)
        self._m[(process_name, type_name)] = result

    def _rebuild_system(self, type_name: str) -> None:
        period = self.period(type_name)
        result = np.zeros(period, dtype=float)
        for process_name in self.assignment.group(type_name):
            result += self._m[(process_name, type_name)]
        self._s[type_name] = result
