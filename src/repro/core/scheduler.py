"""Step (S3): coupled modified IFDS over all blocks of the system (§5).

All blocks of all processes are scheduled *simultaneously*: a partial
solution is the set of time frames of every operation in the system, and
each iteration performs one IFDS gradual frame reduction somewhere in the
system.  The force of a tentative placement combines:

* for **local** resource types — the classic weighted Hooke force on the
  block's own distribution graph (eqs. 4-6);
* for **global** resource types — the force on the *balanced system
  distribution*: the block's displaced distribution is modulo-max
  transformed (eq. 7, §5.1 periodical alignment), maximized with the
  other blocks of the same process (eq. 9) and summed over the sharing
  processes (§5.2 global balancing).  Displacements hidden below a slot
  maximum cost nothing, which aligns operations of a global type onto the
  already-authorized period slots.

Both modification parts can be disabled independently for ablations.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..errors import SchedulingError
from ..ir.process import Block, Process, SystemSpec
from ..obs import FORCE_EVALUATIONS, SCHEDULER_ITERATIONS, as_tracer, get_logger
from ..obs.audit import (
    CACHE_ASSEMBLED,
    CACHE_FRESH,
    CACHE_HIT,
    CACHE_UNCACHED,
    CandidateAudit,
    DecisionAudit,
)
from ..obs.counters import (
    AUDIT_DECISIONS,
    FORCE_CACHE_ASSEMBLIES,
    FORCE_CACHE_HITS,
    FORCE_CACHE_MISSES,
    SELECTION_RESCORED,
    SELECTION_SKIPPED,
    count,
)
from ..obs.events import EVENT_COMMIT, EVENT_DEGRADE, EVENT_REDUCTION
from ..obs.metrics import (
    CANDIDATES_SCANNED,
    FRAMES_REMAINING,
    REDUCTION_SCORE,
    SELECT_SECONDS,
)
from ..resources.assignment import ResourceAssignment
from ..resources.library import ResourceLibrary
from ..scheduling.fallback import degraded_block_schedule, frames_state_hash
from ..scheduling.forces import DEFAULT_LOOKAHEAD, force_from_deltas, hooke_force
from ..scheduling.kernels import (
    DeltaBatch,
    guarded_footprint_ops,
    row_dots,
    row_self_dots,
)
from ..scheduling.schedule import BlockSchedule
from ..scheduling.scoreboard import SelectionScoreboard, prefix_maxima_positions
from ..scheduling.selection_cache import BlockSelectionCache
from ..scheduling.state import BlockState, ReductionEffect
from ..validation.budget import RunBudget
from .modulo import modulo_max, modulo_max_rows
from .periods import PeriodAssignment
from .result import SystemSchedule

_log = get_logger(__name__)


@dataclass
class _Entry:
    """One block being scheduled, with its system coordinates.

    ``scalar_ops`` (kernel mode only) holds the operations whose force
    footprint contains a guarded type; they always evaluate through the
    scalar reference machinery, in both kernel and scalar modes.
    """

    process_name: str
    block: Block
    state: BlockState
    scalar_ops: frozenset = frozenset()
    #: ``(frames.version(), hash)`` memo for ``_system_state_hash``; the
    #: frame version pins exactly when the hash can be reused.
    hash_memo: Optional[Tuple[int, int]] = None


class _CachedScore:
    """Memoized selection forces of one operation at both frame ends.

    ``terms_*`` hold the *force recipe* of each tentative placement: an
    ordered list of per-type terms in which purely-local types are frozen
    scalars and globally balanced types keep their system displacement
    ``delta_S`` (eq. 9 minus the old process maximum).  The recipe stays
    valid as long as the op's own block and its same-process siblings are
    untouched; when only the system distribution ``S`` moved (a commit in
    *another* process), the final force is re-assembled from the recipe
    with two period-length dot products instead of a full re-evaluation.
    ``terms_* is None`` marks a purely-local placement whose force is
    constant until invalidated.
    """

    __slots__ = (
        "force_low",
        "force_high",
        "terms_low",
        "terms_high",
        "global_types",
        "versions",
    )

    def __init__(self, force_low, force_high, terms_low, terms_high, global_types, versions):
        self.force_low = force_low
        self.force_high = force_high
        self.terms_low = terms_low
        self.terms_high = terms_high
        self.global_types = global_types
        self.versions = versions


#: Marker stored in a :class:`BlockSelectionCache` for operations whose
#: selection state lives in the :class:`_SystemKernel` flat arrays.  The
#: cache keeps exactly one entry per evaluated operation either way, so
#: hit/miss/invalidation accounting is identical to the scalar mode.
_KERNEL_EVALUATED = object()


class _SystemKernel:
    """Persistent array-backed selection engine (kernel mode).

    Replaces the per-candidate scalar fold of
    :meth:`ModuloSystemScheduler._select_reduction` with flat
    system-wide arrays.  Every operation owns one *slot*, and each of
    its two frame-end forces is decomposed as::

        force = const + sum over balanced types T of (w * delta_S_T) . S_T

    ``const`` freezes everything independent of the system distribution
    ``S`` — local and unbalanced Hooke terms plus the
    ``alpha * delta_S . delta_S`` look-ahead parts — while the
    pre-weighted ``w * delta_S`` vectors live as rows of one per-type
    matrix ``G`` (row 0 is a permanent all-zero sentinel for slots that
    do not touch the type).  A scan is then three vectorized steps:

    * types whose ``S`` moved re-dot their whole ``G`` matrix against
      the new ``S`` in one matrix–vector product;
    * every slot's forces refold as ``const + gathered dots``;
    * scores ``eta * |F_low - F_high|`` come from one gathered
      elementwise pass, folded in scan order with the scalar epsilons.

    Only invalidated operations do real work: their frame-end deltas are
    built in one :class:`~repro.scheduling.kernels.DeltaBatch` per block
    and folded per displaced type with batched matrix products.

    Parity with the scalar scan is kept exactly where it is observable:
    the per-block :class:`BlockSelectionCache` stores one marker per
    evaluated operation (hits, misses, invalidations, and dirty-set
    sizes are unchanged); the staleness mask counts one
    ``force_cache_assemblies`` per cached operation whose folded force
    predates an ``S`` bump of a type it touches — the same set the
    scalar version-tuple comparison re-assembles; and operations with a
    guarded force footprint keep using the scalar :class:`_CachedScore`
    machinery in both modes.  Decision parity is pinned by
    ``tests/core/test_kernel_parity.py``.
    """

    def __init__(
        self,
        scheduler: "ModuloSystemScheduler",
        entries: List[_Entry],
        coupling: "_GlobalCoupling",
        caches: List[BlockSelectionCache],
    ) -> None:
        self.scheduler = scheduler
        self.entries = entries
        self.coupling = coupling
        self.caches = caches
        self.lookahead = scheduler.lookahead
        self.weights = scheduler.weights
        self.alignment = scheduler.periodical_alignment
        self.balancing = scheduler.global_balancing

        self.slot_of: List[Dict[str, int]] = []
        n = 0
        for entry in entries:
            mapping: Dict[str, int] = {}
            for op_id in entry.state.graph.op_ids:
                mapping[op_id] = n
                n += 1
            self.slot_of.append(mapping)
        self.n_slots = n
        # Row 0 holds the low frame end, row 1 the high end: fusing the
        # two sides into (2, n) arrays halves the per-scan numpy call
        # count of the refold/gather phases.
        self._const = np.zeros((2, n), dtype=float)
        self._eta = np.ones(n, dtype=float)
        self._fold_stamp = np.zeros(n, dtype=np.int64)
        self._force = np.empty((2, n), dtype=float)
        # Balanced types currently holding a G row for each slot's two
        # sides, so a re-evaluation can free exactly its own rows.
        self._assigned_low: List[Tuple[str, ...]] = [()] * n
        self._assigned_high: List[Tuple[str, ...]] = [()] * n
        self._scan_no = 0

        # Per-entry candidate lists persist between scans; a commit only
        # perturbs the committed entry (and, for a non-clean scope, its
        # same-process siblings), which :meth:`note_commit` marks dirty.
        # Clean entries skip classification wholesale: their candidates,
        # guarded jobs, and hit totals are unchanged by construction.
        self._dirty: List[bool] = [True] * len(entries)
        self._cand_ops: List[List[str]] = [[] for _ in entries]
        self._cand_slots: List[np.ndarray] = [
            np.empty(0, dtype=np.intp) for _ in entries
        ]
        self._guarded_jobs: List[List[Tuple[str, int]]] = [[] for _ in entries]
        self._hit_counts: List[int] = [0] * len(entries)
        # Scoreboard mode: persistent per-entry incumbents (see
        # repro.scheduling.scoreboard); only the commit's dirty cone is
        # rescored per scan, everything else folds from the records.
        self.scoreboard = (
            SelectionScoreboard(len(entries))
            if scheduler.use_scoreboard
            else None
        )
        self._dirty_set = set(range(len(entries)))
        # Per-entry staleness-active slots (mobile, non-guarded) and the
        # candidate-list positions of the guarded jobs, rebuilt whenever
        # the entry is reclassified.
        self._entry_act: List[np.ndarray] = [
            np.empty(0, dtype=np.intp) for _ in entries
        ]
        self._guarded_pos: List[List[Tuple[str, int, int]]] = [
            [] for _ in entries
        ]
        # Balanced types holding a G row among each entry's act slots —
        # the act-derived half of its record's ``touched_types``.  Kept
        # as a sorted list, recomputed on (re)classification from the
        # per-slot ``_assigned_*`` tuples, which mirror ``gslot > 0``.
        self._act_types: List[List[str]] = [[] for _ in entries]
        # Scoreboard mode keeps the scored state *per slot* between
        # scans: the winner is then extracted with the same vectorized
        # prefix-maxima pass as the full scan, over a persistent
        # concatenated candidate-slot array maintained by splicing only
        # reclassified entries' spans (``_sb_splices``).
        self._scores_g = np.zeros(n, dtype=float)
        self._sb_idx = np.empty(0, dtype=np.intp)
        self._sb_sizes = np.zeros(len(entries), dtype=np.int64)
        self._sb_bounds = np.zeros(len(entries), dtype=np.int64)
        self._sb_splices: List[int] = []
        self._mobile = np.zeros(n, dtype=bool)
        self._guarded_mask = np.zeros(n, dtype=bool)
        self._has_guards = any(entry.scalar_ops for entry in entries)
        # Scan-order cache: the concatenated candidate slots, their owner
        # entries, and the staleness-active mask only change when an op
        # becomes fixed (144 events across ~1000 scans at 12 processes).
        self._order_dirty = True
        self._sel_owners: List[int] = []
        self._sel_idx = np.empty(0, dtype=np.intp)
        self._act_idx = np.empty(0, dtype=np.intp)
        for index, entry in enumerate(entries):
            frames = entry.state.frames
            slots_map = self.slot_of[index]
            scalar_ops = entry.scalar_ops
            for op_id in entry.state.graph.op_ids:
                slot = slots_map[op_id]
                self._mobile[slot] = not frames.is_fixed(op_id)
                if op_id in scalar_ops:
                    self._guarded_mask[slot] = True

        # Sorted so cross-run accumulation order never depends on set
        # (hash) iteration order.
        balanced = (
            sorted(coupling.assignment.global_types)
            if self.alignment and self.balancing
            else []
        )
        self._balanced_types: List[str] = balanced
        self._g: Dict[str, np.ndarray] = {}
        self._gdots: Dict[str, np.ndarray] = {}
        self._top: Dict[str, int] = {}
        self._free: Dict[str, List[int]] = {}
        self._gslot: Dict[str, np.ndarray] = {}
        self._seen_version: Dict[str, int] = {}
        self._changed_scan: Dict[str, int] = {}
        for type_name in balanced:
            period = coupling.period(type_name)
            self._g[type_name] = np.zeros((16, period), dtype=float)
            self._gdots[type_name] = np.zeros(16, dtype=float)
            self._top[type_name] = 1  # row 0: permanent all-zero sentinel
            self._free[type_name] = []
            self._gslot[type_name] = np.zeros((2, n), dtype=np.int64)
            self._seen_version[type_name] = coupling.s_version(type_name)
            self._changed_scan[type_name] = 0

    # -- scan ----------------------------------------------------------
    def select(
        self, *, collect: Optional[list] = None, want_detail: bool = False
    ) -> Optional[Tuple[int, str, bool, float, int, Optional[Tuple]]]:
        """One selection scan; same contract as ``_select_reduction``."""
        if self.scoreboard is not None:
            return self._select_scoreboard(collect, want_detail)
        track = want_detail or collect is not None
        coupling = self.coupling
        self._scan_no += 1
        scan_no = self._scan_no

        # (1) Sync to S: every type whose system distribution moved
        # since the last scan re-dots its G matrix in one matvec.
        for type_name in self._balanced_types:
            version = coupling.s_version(type_name)
            if version != self._seen_version[type_name]:
                self._seen_version[type_name] = version
                self._changed_scan[type_name] = scan_no
                top = self._top[type_name]
                if top > 1:
                    np.matmul(
                        self._g[type_name][:top],
                        coupling.system_distribution(type_name),
                        out=self._gdots[type_name][:top],
                    )

        # (2) Classify the candidates of *dirty* entries: marker present
        # -> hit, absent -> fresh (batch-evaluated per block), guarded
        # footprint -> scalar job.  Clean entries reuse last scan's
        # candidate lists — every non-guarded candidate is a hit by
        # construction — so aggregated hit/miss totals still equal the
        # scalar per-probe counts.
        kinds: Optional[Dict[int, str]] = {} if track else None
        for index, entry in enumerate(self.entries):
            if not self._dirty[index]:
                hits = self._hit_counts[index]
                if hits:
                    count(FORCE_CACHE_HITS, hits)
                continue
            self._dirty[index] = False
            unfixed = entry.state.frames.unfixed()
            self._cand_ops[index] = unfixed
            store = self.caches[index]._store
            slots_map = self.slot_of[index]
            scalar_ops = entry.scalar_ops
            slots = np.empty(len(unfixed), dtype=np.intp)
            guarded: List[Tuple[str, int]] = []
            fresh_ops: List[str] = []
            hits = 0
            for pos, op_id in enumerate(unfixed):
                slot = slots_map[op_id]
                slots[pos] = slot
                if op_id in scalar_ops:
                    guarded.append((op_id, slot))
                elif op_id in store:
                    hits += 1
                else:
                    fresh_ops.append(op_id)
                    store[op_id] = _KERNEL_EVALUATED
                    if kinds is not None:
                        kinds[slot] = CACHE_FRESH
            self._cand_slots[index] = slots
            self._guarded_jobs[index] = guarded
            # Once this entry is clean every non-guarded candidate —
            # fresh ones included — probes as a hit.
            self._hit_counts[index] = hits + len(fresh_ops)
            if hits:
                count(FORCE_CACHE_HITS, hits)
            if fresh_ops:
                count(FORCE_CACHE_MISSES, len(fresh_ops))
                self._fresh_eval(index, entry, fresh_ops, scan_no)

        if self._order_dirty:
            self._order_dirty = False
            self._sel_owners = [
                index
                for index in range(len(self.entries))
                if self._cand_slots[index].size
            ]
            self._sel_idx = (
                np.concatenate(
                    [self._cand_slots[index] for index in self._sel_owners]
                )
                if self._sel_owners
                else np.empty(0, dtype=np.intp)
            )
            self._act_idx = np.nonzero(self._mobile & ~self._guarded_mask)[0]

        # (3) Staleness: one assembly per cached op holding a G row of
        # a type whose S moved after the op's last fold — exactly the
        # set the scalar version-tuple comparison re-assembles.  Freshly
        # evaluated slots carry this scan's stamp and drop out; guarded
        # and fixed slots are masked off.
        act_idx = self._act_idx if self._balanced_types else None
        if act_idx is not None and act_idx.size:
            stamps = self._fold_stamp[act_idx]
            min_stamp = int(stamps.min())
            stale = None
            for type_name in self._balanced_types:
                changed = self._changed_scan[type_name]
                if changed <= min_stamp:
                    continue
                has_row = (self._gslot[type_name][:, act_idx] > 0).any(axis=0)
                mask = has_row & (stamps < changed)
                stale = mask if stale is None else (stale | mask)
            if stale is not None:
                assembled = int(stale.sum())
                if assembled:
                    count(FORCE_CACHE_ASSEMBLIES, assembled)
                    self._fold_stamp[act_idx[stale]] = scan_no
                    if kinds is not None:
                        for slot in act_idx[stale].tolist():
                            kinds[slot] = CACHE_ASSEMBLED

        # (4) Refold every slot: constants plus the gathered per-type
        # dots (the sentinel row contributes an exact 0.0).
        np.copyto(self._force, self._const)
        for type_name in self._balanced_types:
            if self._top[type_name] > 1:
                self._force += self._gdots[type_name][self._gslot[type_name]]

        # (5) Guarded ops: scalar _CachedScore machinery, written into
        # their slots after the wholesale refold.  Probed every scan so
        # the cache's own hit/miss accounting matches the scalar path.
        scheduler = self.scheduler
        for index, entry in enumerate(self.entries):
            jobs = self._guarded_jobs[index]
            if not jobs:
                continue
            cache = self.caches[index]
            frames = entry.state.frames
            for op_id, slot in jobs:
                cached = cache.get(op_id)
                kind = CACHE_HIT
                if cached is None:
                    lo, hi = frames.frame(op_id)
                    cached = scheduler._evaluate_cached(
                        index, entry, coupling, op_id, lo, hi
                    )
                    cache.put(op_id, cached)
                    kind = CACHE_FRESH
                elif cached.global_types:
                    versions = tuple(
                        coupling.s_version(t) for t in cached.global_types
                    )
                    if versions != cached.versions:
                        count(FORCE_CACHE_ASSEMBLIES)
                        if cached.terms_low is not None:
                            cached.force_low = scheduler._assemble(
                                cached.terms_low, coupling
                            )
                        if cached.terms_high is not None:
                            cached.force_high = scheduler._assemble(
                                cached.terms_high, coupling
                            )
                        cached.versions = versions
                        kind = CACHE_ASSEMBLED
                self._force[0, slot] = cached.force_low
                self._force[1, slot] = cached.force_high
                lo, hi = frames.frame(op_id)
                self._eta[slot] = 1.0 if hi - lo + 1 <= 2 else 0.5
                if kinds is not None:
                    kinds[slot] = kind

        # (6) Score and fold in scan order with the scalar epsilons.
        owners = self._sel_owners
        if not owners:
            return None
        idx = self._sel_idx
        fpair = self._force[:, idx]
        flows = fpair[0]
        fhighs = fpair[1]
        scores = self._eta[idx] * np.abs(flows - fhighs)
        # The scan-order hysteresis fold (``score > best + 1e-12``) only
        # ever accepts strict prefix maxima: the running best never drops
        # more than the epsilon below the prefix maximum, so an accepted
        # score strictly exceeds every earlier one.  Replaying the fold
        # over just that (short) subsequence is therefore exact.
        total = scores.shape[0]
        if total > 1:
            prefix = np.maximum.accumulate(scores[:-1])
            front = np.nonzero(scores[1:] > prefix)[0]
            positions = [0] + (front + 1).tolist()
        else:
            positions = [0]
        best_pos = -1
        best_score = None
        for pos in positions:
            score = float(scores[pos])
            if best_score is None or score > best_score + 1e-12:
                best_score = score
                best_pos = pos
        if collect is not None:
            flow_list = flows.tolist()
            fhigh_list = fhighs.tolist()
            score_list = scores.tolist()
            idx_list = idx.tolist()
            pos = 0
            for index in owners:
                entry = self.entries[index]
                for op_id in self._cand_ops[index]:
                    collect.append(
                        CandidateAudit(
                            process=entry.process_name,
                            block=entry.block.name,
                            op=op_id,
                            force_low=flow_list[pos],
                            force_high=fhigh_list[pos],
                            score=score_list[pos],
                            cache=kinds.get(idx_list[pos], CACHE_HIT),
                        )
                    )
                    pos += 1
        best_entry = -1
        offset = best_pos
        for index in owners:
            size = self._cand_slots[index].size
            if offset < size:
                best_entry = index
                break
            offset -= size
        force_low = float(flows[best_pos])
        force_high = float(fhighs[best_pos])
        detail = None
        if want_detail:
            detail = (
                force_low,
                force_high,
                kinds.get(int(idx[best_pos]), CACHE_HIT),
            )
        assert best_score is not None
        return (
            best_entry,
            self._cand_ops[best_entry][offset],
            force_low > force_high + 1e-12,
            float(best_score),
            total,
            detail,
        )

    # -- scoreboard scan ------------------------------------------------
    def _select_scoreboard(
        self, collect: Optional[list], want_detail: bool
    ) -> Optional[Tuple[int, str, bool, float, int, Optional[Tuple]]]:
        """Dirty-cone scan: rescore only perturbed entries, fold the rest
        from their cached incumbents.

        Exactness and counter parity with :meth:`select` rest on three
        facts (docs/performance.md, "Selection scoreboard"):

        * a clean entry's forces are bit-unchanged — its constants moved
          only through a fresh evaluation (needs a dirty entry) and its
          per-type dots only through an ``S`` bump of a touched type
          (which puts the entry in the rescore set via its subscription);
        * its counters are unchanged too: every candidate probe would be
          a hit (charged in bulk from the record) and the staleness mask
          over its slots would be empty, so zero assemblies are lost;
        * the hysteresis fold over the concatenated per-entry strict
          prefix maxima is bit-identical to the full scan-order fold.

        ``collect`` (audit candidate capture) needs every candidate's
        force, so it degrades to rescore-all — rescoring a clean entry
        re-counts exactly the same hits and zero assemblies, keeping the
        telemetry contract.

        The rescored entries are processed as *one* batch: their slots
        concatenate into a single index array and the staleness mask,
        the refold, and the score pass each run once over it — the same
        elementwise operations as the full scan, restricted to the
        rescored columns, so every per-slot value stays bit-identical
        while the per-scan numpy call count stays constant instead of
        linear in the rescore-set size.
        """
        track = want_detail or collect is not None
        coupling = self.coupling
        self._scan_no += 1
        scan_no = self._scan_no

        # (1) Sync to S, remembering which types bumped this scan.
        bumped: List[str] = []
        for type_name in self._balanced_types:
            version = coupling.s_version(type_name)
            if version != self._seen_version[type_name]:
                self._seen_version[type_name] = version
                self._changed_scan[type_name] = scan_no
                bumped.append(type_name)
                top = self._top[type_name]
                if top > 1:
                    np.matmul(
                        self._g[type_name][:top],
                        coupling.system_distribution(type_name),
                        out=self._gdots[type_name][:top],
                    )

        # (2) The rescore set: the commit's dirty cone plus every entry
        # subscribed to a bumped type.
        board = self.scoreboard
        assert board is not None
        if collect is not None:
            rescore = list(range(len(self.entries)))
        else:
            rescore = board.rescore_set(self._dirty_set, bumped)

        # (3) Charge the hits skipped entries would have probed, in one
        # aggregated count: total over all records minus the rescored
        # entries' shares (they count their own probes live).
        records = board.records
        skip_hits = board.sum_skip_hits
        for index in rescore:
            skip_hits -= records[index].skip_hits
        if skip_hits:
            count(FORCE_CACHE_HITS, skip_hits)

        # (4) Classify dirty rescored entries — the same python pass as
        # the full scan, restricted to the rescore set; clean rescored
        # entries just re-count their candidate probes as hits.  Only
        # the classified (dirty) entries need their records restored
        # afterwards: a clean rescored entry's counters, subscriptions,
        # and candidate span are all provably unchanged.
        kinds: Optional[Dict[int, str]] = {} if track else None
        classified: List[int] = []
        for index in rescore:
            if self._dirty[index]:
                self._classify_entry(index, scan_no, kinds)
                classified.append(index)
            else:
                hits = self._hit_counts[index]
                if hits:
                    count(FORCE_CACHE_HITS, hits)
        self._dirty_set.clear()
        count(SELECTION_RESCORED, len(rescore))
        count(SELECTION_SKIPPED, len(self.entries) - len(rescore))

        # (4b) Splice reclassified spans whose candidate count changed
        # into the persistent concatenated slot array (one pass, in
        # entry order); wholesale rebuild when many moved at once.
        splices = self._sb_splices
        if splices:
            sizes = self._sb_sizes
            cand_slots = self._cand_slots
            if len(splices) > 16:
                arrays = [slots for slots in cand_slots if slots.size]
                self._sb_idx = (
                    np.concatenate(arrays)
                    if arrays
                    else np.empty(0, dtype=np.intp)
                )
                for i, slots in enumerate(cand_slots):
                    sizes[i] = slots.size
            else:
                bounds = self._sb_bounds
                idx_arr = self._sb_idx
                parts: List[np.ndarray] = []
                prev = 0
                for index in splices:
                    start = int(bounds[index - 1]) if index else 0
                    if start > prev:
                        parts.append(idx_arr[prev:start])
                    new_arr = cand_slots[index]
                    if new_arr.size:
                        parts.append(new_arr)
                    prev = int(bounds[index])
                    sizes[index] = new_arr.size
                parts.append(idx_arr[prev:])
                self._sb_idx = np.concatenate(parts)
            np.cumsum(sizes, out=self._sb_bounds)
            self._sb_splices = []

        # (5) Concatenate the rescored entries' candidate and staleness
        # index arrays (slots partition by entry, so per-slot work and
        # counter totals decompose exactly).
        if len(rescore) == 1:
            only = rescore[0]
            cat_slots = self._cand_slots[only]
            cat_act = self._entry_act[only]
        elif rescore:
            cat_slots = np.concatenate(
                [self._cand_slots[index] for index in rescore]
            )
            cat_act = np.concatenate(
                [self._entry_act[index] for index in rescore]
            )
        else:
            cat_slots = cat_act = np.empty(0, dtype=np.intp)

        # The balanced types with a G row anywhere among the rescored
        # slots: the union of the rescored entries' act-derived types.
        # Every other type contributes only the all-zero sentinel row to
        # the staleness mask and the refold, so restricting both loops
        # to this union is exact.
        act_union: set = set()
        for index in rescore:
            act_union.update(self._act_types[index])

        # (6) Staleness over the rescored act slots — the full scan's
        # mask restricted to those columns (a skipped entry's share is
        # provably empty, see above).
        if act_union and cat_act.size:
            stamps = self._fold_stamp[cat_act]
            min_stamp = int(stamps.min())
            stale = None
            for type_name in self._balanced_types:
                changed = self._changed_scan[type_name]
                if changed <= min_stamp or type_name not in act_union:
                    continue
                has_row = (self._gslot[type_name][:, cat_act] > 0).any(axis=0)
                mask = has_row & (stamps < changed)
                stale = mask if stale is None else (stale | mask)
            if stale is not None:
                assembled = int(stale.sum())
                if assembled:
                    count(FORCE_CACHE_ASSEMBLIES, assembled)
                    self._fold_stamp[cat_act[stale]] = scan_no
                    if kinds is not None:
                        for slot in cat_act[stale].tolist():
                            kinds[slot] = CACHE_ASSEMBLED

        # (7) Refold the rescored slots: same additions, same type order
        # as the wholesale refold — elementwise bit-identical.
        guard_types: Dict[int, set] = {}
        if cat_slots.size:
            force = self._const[:, cat_slots]
            for type_name in self._balanced_types:
                if type_name in act_union and self._top[type_name] > 1:
                    force += self._gdots[type_name][
                        self._gslot[type_name][:, cat_slots]
                    ]

            # (8) Guarded ops: scalar machinery written over the refold.
            scheduler = self.scheduler
            base = 0
            for index in rescore if self._has_guards else ():
                jobs = self._guarded_pos[index]
                if jobs:
                    cache = self.caches[index]
                    frames = self.entries[index].state.frames
                    gset = guard_types[index] = set()
                    for op_id, slot, pos in jobs:
                        cached = cache.get(op_id)
                        kind = CACHE_HIT
                        if cached is None:
                            lo, hi = frames.frame(op_id)
                            cached = scheduler._evaluate_cached(
                                index,
                                self.entries[index],
                                coupling,
                                op_id,
                                lo,
                                hi,
                            )
                            cache.put(op_id, cached)
                            kind = CACHE_FRESH
                        elif cached.global_types:
                            versions = tuple(
                                coupling.s_version(t)
                                for t in cached.global_types
                            )
                            if versions != cached.versions:
                                count(FORCE_CACHE_ASSEMBLIES)
                                if cached.terms_low is not None:
                                    cached.force_low = scheduler._assemble(
                                        cached.terms_low, coupling
                                    )
                                if cached.terms_high is not None:
                                    cached.force_high = scheduler._assemble(
                                        cached.terms_high, coupling
                                    )
                                cached.versions = versions
                                kind = CACHE_ASSEMBLED
                        force[0, base + pos] = cached.force_low
                        force[1, base + pos] = cached.force_high
                        lo, hi = frames.frame(op_id)
                        self._eta[slot] = 1.0 if hi - lo + 1 <= 2 else 0.5
                        gset.update(cached.global_types)
                        if kinds is not None:
                            kinds[slot] = kind
                base += self._cand_slots[index].size

            # (9) Score the rescored columns once and scatter forces and
            # scores into the persistent per-slot arrays — the same
            # elementwise operations the full scan applies, so every
            # stored value is bit-identical to a full recompute; the
            # skipped columns provably kept theirs.
            flows = force[0]
            fhighs = force[1]
            scores = self._eta[cat_slots] * np.abs(flows - fhighs)
            self._force[:, cat_slots] = force
            self._scores_g[cat_slots] = scores

        # Record bookkeeping for the classified entries only: a clean
        # rescored entry's candidate count, skip-hit share, and type
        # subscriptions cannot have changed (its candidates and cached
        # recipes are untouched; ``global_types`` of a guarded op is
        # static while its cache entry lives).
        for index in classified:
            touched = set(self._act_types[index])
            gset = guard_types.get(index)
            if gset:
                touched.update(gset)
            board.store(
                index,
                n_candidates=self._cand_slots[index].size,
                skip_hits=self._hit_counts[index]
                + len(self._guarded_jobs[index]),
                touched_types=sorted(touched),
                scan_no=scan_no,
            )

        if collect is not None and cat_slots.size:
            score_list = scores.tolist()
            flow_list = flows.tolist()
            fhigh_list = fhighs.tolist()
            slot_list = cat_slots.tolist()
            base = 0
            for index in rescore:
                entry = self.entries[index]
                for pos, op_id in enumerate(self._cand_ops[index]):
                    collect.append(
                        CandidateAudit(
                            process=entry.process_name,
                            block=entry.block.name,
                            op=op_id,
                            force_low=flow_list[base + pos],
                            force_high=fhigh_list[base + pos],
                            score=score_list[base + pos],
                            cache=(
                                kinds.get(slot_list[base + pos], CACHE_HIT)
                                if kinds is not None
                                else CACHE_HIT
                            ),
                        )
                    )
                base += self._cand_slots[index].size

        # (10) Winner extraction: the full scan's vectorized strict
        # prefix-maxima fold, over the persistent gathered scores.
        idx = self._sb_idx
        total = int(idx.size)
        if not total:
            return None
        scores_v = self._scores_g[idx]
        if total > 1:
            prefix = np.maximum.accumulate(scores_v[:-1])
            front = np.nonzero(scores_v[1:] > prefix)[0]
            positions = [0] + (front + 1).tolist()
        else:
            positions = [0]
        best_pos = -1
        best_score = None
        for pos in positions:
            score = float(scores_v[pos])
            if best_score is None or score > best_score + 1e-12:
                best_score = score
                best_pos = pos
        best_entry = int(
            np.searchsorted(self._sb_bounds, best_pos, side="right")
        )
        start = int(self._sb_bounds[best_entry - 1]) if best_entry else 0
        slot = int(idx[best_pos])
        force_low = float(self._force[0, slot])
        force_high = float(self._force[1, slot])
        detail = None
        if want_detail:
            kind = kinds.get(slot, CACHE_HIT) if kinds is not None else CACHE_HIT
            detail = (force_low, force_high, kind)
        assert best_score is not None
        return (
            best_entry,
            self._cand_ops[best_entry][best_pos - start],
            force_low > force_high + 1e-12,
            best_score,
            total,
            detail,
        )

    def _classify_entry(
        self,
        index: int,
        scan_no: int,
        kinds: Optional[Dict[int, str]],
    ) -> None:
        """Reclassify one dirty entry's candidates (scoreboard mode).

        The same python pass as the full scan's step 2 — probe counting,
        fresh batch evaluation, guarded-job split — plus the candidate
        *positions* of the guarded jobs and the act-derived touched-type
        list the batched rescore consumes.
        """
        entry = self.entries[index]
        self._dirty[index] = False
        unfixed = entry.state.frames.unfixed()
        self._cand_ops[index] = unfixed
        store = self.caches[index]._store
        slots_map = self.slot_of[index]
        scalar_ops = entry.scalar_ops
        slots = np.empty(len(unfixed), dtype=np.intp)
        act_list: List[int] = []
        guarded: List[Tuple[str, int]] = []
        guarded_pos: List[Tuple[str, int, int]] = []
        fresh_ops: List[str] = []
        hits = 0
        for pos, op_id in enumerate(unfixed):
            slot = slots_map[op_id]
            slots[pos] = slot
            if op_id in scalar_ops:
                guarded.append((op_id, slot))
                guarded_pos.append((op_id, slot, pos))
                continue
            act_list.append(slot)
            if op_id in store:
                hits += 1
            else:
                fresh_ops.append(op_id)
                store[op_id] = _KERNEL_EVALUATED
                if kinds is not None:
                    kinds[slot] = CACHE_FRESH
        if slots.size != self._sb_sizes[index]:
            # Candidates only ever disappear (commits fix ops in their
            # own block), so an unchanged count means an unchanged span.
            self._sb_splices.append(index)
        self._cand_slots[index] = slots
        self._entry_act[index] = np.asarray(act_list, dtype=np.intp)
        self._guarded_jobs[index] = guarded
        self._guarded_pos[index] = guarded_pos
        self._hit_counts[index] = hits + len(fresh_ops)
        if hits:
            count(FORCE_CACHE_HITS, hits)
        if fresh_ops:
            count(FORCE_CACHE_MISSES, len(fresh_ops))
            self._fresh_eval(index, entry, fresh_ops, scan_no)
        # Act-derived touched types, read *after* the fresh evaluation
        # reassigned G rows: ``_assigned_*[slot]`` is nonempty exactly
        # when ``gslot[type][:, slot] > 0`` for the type, so this union
        # equals the full scan's per-type ``(gslot[:, act] > 0).any()``.
        assigned_low = self._assigned_low
        assigned_high = self._assigned_high
        acts: set = set()
        for slot in act_list:
            low = assigned_low[slot]
            if low:
                acts.update(low)
            high = assigned_high[slot]
            if high:
                acts.update(high)
        self._act_types[index] = sorted(acts)

    def note_commit(
        self,
        entry_index: int,
        effect: ReductionEffect,
        scopes: Mapping[str, str],
    ) -> None:
        """Record a committed reduction, mirroring ``_invalidate_caches``.

        The committed entry always reclassifies next scan; same-process
        siblings only do when the commit moved any shared type's ``Q``
        (a non-``clean`` scope) — exactly the condition under which the
        scalar path invalidates their stores.
        """
        frames = self.entries[entry_index].state.frames
        slots_map = self.slot_of[entry_index]
        for op_id in effect.changed_ops:
            if frames.is_fixed(op_id):
                slot = slots_map[op_id]
                if self._mobile[slot]:
                    self._mobile[slot] = False
                    self._order_dirty = True
        self._dirty[entry_index] = True
        self._dirty_set.add(entry_index)
        if not (self.alignment and self.balancing):
            return
        if all(scope == "clean" for scope in scopes.values()):
            return
        process_name = self.entries[entry_index].process_name
        for index, entry in enumerate(self.entries):
            if index != entry_index and entry.process_name == process_name:
                self._dirty[index] = True
                self._dirty_set.add(index)

    # -- fresh evaluation ----------------------------------------------
    def _fresh_eval(
        self, index: int, entry: _Entry, fresh_ops: List[str], scan_no: int
    ) -> None:
        """Batch-evaluate both frame ends of a block's invalidated ops.

        One :class:`DeltaBatch` covers every (op, frame-end) pair; each
        displaced type folds its participating rows with batched matrix
        products, mirroring :meth:`ModuloSystemScheduler._force_terms`
        branch for branch.  Constants, ``w * delta_S`` rows, and their
        current-``S`` dots are written into the persistent arrays; the
        wholesale refold in :meth:`select` produces the forces.
        """
        coupling = self.coupling
        state = entry.state
        frames = state.frames
        dist = state.dist
        lookahead = self.lookahead
        weights = self.weights
        process_name = entry.process_name
        pairs: List[Tuple[str, int]] = []
        for op_id in fresh_ops:
            lo, hi = frames.frame(op_id)
            pairs.append((op_id, lo))
            pairs.append((op_id, hi))
        batch = DeltaBatch(state, pairs)
        type_orders = batch.type_orders
        # Per type: S-independent value per participating row, plus (for
        # balanced shared types) the pre-weighted delta_S row and its
        # current-S dot.
        const_parts: Dict[str, Dict[int, float]] = {}
        gvec_parts: Dict[str, Tuple[np.ndarray, np.ndarray, Dict[int, int]]] = {}
        for type_name, matrix in batch.deltas.items():
            participants = [
                row for row, order in enumerate(type_orders) if type_name in order
            ]
            if not participants:
                continue
            deltas = matrix[np.asarray(participants, dtype=np.intp)]
            weight = 1.0 if weights is None else float(weights.get(type_name, 1.0))
            count(FORCE_EVALUATIONS, len(participants))
            if self.alignment and coupling.is_shared(process_name, type_name):
                period = coupling.period(type_name)
                # ``deltas`` is a fancy-gather copy, safe to fold the
                # current distribution into in place (a + b commutes).
                deltas += dist.array(type_name)
                q_new = modulo_max_rows(deltas, period)
                if not self.balancing:
                    q_old = coupling.block_q(index, type_name)
                    q_new -= q_old
                    vals = weight * (
                        row_dots(q_new, q_old)
                        + lookahead * row_self_dots(q_new)
                    )
                    const_parts[type_name] = dict(zip(participants, vals.tolist()))
                else:
                    others = coupling.other_blocks_max(index, type_name)
                    m_old = coupling.process_max(process_name, type_name)
                    np.maximum(others, q_new, out=q_new)
                    q_new -= m_old
                    delta_s = q_new
                    frozen = (weight * lookahead) * row_self_dots(delta_s)
                    delta_s *= weight
                    weighted = delta_s
                    gdot_vals = row_dots(
                        weighted, coupling.system_distribution(type_name)
                    )
                    const_parts[type_name] = dict(
                        zip(participants, frozen.tolist())
                    )
                    gvec_parts[type_name] = (
                        weighted,
                        gdot_vals,
                        {row: i for i, row in enumerate(participants)},
                    )
            else:
                vals = weight * (
                    row_dots(deltas, dist.array(type_name))
                    + lookahead * row_self_dots(deltas)
                )
                const_parts[type_name] = dict(zip(participants, vals.tolist()))

        slots_map = self.slot_of[index]
        # Per-slot scalar array writes are collected in python lists and
        # flushed as one fancy write per target array (and per type for
        # the G rows — allocation may grow those, so the flush re-reads
        # them); the bookkeeping loop itself touches no numpy state.
        pending: Dict[str, Tuple[List[int], List[int]]] = {}
        gslot_writes: Dict[Tuple[str, int], Tuple[List[int], List[int]]] = {}
        slots_list: List[int] = []
        const_lows: List[float] = []
        const_highs: List[float] = []
        etas: List[float] = []
        gslot = self._gslot
        for k, op_id in enumerate(fresh_ops):
            slot = slots_map[op_id]
            slots_list.append(slot)
            for side, row, assigned in (
                (0, 2 * k, self._assigned_low),
                (1, 2 * k + 1, self._assigned_high),
            ):
                for type_name in assigned[slot]:
                    stale_rows = gslot[type_name]
                    self._free[type_name].append(int(stale_rows[side, slot]))
                    stale_rows[side, slot] = 0
                const = 0.0
                new_types: List[str] = []
                for type_name in type_orders[row]:
                    const += const_parts[type_name][row]
                    per_type = gvec_parts.get(type_name)
                    if per_type is not None:
                        i = per_type[2].get(row)
                        if i is not None:
                            row_id = self._alloc_row(type_name)
                            g_slots, g_rows = gslot_writes.setdefault(
                                (type_name, side), ([], [])
                            )
                            g_slots.append(slot)
                            g_rows.append(row_id)
                            row_ids, sources = pending.setdefault(
                                type_name, ([], [])
                            )
                            row_ids.append(row_id)
                            sources.append(i)
                            new_types.append(type_name)
                if side == 0:
                    const_lows.append(const)
                else:
                    const_highs.append(const)
                assigned[slot] = tuple(new_types)
            lo, hi = frames.frame(op_id)
            etas.append(1.0 if hi - lo + 1 <= 2 else 0.5)
        slots_arr = np.asarray(slots_list, dtype=np.intp)
        self._const[0, slots_arr] = const_lows
        self._const[1, slots_arr] = const_highs
        self._eta[slots_arr] = etas
        self._fold_stamp[slots_arr] = scan_no
        for (type_name, side), (g_slots, g_rows) in gslot_writes.items():
            gslot[type_name][side, g_slots] = g_rows
        for type_name, (row_ids, sources) in pending.items():
            weighted, gdot_vals, _rowmap = gvec_parts[type_name]
            self._g[type_name][row_ids] = weighted[sources]
            self._gdots[type_name][row_ids] = gdot_vals[sources]

    def _alloc_row(self, type_name: str) -> int:
        """Next free G row of a type, growing the arrays by doubling."""
        free = self._free[type_name]
        if free:
            return free.pop()
        top = self._top[type_name]
        g = self._g[type_name]
        if top == g.shape[0]:
            grown = np.zeros((2 * top, g.shape[1]), dtype=float)
            grown[:top] = g
            self._g[type_name] = grown
            grown_dots = np.zeros(2 * top, dtype=float)
            grown_dots[:top] = self._gdots[type_name]
            self._gdots[type_name] = grown_dots
        self._top[type_name] = top + 1
        return top


class _ScalarSelector:
    """Scoreboard driver for the scalar cached path (kernels disabled).

    Same dirty-cone contract as the kernel scoreboard, with the scalar
    :class:`_CachedScore` probe loop as the per-entry rescore.  An entry
    is clean when its :class:`BlockSelectionCache` generation is
    unchanged since the last rescore (no invalidation touched the block,
    so every candidate still probes as a hit) *and* no balanced type in
    the union of its cached ``global_types`` bumped its ``S`` version
    (so no probe would re-assemble).  Both conditions reduce to integer
    comparisons; a clean entry's forces, counters, and incumbents are
    bit-unchanged, so its cached prefix-maxima record folds verbatim.
    """

    def __init__(
        self,
        scheduler: "ModuloSystemScheduler",
        entries: List[_Entry],
        coupling: "_GlobalCoupling",
        caches: List[BlockSelectionCache],
    ) -> None:
        self.scheduler = scheduler
        self.entries = entries
        self.coupling = coupling
        self.caches = caches
        self.board = SelectionScoreboard(len(entries))
        self._generations = [-1] * len(entries)
        self._scan_no = 0
        self._global_types = sorted(coupling.assignment.global_types)
        self._seen_version = {
            type_name: coupling.s_version(type_name)
            for type_name in self._global_types
        }

    def select(
        self, collect: Optional[list], want_detail: bool
    ) -> Optional[Tuple[int, str, bool, float, int, Optional[Tuple]]]:
        track = want_detail or collect is not None
        coupling = self.coupling
        self._scan_no += 1
        scan_no = self._scan_no
        bumped: List[str] = []
        for type_name in self._global_types:
            version = coupling.s_version(type_name)
            if version != self._seen_version[type_name]:
                self._seen_version[type_name] = version
                bumped.append(type_name)
        board = self.board
        caches = self.caches
        generations = self._generations
        if collect is not None:
            rescore = list(range(len(self.entries)))
        else:
            dirty = [
                index
                for index in range(len(self.entries))
                if caches[index].generation != generations[index]
            ]
            rescore = board.rescore_set(dirty, bumped)
        records = board.records
        skip_hits = board.sum_skip_hits
        for index in rescore:
            skip_hits -= records[index].skip_hits
        if skip_hits:
            count(FORCE_CACHE_HITS, skip_hits)
        for index in rescore:
            self._rescore_entry(index, scan_no, track, collect)
        count(SELECTION_RESCORED, len(rescore))
        count(SELECTION_SKIPPED, len(self.entries) - len(rescore))
        winner = board.fold()
        if winner is None:
            return None
        best_score, best_entry, offset, force_low, force_high = winner
        detail = None
        if want_detail:
            record = records[best_entry]
            kind = CACHE_HIT
            if record.last_scored == scan_no and record.pm_kinds is not None:
                kind = record.pm_kinds[record.pm_offsets.index(offset)]
            detail = (force_low, force_high, kind)
        entry = self.entries[best_entry]
        op_id = entry.state.frames.unfixed()[offset]
        return (
            best_entry,
            op_id,
            force_low > force_high + 1e-12,
            best_score,
            board.sum_candidates,
            detail,
        )

    def _rescore_entry(
        self, index: int, scan_no: int, track: bool, collect: Optional[list]
    ) -> None:
        """The reference scalar probe loop, restricted to one entry."""
        entry = self.entries[index]
        scheduler = self.scheduler
        coupling = self.coupling
        cache = self.caches[index]
        frames = entry.state.frames
        unfixed = frames.unfixed()
        scores: List[float] = []
        flows: List[float] = []
        fhighs: List[float] = []
        all_kinds: List[str] = []
        touched: set = set()
        for op_id in unfixed:
            lo, hi = frames.frame(op_id)
            cached = cache.get(op_id)
            kind = CACHE_HIT
            if cached is None:
                cached = scheduler._evaluate_cached(
                    index, entry, coupling, op_id, lo, hi
                )
                cache.put(op_id, cached)
                kind = CACHE_FRESH
            elif cached.global_types:
                versions = tuple(
                    coupling.s_version(t) for t in cached.global_types
                )
                if versions != cached.versions:
                    count(FORCE_CACHE_ASSEMBLIES)
                    if cached.terms_low is not None:
                        cached.force_low = scheduler._assemble(
                            cached.terms_low, coupling
                        )
                    if cached.terms_high is not None:
                        cached.force_high = scheduler._assemble(
                            cached.terms_high, coupling
                        )
                    cached.versions = versions
                    kind = CACHE_ASSEMBLED
            force_low, force_high = cached.force_low, cached.force_high
            eta = 1.0 if hi - lo + 1 <= 2 else 0.5
            score = eta * abs(force_low - force_high)
            scores.append(score)
            flows.append(force_low)
            fhighs.append(force_high)
            touched.update(cached.global_types)
            if track:
                all_kinds.append(kind)
            if collect is not None:
                collect.append(
                    CandidateAudit(
                        process=entry.process_name,
                        block=entry.block.name,
                        op=op_id,
                        force_low=force_low,
                        force_high=force_high,
                        score=score,
                        cache=kind,
                    )
                )
        positions = prefix_maxima_positions(scores)
        self.board.store(
            index,
            pm_offsets=positions,
            pm_scores=[scores[p] for p in positions],
            pm_flows=[flows[p] for p in positions],
            pm_fhighs=[fhighs[p] for p in positions],
            pm_kinds=[all_kinds[p] for p in positions] if track else None,
            n_candidates=len(unfixed),
            skip_hits=len(unfixed),
            touched_types=sorted(touched),
            scan_no=scan_no,
        )
        self._generations[index] = cache.generation


class ModuloSystemScheduler:
    """Time-constrained modulo scheduling with global resource sharing.

    Args:
        library: Resource library (latencies, occupancies, areas).
        lookahead: Paulin look-ahead fraction (classic 1/3).
        weights: Per-type spring-constant weights; ``None`` means 1.0
            everywhere (pass :func:`repro.scheduling.area_weights` for
            Verhaegh's global spring constants).
        periodical_alignment: Enable modification part 1 (§5.1).  When
            disabled, global types are treated like local ones during force
            evaluation (instance counts are still derived globally).
        global_balancing: Enable modification part 2 (§5.2).  Only
            meaningful while alignment is enabled.
        force_cache: Memoize the per-operation selection forces between
            iterations and re-evaluate only the dirty set perturbed by
            each committed reduction (see docs/performance.md).  The
            reduction sequence is byte-identical to the brute-force scan;
            disable only for A/B measurement.
        use_kernels: Evaluate selection forces with the batched array
            kernels (:mod:`repro.scheduling.kernels`): all dirty
            operations of a block are freshly evaluated in one
            (op × slot) pass, and stale cached recipes re-assemble with
            one stacked dot product per global type instead of one tiny
            ``np.dot`` per term.  Kernel evaluation engages together
            with ``force_cache``; with the cache disabled the scan uses
            the scalar reference path regardless (the brute-force arm
            exists for A/B measurement and stays the bitwise reference).
            Decisions agree with the scalar path — pinned at decision
            level by ``tests/core/test_kernel_parity.py`` (see
            docs/performance.md, "Batched kernels").
        use_scoreboard: Keep a persistent per-entry incumbent record
            (:class:`repro.scheduling.scoreboard.SelectionScoreboard`)
            and rescore, each iteration, only the entries inside the
            commit's dirty cone — the committed block, its same-process
            siblings on a non-``clean`` coupling scope, and the
            subscribers of every balanced type whose ``S`` bumped; clean
            entries fold their cached incumbents untouched.  Engages
            together with ``force_cache`` (in both kernel and scalar
            modes); decisions, schedules, areas, and telemetry counters
            are bit-identical to the full scan — pinned by
            ``tests/core/test_selection_scoreboard_parity.py`` — with
            the scoreboard's own work split reported via the new
            ``selection_rescored``/``selection_skipped`` counters.
            Disable only for A/B measurement.
        budget: Optional :class:`~repro.validation.budget.RunBudget`
            watchdog; on exhaustion (iterations, wall clock, or detected
            oscillation) the run degrades gracefully to the
            list-scheduling fallback — the result is still valid and
            verified, tagged ``degraded=True`` with the reason in
            ``telemetry["degraded"]`` (see docs/robustness.md).
        tracer: Observability sink (:class:`repro.obs.Tracer`); the
            default no-op tracer records nothing and costs nothing.
        audit: Optional :class:`repro.obs.AuditTrail`; when given, every
            committed reduction is recorded with its full decision
            context (candidates, forces, timeframe delta, cache
            classification) and attached under ``telemetry["audit"]``.
            Auditing observes and never steers — decisions are
            byte-identical with or without it.
    """

    def __init__(
        self,
        library: ResourceLibrary,
        *,
        lookahead: float = DEFAULT_LOOKAHEAD,
        weights: Optional[Mapping[str, float]] = None,
        periodical_alignment: bool = True,
        global_balancing: bool = True,
        force_cache: bool = True,
        use_kernels: bool = True,
        use_scoreboard: bool = True,
        budget: Optional[RunBudget] = None,
        tracer=None,
        audit=None,
    ) -> None:
        self.library = library
        self.lookahead = lookahead
        self.weights = dict(weights) if weights is not None else None
        self.periodical_alignment = periodical_alignment
        self.global_balancing = global_balancing
        self.force_cache = force_cache
        self.use_kernels = use_kernels
        self.use_scoreboard = use_scoreboard
        self.budget = budget
        self.tracer = as_tracer(tracer)
        self.audit = audit

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def schedule(
        self,
        system: SystemSpec,
        assignment: ResourceAssignment,
        periods: Optional[PeriodAssignment] = None,
        *,
        tracer=None,
        audit=None,
    ) -> SystemSchedule:
        """Schedule the whole system; returns a validated result.

        ``periods`` may be omitted only when the assignment declares no
        global types (the traditional baseline).  ``tracer`` and
        ``audit`` override the scheduler-level sinks for this one run.
        """
        if periods is None:
            if assignment.global_types:
                raise SchedulingError(
                    "a PeriodAssignment is required when global types exist"
                )
            periods = PeriodAssignment({})
        tracer = self.tracer if tracer is None else as_tracer(tracer)
        audit = self.audit if audit is None else audit
        if audit is not None and not audit.enabled:
            audit = None
        with tracer.activate(), tracer.span(
            "schedule", system=system.name, blocks=sum(1 for _ in system.iter_blocks())
        ):
            return self._schedule_traced(system, assignment, periods, tracer, audit)

    def _schedule_traced(
        self,
        system: SystemSpec,
        assignment: ResourceAssignment,
        periods: PeriodAssignment,
        tracer,
        audit=None,
    ) -> SystemSchedule:
        started = time.perf_counter()
        _log.debug(
            "scheduling system %r: %d operations, %d global types",
            system.name,
            system.operation_count,
            len(assignment.global_types),
        )
        with tracer.span("setup"):
            assignment.validate(system)
            periods.validate(assignment)
            system.validate(self.library.latency_of)
            entries = [
                _Entry(process.name, block, BlockState(block, self.library))
                for process, block in system.iter_blocks()
            ]
            if self.use_kernels and self.force_cache:
                for entry in entries:
                    entry.scalar_ops = guarded_footprint_ops(entry.state)
            coupling = _GlobalCoupling(entries, assignment, periods)
            caches = (
                [BlockSelectionCache(entry.state) for entry in entries]
                if self.force_cache
                else None
            )
            kernel = (
                _SystemKernel(self, entries, coupling, caches)
                if caches is not None and self.use_kernels
                else None
            )
            selector = (
                _ScalarSelector(self, entries, coupling, caches)
                if caches is not None and kernel is None and self.use_scoreboard
                else None
            )
        setup_done = time.perf_counter()

        tracker = self.budget.tracker() if self.budget is not None else None
        degraded_reason: Optional[str] = None
        iterations = 0
        keep_candidates = audit is not None and audit.keep_candidates
        with tracer.span("reduction_loop"):
            while True:
                collect: Optional[list] = [] if keep_candidates else None
                if tracer.enabled:
                    select_started = time.perf_counter()
                best = self._select_reduction(
                    entries,
                    coupling,
                    caches,
                    kernel=kernel,
                    selector=selector,
                    collect=collect,
                    want_detail=audit is not None,
                )
                if tracer.enabled:
                    tracer.observe(
                        SELECT_SECONDS, time.perf_counter() - select_started
                    )
                if best is None:
                    break
                if tracker is not None:
                    reason = tracker.tick(self._system_state_hash(entries))
                    if reason is not None:
                        degraded_reason = reason
                        _log.warning(
                            "budget exhausted scheduling system %r: %s; "
                            "degrading to list scheduling",
                            system.name,
                            reason,
                        )
                        if tracer.enabled:
                            tracer.event(
                                EVENT_DEGRADE,
                                reason=reason,
                                iteration=iterations,
                                fallback="list_scheduling",
                            )
                        break
                iterations += 1
                entry_index, op_id, shrink_low, score, candidates, detail = best
                entry = entries[entry_index]
                lo, hi = entry.state.frames.frame(op_id)
                if shrink_low:
                    effect = entry.state.commit_reduce_effect(op_id, lo + 1, hi)
                else:
                    effect = entry.state.commit_reduce_effect(op_id, lo, hi - 1)
                scopes = coupling.refresh(entry_index, effect.touched_types)
                if caches is not None:
                    self._invalidate_caches(
                        caches, entries, coupling, entry_index, effect, scopes
                    )
                if kernel is not None:
                    kernel.note_commit(entry_index, effect, scopes)
                side = "low" if shrink_low else "high"
                if audit is not None:
                    force_low, force_high, cache_kind = detail or (
                        0.0,
                        0.0,
                        CACHE_UNCACHED,
                    )
                    audit.record(
                        DecisionAudit(
                            iteration=iterations,
                            process=entry.process_name,
                            block=entry.block.name,
                            op=op_id,
                            side=side,
                            score=score,
                            force_low=force_low,
                            force_high=force_high,
                            frame_before=(lo, hi),
                            frame_after=entry.state.frames.frame(op_id),
                            cache=cache_kind,
                            changed_ops=tuple(sorted(effect.changed_ops)),
                            touched_types=tuple(sorted(effect.touched_types)),
                            scopes=dict(scopes),
                            candidates=tuple(collect) if collect else (),
                        )
                    )
                    count(AUDIT_DECISIONS)
                if tracer.enabled:
                    frames_remaining = sum(
                        e.state.frames.unfixed_count() for e in entries
                    )
                    tracer.count(SCHEDULER_ITERATIONS)
                    tracer.observe(REDUCTION_SCORE, score)
                    tracer.observe(CANDIDATES_SCANNED, candidates)
                    tracer.set_gauge(FRAMES_REMAINING, frames_remaining)
                    tracer.event(
                        EVENT_REDUCTION,
                        iteration=iterations,
                        process=entry.process_name,
                        block=entry.block.name,
                        op=op_id,
                        side=side,
                        score=round(score, 9),
                        candidates=candidates,
                        frames_remaining=frames_remaining,
                    )
                    tracer.event(
                        EVENT_COMMIT,
                        iteration=iterations,
                        process=entry.process_name,
                        block=entry.block.name,
                        op=op_id,
                        changed_ops=len(effect.changed_ops),
                        touched_types=sorted(effect.touched_types),
                        scopes=dict(scopes),
                    )
        loop_done = time.perf_counter()

        with tracer.span("finalization"):
            block_schedules: Dict[Tuple[str, str], BlockSchedule] = {}
            for entry in entries:
                if degraded_reason is not None:
                    # The frames are only partially reduced; reschedule
                    # each block with the bounded-time fallback instead.
                    sched = degraded_block_schedule(
                        entry.block, self.library, degraded_reason
                    )
                else:
                    sched = BlockSchedule(
                        graph=entry.block.graph,
                        library=self.library,
                        starts=entry.state.frames.as_schedule(),
                        deadline=entry.block.deadline,
                    )
                    sched.validate()
                block_schedules[(entry.process_name, entry.block.name)] = sched

            finished = time.perf_counter()
            telemetry: Dict[str, object] = {
                "phase_times": {
                    "setup": setup_done - started,
                    "reduction_loop": loop_done - setup_done,
                    "finalization": finished - loop_done,
                },
                "wall_time": finished - started,
                "iterations": iterations,
                "counters": (
                    tracer.counters.as_dict() if tracer.enabled else {}
                ),
                "events": len(tracer.events) if tracer.enabled else 0,
            }
            if tracer.enabled:
                gauges = tracer.metrics.gauges_dict()
                if gauges:
                    telemetry["gauges"] = gauges
                histograms = tracer.metrics.histograms_dict()
                if histograms:
                    telemetry["histograms"] = histograms
            if degraded_reason is not None:
                telemetry["degraded"] = {
                    "reason": degraded_reason,
                    "fallback": "list_scheduling",
                }
            if audit is not None:
                telemetry["audit"] = audit.summary()
            result = SystemSchedule(
                system=system,
                library=self.library,
                assignment=assignment,
                periods=periods,
                block_schedules=block_schedules,
                iterations=iterations,
                wall_time=finished - started,
                degraded=degraded_reason is not None,
                telemetry=telemetry,
            )
            result.validate()
        if _log.isEnabledFor(logging.INFO):
            _log.info(
                "scheduled system %r: %d iterations in %.3f s, area %g",
                system.name,
                iterations,
                result.wall_time,
                result.total_area(),
            )
        return result

    # ------------------------------------------------------------------
    # Budget support
    # ------------------------------------------------------------------
    @staticmethod
    def _system_state_hash(entries: List["_Entry"]) -> int:
        """Oscillation-detector state: every mobile frame in the system.

        Per-entry hashes are memoized against the frame table's version
        counter — only the block a commit actually touched rehashes, the
        rest revalidate with one integer comparison.
        """
        parts = []
        for entry in entries:
            frames = entry.state.frames
            version = frames.version()
            memo = entry.hash_memo
            if memo is not None and memo[0] == version:
                parts.append(memo[1])
            else:
                value = frames_state_hash(entry.state, frames.unfixed())
                entry.hash_memo = (version, value)
                parts.append(value)
        return hash(tuple(parts))

    # ------------------------------------------------------------------
    # Force evaluation
    # ------------------------------------------------------------------
    def _select_reduction(
        self,
        entries: List[_Entry],
        coupling: "_GlobalCoupling",
        caches: Optional[List[BlockSelectionCache]] = None,
        *,
        kernel: Optional["_SystemKernel"] = None,
        selector: Optional["_ScalarSelector"] = None,
        collect: Optional[list] = None,
        want_detail: bool = False,
    ) -> Optional[Tuple[int, str, bool, float, int, Optional[Tuple]]]:
        """Pick the IFDS reduction with the largest weighted force difference.

        Returns ``(entry_index, op_id, shrink_low, score, candidates,
        detail)`` where ``candidates`` is the number of mobile operations
        examined, or ``None`` once every frame has collapsed.  With
        ``caches`` the ``(force_low, force_high)`` pair of each clean
        operation is reused from the previous scan; the fold over
        candidates is replayed in the same order either way, so the
        selected reduction is identical.  With ``kernel`` the whole scan
        is delegated to the :class:`_SystemKernel` flat arrays.

        Audit support is opt-in and observation-only: with ``want_detail``
        the winner's ``(force_low, force_high, cache_kind)`` triple is
        returned as ``detail`` (else ``None``); with ``collect`` a
        :class:`~repro.obs.audit.CandidateAudit` is appended for every
        candidate examined.  Neither changes the scan order or the
        winner.
        """
        if kernel is not None:
            return kernel.select(collect=collect, want_detail=want_detail)
        if selector is not None:
            return selector.select(collect, want_detail)
        track = want_detail or collect is not None
        best_score = None
        best: Optional[Tuple[int, str, bool]] = None
        best_detail: Optional[Tuple[float, float, str]] = None
        kind = CACHE_UNCACHED
        candidates = 0
        for index, entry in enumerate(entries):
            cache = caches[index] if caches is not None else None
            unfixed = entry.state.frames.unfixed()
            if not unfixed:
                continue
            for op_id in unfixed:
                candidates += 1
                lo, hi = entry.state.frames.frame(op_id)
                if cache is None:
                    force_low = self._placement_force(index, entry, coupling, op_id, lo)
                    force_high = self._placement_force(index, entry, coupling, op_id, hi)
                    if track:
                        kind = CACHE_UNCACHED
                else:
                    cached = cache.get(op_id)
                    if cached is None:
                        cached = self._evaluate_cached(index, entry, coupling, op_id, lo, hi)
                        cache.put(op_id, cached)
                        if track:
                            kind = CACHE_FRESH
                    elif cached.global_types:
                        versions = tuple(
                            coupling.s_version(t) for t in cached.global_types
                        )
                        if versions != cached.versions:
                            # Only S moved (a commit in another process):
                            # re-assemble from the cached recipe.
                            count(FORCE_CACHE_ASSEMBLIES)
                            if cached.terms_low is not None:
                                cached.force_low = self._assemble(
                                    cached.terms_low, coupling
                                )
                            if cached.terms_high is not None:
                                cached.force_high = self._assemble(
                                    cached.terms_high, coupling
                                )
                            cached.versions = versions
                            if track:
                                kind = CACHE_ASSEMBLED
                        elif track:
                            kind = CACHE_HIT
                    elif track:
                        kind = CACHE_HIT
                    force_low, force_high = cached.force_low, cached.force_high
                eta = 1.0 if hi - lo + 1 <= 2 else 0.5
                score = eta * abs(force_low - force_high)
                if collect is not None:
                    collect.append(
                        CandidateAudit(
                            process=entry.process_name,
                            block=entry.block.name,
                            op=op_id,
                            force_low=force_low,
                            force_high=force_high,
                            score=score,
                            cache=kind,
                        )
                    )
                if best_score is None or score > best_score + 1e-12:
                    best_score = score
                    best = (index, op_id, force_low > force_high + 1e-12)
                    if track:
                        best_detail = (force_low, force_high, kind)
        if best is None:
            return None
        assert best_score is not None
        return best + (best_score, candidates, best_detail)

    def _evaluate_cached(
        self,
        entry_index: int,
        entry: _Entry,
        coupling: "_GlobalCoupling",
        op_id: str,
        lo: int,
        hi: int,
    ) -> _CachedScore:
        """Fresh evaluation of both frame ends, packaged with its recipe."""
        force_low, terms_low = self._force_terms(entry_index, entry, coupling, op_id, lo)
        force_high, terms_high = self._force_terms(entry_index, entry, coupling, op_id, hi)
        global_types: List[str] = []
        for terms in (terms_low, terms_high):
            if terms is None:
                continue
            for type_name, _weight, delta_s, _self_dot in terms:
                if type_name is not None and type_name not in global_types:
                    global_types.append(type_name)
        versions = tuple(coupling.s_version(t) for t in global_types)
        return _CachedScore(
            force_low, force_high, terms_low, terms_high, tuple(global_types), versions
        )

    def _assemble(self, terms, coupling: "_GlobalCoupling") -> float:
        """Fold a force recipe against the *current* system distributions.

        Produces bit-identical results to :meth:`_force_terms` as long as
        the recipe is not stale: scalar terms are reused verbatim and
        global terms recompute exactly the Hooke expression
        ``w * (delta_S . S + alpha * delta_S . delta_S)``.
        """
        total = 0.0
        for type_name, value_or_weight, delta_s, self_dot in terms:
            if type_name is None:
                total += value_or_weight
            else:
                total += value_or_weight * (
                    float(np.dot(delta_s, coupling.system_distribution(type_name)))
                    + self.lookahead * self_dot
                )
        return total

    def _invalidate_caches(
        self,
        caches: List[BlockSelectionCache],
        entries: List[_Entry],
        coupling: "_GlobalCoupling",
        entry_index: int,
        effect: ReductionEffect,
        scopes: Mapping[str, str],
    ) -> None:
        """Drop exactly the cached recipes the committed reduction perturbed.

        Within the committing block the local dirty-set rules apply
        (changed frames, their direct neighbors, touched types).  For a
        touched **global** type the perturbation travels through the
        coupling — but only as far as the re-folded arrays actually
        changed, which :meth:`_GlobalCoupling.refresh` reports per type:

        * ``"clean"`` — the displacement was hidden under the modulo
          maximum; ``Q`` is unchanged and no other block is dirty.
        * ``"process"`` / ``"system"`` — ``Q`` changed, so sibling blocks
          of the *same* process see it through eq. 9's cross-block
          maximum and the old process maximum: their recipes are stale.
          Blocks of **other** processes keep valid recipes even when
          ``S`` changed (``"system"``), because their ``delta_S`` only
          reads their own process's coupling state; the S-version bump
          makes them re-assemble cheaply at the next scan.

        With global balancing disabled the force of a block depends only
        on its own ``Q``, so no cross-block invalidation is needed at all.
        """
        caches[entry_index].invalidate_after_commit(effect)
        if not (self.periodical_alignment and self.global_balancing):
            return
        process_name = entries[entry_index].process_name
        for type_name, scope in scopes.items():
            if scope == "clean":
                continue
            for index, entry in enumerate(entries):
                if index == entry_index or entry.process_name != process_name:
                    continue
                caches[index].invalidate_type(type_name)

    def _placement_force(
        self,
        entry_index: int,
        entry: _Entry,
        coupling: "_GlobalCoupling",
        op_id: str,
        start: int,
    ) -> float:
        """Modified force F' (§5.3) of tentatively placing ``op_id`` at ``start``."""
        return self._force_terms(entry_index, entry, coupling, op_id, start)[0]

    def _force_terms(
        self,
        entry_index: int,
        entry: _Entry,
        coupling: "_GlobalCoupling",
        op_id: str,
        start: int,
    ) -> Tuple[float, Optional[list]]:
        """Force F' of a tentative placement, plus its cacheable recipe.

        Returns ``(force, terms)``.  ``terms`` is ``None`` for a purely
        local placement (every displaced type local: the force is a plain
        constant until the block is perturbed — delegated to the shared
        :func:`repro.scheduling.forces.force_from_deltas` kernel).
        Otherwise it is the ordered per-type term list consumed by
        :meth:`_assemble`: ``(None, scalar, None, None)`` for frozen local
        (and unbalanced-global) terms, ``(type, weight, delta_S,
        delta_S . delta_S)`` for globally balanced ones.
        """
        deltas = entry.state.placement_deltas(op_id, start)
        if not self.periodical_alignment or not any(
            coupling.is_shared(entry.process_name, type_name) for type_name in deltas
        ):
            force = force_from_deltas(
                entry.state.dist, deltas, lookahead=self.lookahead, weights=self.weights
            )
            return force, None
        total = 0.0
        terms: list = []
        for type_name, delta in deltas.items():
            weight = (
                1.0 if self.weights is None else float(self.weights.get(type_name, 1.0))
            )
            if coupling.is_shared(entry.process_name, type_name):
                period = coupling.period(type_name)
                displaced = entry.state.dist.array(type_name) + delta
                q_new = modulo_max(displaced, period)
                if not self.global_balancing:
                    q_old = coupling.block_q(entry_index, type_name)
                    value = weight * hooke_force(q_old, q_new - q_old, self.lookahead)
                    terms.append((None, value, None, None))
                else:
                    others = coupling.other_blocks_max(entry_index, type_name)
                    m_new = np.maximum(others, q_new)
                    m_old = coupling.process_max(entry.process_name, type_name)
                    delta_s = m_new - m_old
                    # Same expression as hooke_force(S, delta_s), spelled
                    # out so the recipe keeps the delta_S . delta_S dot.
                    count(FORCE_EVALUATIONS)
                    self_dot = float(np.dot(delta_s, delta_s))
                    value = weight * (
                        float(
                            np.dot(delta_s, coupling.system_distribution(type_name))
                        )
                        + self.lookahead * self_dot
                    )
                    terms.append((type_name, weight, delta_s, self_dot))
            else:
                value = weight * hooke_force(
                    entry.state.dist.array(type_name), delta, self.lookahead
                )
                terms.append((None, value, None, None))
            total += value
        return total, terms


class _GlobalCoupling:
    """Modulo-transformed and balanced distributions of all global types.

    Maintains, per (block, global type), the block's modulo-max transform
    ``Q`` (eq. 7); per (process, type) the block maximum ``M`` (eq. 9); and
    per type the system sum ``S`` over the sharing group (§5.2).  The
    sibling maxima of eq. 9 (``other_blocks_max``) are memoized per
    ``(block, type)`` and invalidated only when a sibling's ``Q`` changes.
    """

    def __init__(
        self,
        entries: List[_Entry],
        assignment: ResourceAssignment,
        periods: PeriodAssignment,
    ) -> None:
        self.entries = entries
        self.assignment = assignment
        self.periods = periods
        self._q: Dict[Tuple[int, str], np.ndarray] = {}
        self._m: Dict[Tuple[str, str], np.ndarray] = {}
        # Persistent (processes, period) stack of the group's M rows per
        # type: a process rebuild rewrites one row in place and the
        # system rebuild reduces the stack, instead of re-gathering the
        # group's rows into a fresh list every commit.
        self._m_rows: Dict[str, np.ndarray] = {}
        self._m_rowidx: Dict[Tuple[str, str], int] = {}
        self._s: Dict[str, np.ndarray] = {}
        self._s_version: Dict[str, int] = {}
        self._others: Dict[Tuple[int, str], np.ndarray] = {}
        self._process_entries: Dict[str, List[int]] = {}
        for index, entry in enumerate(entries):
            self._process_entries.setdefault(entry.process_name, []).append(index)
            for type_name in self._shared_types(entry):
                self._q[(index, type_name)] = self._fold(index, type_name)
        for type_name in assignment.global_types:
            for process_name in assignment.group(type_name):
                self._rebuild_process(process_name, type_name)
            self._rebuild_system(type_name)

    # -- queries --------------------------------------------------------
    def period(self, type_name: str) -> int:
        return self.periods.period(type_name)

    def is_shared(self, process_name: str, type_name: str) -> bool:
        return self.assignment.shares_globally(type_name, process_name)

    def block_q(self, entry_index: int, type_name: str) -> np.ndarray:
        key = (entry_index, type_name)
        if key not in self._q:
            self._q[key] = self._fold(entry_index, type_name)
        return self._q[key]

    def process_max(self, process_name: str, type_name: str) -> np.ndarray:
        return self._m[(process_name, type_name)]

    def system_distribution(self, type_name: str) -> np.ndarray:
        return self._s[type_name]

    def s_version(self, type_name: str) -> int:
        """Monotonic version of ``S``; bumps whenever the sum is rebuilt.

        Cached force recipes are tagged with the versions of the types
        they touch, so a scan can tell "re-assemble against the new S"
        apart from "reuse the assembled force verbatim".
        """
        return self._s_version.get(type_name, 0)

    def other_blocks_max(self, entry_index: int, type_name: str) -> np.ndarray:
        """Max of the sibling blocks' Q arrays (eq. 9 without this block).

        Memoized per ``(block, type)``; :meth:`refresh` drops the memo of
        every same-process sibling when a block's ``Q`` changes.  The
        returned array is read-only.
        """
        key = (entry_index, type_name)
        cached = self._others.get(key)
        if cached is not None:
            return cached
        process_name = self.entries[entry_index].process_name
        period = self.period(type_name)
        result = np.zeros(period, dtype=float)
        entries = self.entries
        for index in self._process_entries.get(process_name, ()):
            if index == entry_index:
                continue
            if type_name in entries[index].state.dist.type_names:
                np.maximum(result, self.block_q(index, type_name), out=result)
        self._others[key] = result
        return result

    # -- updates ---------------------------------------------------------
    def refresh(self, entry_index: int, touched_types) -> Dict[str, str]:
        """Re-fold after a committed reduction changed some distributions.

        Returns, per touched *shared* type, how far the perturbation
        actually propagated:

        * ``"clean"`` — the re-folded ``Q`` is unchanged (the displacement
          was hidden under the modulo maximum); nothing downstream moved.
        * ``"process"`` — ``Q`` changed but the process maximum ``M`` did
          not, so the system distribution ``S`` is also unchanged.
        * ``"system"`` — ``M`` (and therefore ``S``) changed.
        """
        entry = self.entries[entry_index]
        scopes: Dict[str, str] = {}
        for type_name in touched_types:
            if not self.is_shared(entry.process_name, type_name):
                continue
            key = (entry_index, type_name)
            old_q = self._q.get(key)
            new_q = self._fold(entry_index, type_name)
            if old_q is not None and np.array_equal(old_q, new_q):
                # Hidden displacement: Q, M, S all stay put — skip the
                # rebuilds entirely.
                scopes[type_name] = "clean"
                continue
            self._q[key] = new_q
            for index in self._process_entries.get(entry.process_name, ()):
                if index != entry_index:
                    self._others.pop((index, type_name), None)
            if self._rebuild_process(entry.process_name, type_name):
                self._rebuild_system(type_name)
                scopes[type_name] = "system"
            else:
                scopes[type_name] = "process"
        return scopes

    # -- internals --------------------------------------------------------
    def _shared_types(self, entry: _Entry) -> List[str]:
        return [
            type_name
            for type_name in entry.state.dist.type_names
            if self.is_shared(entry.process_name, type_name)
        ]

    def _fold(self, entry_index: int, type_name: str) -> np.ndarray:
        entry = self.entries[entry_index]
        period = self.period(type_name)
        if type_name not in entry.state.dist.type_names:
            return np.zeros(period, dtype=float)
        return modulo_max(entry.state.dist.array(type_name), period)

    def _rebuild_process(self, process_name: str, type_name: str) -> bool:
        """Recompute the process maximum ``M``; returns whether it changed."""
        period = self.period(type_name)
        result = np.zeros(period, dtype=float)
        entries = self.entries
        for index in self._process_entries.get(process_name, ()):
            if type_name in entries[index].state.dist.type_names:
                np.maximum(result, self.block_q(index, type_name), out=result)
        key = (process_name, type_name)
        old = self._m.get(key)
        changed = old is None or not np.array_equal(old, result)
        self._m[key] = result
        if changed:
            rows = self._m_rows.get(type_name)
            if rows is not None:
                position = self._m_rowidx.get(key)
                if position is not None:
                    rows[position] = result
        return changed

    def _rebuild_system(self, type_name: str) -> None:
        period = self.period(type_name)
        rows = self._m_rows.get(type_name)
        if rows is None:
            group = list(self.assignment.group(type_name))
            if group:
                rows = np.empty((len(group), period), dtype=float)
                for position, process_name in enumerate(group):
                    self._m_rowidx[(process_name, type_name)] = position
                    rows[position] = self._m[(process_name, type_name)]
                self._m_rows[type_name] = rows
        if rows is not None:
            # Sequential left-fold over the stacked rows: ``np.add.reduce``
            # over a python list converts to exactly this 2-D stack first
            # (and lengths this small never take numpy's pairwise path),
            # so the sum is value-identical to the old list form.
            result = np.add.reduce(rows, axis=0)
        else:
            result = np.zeros(period, dtype=float)
        self._s[type_name] = result
        self._s_version[type_name] = self._s_version.get(type_name, 0) + 1
