"""Modulo mapping and the modulo-maximum transformation (eqs. 1, 7, 8).

A global resource type with period ``P`` folds the absolute time axis onto
period slots ``tau = t mod P`` (eq. 1).  An access authorization granted to
a process for slot ``tau`` is valid at *every* absolute step mapping to
``tau`` — this is what makes sharing safe for processes with unknown
relative start times.

The **modulo-maximum transformation** (eq. 7) folds a distribution function
``D`` over a block's time range onto the period:

    Q(tau) = max{ D(t) : t ≡ tau (mod P) }

Because the slot-capacity a process needs is the *maximum* usage over the
steps mapping to a slot (at any absolute time only one of them is live),
displacements of ``D`` that stay below the slot maximum are "hidden": they
change ``Q`` not at all and therefore cost no force — which is precisely
how the modified scheduler aligns operations periodically (§5.1).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import PeriodError
from ..obs.counters import MODULO_MAX_TRANSFORMS, count


def fold(step: int, period: int) -> int:
    """Map an absolute time step to its period slot (eq. 1)."""
    if period < 1:
        raise PeriodError(f"period must be >= 1, got {period}")
    return step % period


def slot_steps(slot: int, period: int, horizon: int) -> list:
    """All time steps in ``[0, horizon)`` mapping to ``slot`` (figure 1)."""
    if period < 1:
        raise PeriodError(f"period must be >= 1, got {period}")
    if not 0 <= slot < period:
        raise PeriodError(f"slot {slot} outside [0, {period})")
    return list(range(slot, horizon, period))


def _fold_padded(array: np.ndarray, period: int) -> np.ndarray:
    """Pad-to-multiple + reshape-max fold shared by every eq. 7 variant.

    Maximum is exact and order-free, so the reshaped column maximum is
    value-identical to the historical chunked stride loop for floats and
    integers alike.  That loop folded chunks into a zeros accumulator,
    which floors every slot at the dtype's zero — empty slots stay 0 and
    negative cancellation residue (e.g. ``-1e-17`` from a hidden
    displacement) clamps to 0 exactly as before; the final ``maximum``
    with 0 reproduces that floor bit-for-bit.
    """
    remainder = array.size % period
    if remainder:
        pad = np.zeros(period - remainder, dtype=array.dtype)
        array = np.concatenate((array, pad))
    if not array.size:
        return np.zeros(period, dtype=array.dtype)
    folded = array.reshape(-1, period).max(axis=0)
    return np.maximum(folded, 0, out=folded)


def modulo_max(values: Sequence[float], period: int) -> np.ndarray:
    """Modulo-maximum transformation of a distribution (eq. 7).

    Args:
        values: Distribution over a block's time range ``0 .. len-1``.
        period: Period of the global resource type.

    Returns:
        Array of length ``period``; entry ``tau`` is the maximum of
        ``values`` over the steps congruent to ``tau``.  Slots with no
        congruent step inside the range (period longer than the range)
        are 0.
    """
    if period < 1:
        raise PeriodError(f"period must be >= 1, got {period}")
    count(MODULO_MAX_TRANSFORMS)
    return _fold_padded(np.asarray(values, dtype=float), period)


def modulo_max_reference(values: Sequence[float], period: int) -> np.ndarray:
    """Scalar-stride reference implementation of :func:`modulo_max`.

    Kept as the oracle for the kernel property tests and the per-kernel
    benchmark (``benchmarks/bench_kernels.py``); the production
    :func:`modulo_max` is the vectorized pad + reshape-max form and must
    stay value-identical to this loop.
    """
    if period < 1:
        raise PeriodError(f"period must be >= 1, got {period}")
    array = np.asarray(values, dtype=float)
    folded = np.zeros(period, dtype=float)
    for offset in range(0, array.size, period):
        chunk = array[offset : offset + period]
        np.maximum(folded[: chunk.size], chunk, out=folded[: chunk.size])
    return folded


def modulo_max_int(values: Sequence[int], period: int) -> np.ndarray:
    """Integer variant of :func:`modulo_max` (for final usage counts)."""
    if period < 1:
        raise PeriodError(f"period must be >= 1, got {period}")
    return _fold_padded(np.asarray(values, dtype=int), period)


def modulo_max_rows(matrix: np.ndarray, period: int) -> np.ndarray:
    """Row-wise modulo-maximum transformation (eq. 7, batched form).

    Folds every row of a ``(n, horizon)`` matrix onto the period in one
    pad + reshape-max pass: the batched core of the array-backed force
    kernels (:mod:`repro.scheduling.kernels`).  Each output row is
    value-identical to ``modulo_max(matrix[i], period)`` — maximum is
    exact, so batching cannot perturb a single bit.

    Returns a ``(n, period)`` array of the same dtype kind (floats stay
    float64, ints stay int64 — no silent downcasts).
    """
    if period < 1:
        raise PeriodError(f"period must be >= 1, got {period}")
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise PeriodError(f"expected a 2-d row matrix, got shape {matrix.shape}")
    n, horizon = matrix.shape
    count(MODULO_MAX_TRANSFORMS, n)
    if not n:
        return np.zeros((0, period), dtype=matrix.dtype)
    remainder = horizon % period
    full = horizon - remainder
    if full:
        # Fold the whole-period prefix, then max the ragged tail into the
        # leading columns — same result as padding with zeros (max is
        # exact; the implicit pad can never win against the relu below),
        # without allocating the padded copy.
        folded = matrix[:, :full].reshape(n, -1, period).max(axis=1)
        if remainder:
            np.maximum(
                folded[:, :remainder], matrix[:, full:], out=folded[:, :remainder]
            )
    else:
        folded = np.zeros((n, period), dtype=matrix.dtype)
        folded[:, :remainder] = matrix
    return np.maximum(folded, 0, out=folded)


def modulo_delta(
    distribution: np.ndarray, delta: np.ndarray, period: int
) -> np.ndarray:
    """Change of the modulo-maximum transform under a displacement (eq. 8).

    Returns ``Q(D + delta) - Q(D)``; entries are zero wherever the
    displacement is hidden below the slot maximum.
    """
    before = modulo_max(distribution, period)
    after = modulo_max(distribution + delta, period)
    return after - before
