"""Modulo mapping and the modulo-maximum transformation (eqs. 1, 7, 8).

A global resource type with period ``P`` folds the absolute time axis onto
period slots ``tau = t mod P`` (eq. 1).  An access authorization granted to
a process for slot ``tau`` is valid at *every* absolute step mapping to
``tau`` — this is what makes sharing safe for processes with unknown
relative start times.

The **modulo-maximum transformation** (eq. 7) folds a distribution function
``D`` over a block's time range onto the period:

    Q(tau) = max{ D(t) : t ≡ tau (mod P) }

Because the slot-capacity a process needs is the *maximum* usage over the
steps mapping to a slot (at any absolute time only one of them is live),
displacements of ``D`` that stay below the slot maximum are "hidden": they
change ``Q`` not at all and therefore cost no force — which is precisely
how the modified scheduler aligns operations periodically (§5.1).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import PeriodError
from ..obs.counters import MODULO_MAX_TRANSFORMS, count


def fold(step: int, period: int) -> int:
    """Map an absolute time step to its period slot (eq. 1)."""
    if period < 1:
        raise PeriodError(f"period must be >= 1, got {period}")
    return step % period


def slot_steps(slot: int, period: int, horizon: int) -> list:
    """All time steps in ``[0, horizon)`` mapping to ``slot`` (figure 1)."""
    if period < 1:
        raise PeriodError(f"period must be >= 1, got {period}")
    if not 0 <= slot < period:
        raise PeriodError(f"slot {slot} outside [0, {period})")
    return list(range(slot, horizon, period))


def modulo_max(values: Sequence[float], period: int) -> np.ndarray:
    """Modulo-maximum transformation of a distribution (eq. 7).

    Args:
        values: Distribution over a block's time range ``0 .. len-1``.
        period: Period of the global resource type.

    Returns:
        Array of length ``period``; entry ``tau`` is the maximum of
        ``values`` over the steps congruent to ``tau``.  Slots with no
        congruent step inside the range (period longer than the range)
        are 0.
    """
    if period < 1:
        raise PeriodError(f"period must be >= 1, got {period}")
    count(MODULO_MAX_TRANSFORMS)
    array = np.asarray(values, dtype=float)
    folded = np.zeros(period, dtype=float)
    for offset in range(0, array.size, period):
        chunk = array[offset : offset + period]
        np.maximum(folded[: chunk.size], chunk, out=folded[: chunk.size])
    return folded


def modulo_max_int(values: Sequence[int], period: int) -> np.ndarray:
    """Integer variant of :func:`modulo_max` (for final usage counts)."""
    if period < 1:
        raise PeriodError(f"period must be >= 1, got {period}")
    array = np.asarray(values, dtype=int)
    folded = np.zeros(period, dtype=int)
    for offset in range(0, array.size, period):
        chunk = array[offset : offset + period]
        np.maximum(folded[: chunk.size], chunk, out=folded[: chunk.size])
    return folded


def modulo_delta(
    distribution: np.ndarray, delta: np.ndarray, period: int
) -> np.ndarray:
    """Change of the modulo-maximum transform under a displacement (eq. 8).

    Returns ``Q(D + delta) - Q(D)``; entries are zero wherever the
    displacement is hidden below the slot maximum.
    """
    before = modulo_max(distribution, period)
    after = modulo_max(distribution + delta, period)
    return after - before
