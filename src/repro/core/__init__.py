"""Core contribution: time-constrained modulo scheduling with global sharing."""

from .auto_assignment import ScopeDecision, auto_assignment, decide_scopes
from .balancing import balance, process_max, system_sum
from .modulo import fold, modulo_delta, modulo_max, modulo_max_int, slot_steps
from .periods import (
    PeriodAssignment,
    candidate_periods,
    divisors,
    enumerate_period_assignments,
    estimate_enumeration_size,
    is_harmonic,
    lcm_all,
    suggest_periods,
)
from .exhaustive import ExhaustiveReport, exhaustive_interleaving_check
from .merging import merge_system, schedule_merged
from .offsets import OffsetOutcome, optimize_offsets
from .period_search import SearchOutcome, optimize_periods
from .rc_modulo import RCModuloResult, RCModuloScheduler
from .result import SystemSchedule
from .scheduler import ModuloSystemScheduler
from .verify import VerificationReport, verify, verify_system_schedule

__all__ = [
    "ExhaustiveReport",
    "ModuloSystemScheduler",
    "OffsetOutcome",
    "PeriodAssignment",
    "RCModuloResult",
    "RCModuloScheduler",
    "ScopeDecision",
    "SearchOutcome",
    "SystemSchedule",
    "VerificationReport",
    "auto_assignment",
    "balance",
    "candidate_periods",
    "decide_scopes",
    "divisors",
    "enumerate_period_assignments",
    "estimate_enumeration_size",
    "exhaustive_interleaving_check",
    "fold",
    "is_harmonic",
    "lcm_all",
    "merge_system",
    "modulo_delta",
    "modulo_max",
    "modulo_max_int",
    "optimize_offsets",
    "optimize_periods",
    "process_max",
    "schedule_merged",
    "slot_steps",
    "suggest_periods",
    "system_sum",
    "verify",
    "verify_system_schedule",
]
