"""Behavioral front end: arithmetic statements compiled to dataflow graphs.

The paper's implementation sits on the Olympus synthesis system, whose
input is a behavioral HDL.  This module provides the corresponding "front
door" for this library: a tiny statement language

::

    x1 = x + dx
    u1 = u - (3 * x) * (u * dx) - (3 * y) * dx
    flag = x1 < a

compiled directly to a :class:`~repro.ir.dfg.DataFlowGraph`.  Each binary
operator application becomes one operation node; identifiers defined by an
earlier statement become data-dependence edges, all other identifiers and
numeric literals are primary inputs.  The value of statement ``t = ...``
is produced by the node named ``t`` (intermediates are ``t#1``, ``t#2``,
…), so generated graphs stay readable.

Grammar (classic precedence, ``*`` over ``+``/``-`` over ``<``)::

    statement := IDENT '=' compare
    compare   := sum ( '<' sum )?
    sum       := product ( ('+' | '-') product )*
    product   := atom ( '*' atom )*
    atom      := IDENT | NUMBER | '(' compare ')'
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..errors import GraphError
from .dfg import DataFlowGraph
from .operation import OpKind

_TOKEN = re.compile(
    r"\s*(?:(?P<ident>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<number>\d+(?:\.\d+)?)"
    r"|(?P<op>[-+*<=()]))"
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN.match(text, position)
        if match is None:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise GraphError(f"behavior: cannot tokenize {remainder[:20]!r}")
        position = match.end()
        if match.lastgroup == "ident":
            tokens.append(("ident", match.group("ident")))
        elif match.lastgroup == "number":
            tokens.append(("number", match.group("number")))
        else:
            tokens.append(("op", match.group("op")))
    return tokens


class BehaviorParser:
    """Compiles statements into an existing graph with a symbol table."""

    def __init__(
        self,
        graph: DataFlowGraph,
        *,
        guard: Optional[Tuple[str, str]] = None,
    ) -> None:
        self.graph = graph
        #: name -> producing operation id (None for primary inputs seen)
        self.symbols: Dict[str, Optional[str]] = {}
        self.guard = guard
        self._tokens: List[Tuple[str, str]] = []
        self._index = 0
        self._target = ""
        self._counter = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def statement(
        self, text: str, *, guard: Optional[Tuple[str, str]] = None
    ) -> str:
        """Compile one ``target = expression`` statement.

        Returns the operation id producing the target value.  A pure-copy
        statement (``y = x``) is rejected: there is nothing to schedule.
        """
        self._tokens = _tokenize(text)
        self._index = 0
        target = self._expect("ident", "target name")
        if target in self.symbols:
            raise GraphError(f"behavior: {target!r} assigned twice")
        equals = self._next()
        if equals != ("op", "="):
            raise GraphError(f"behavior: expected '=' after {target!r}")
        self._target = target
        self._counter = 0
        active_guard = guard if guard is not None else self.guard
        producer = self._compare(active_guard)
        if producer is None:
            raise GraphError(
                f"behavior: statement for {target!r} computes nothing "
                "(pure copies/constants are not schedulable operations)"
            )
        if self._index != len(self._tokens):
            kind, value = self._tokens[self._index]
            raise GraphError(f"behavior: trailing input {value!r}")
        # Rename the final node to the target for readable graphs.
        self.symbols[target] = producer
        return producer

    def parse(self, text: str) -> None:
        """Compile a multi-line behavior (``#`` comments allowed)."""
        for raw in text.splitlines():
            line = raw.split("#", 1)[0].strip()
            if line:
                self.statement(line)

    # ------------------------------------------------------------------
    # Recursive descent
    # ------------------------------------------------------------------
    def _peek(self) -> Optional[Tuple[str, str]]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> Optional[Tuple[str, str]]:
        token = self._peek()
        if token is not None:
            self._index += 1
        return token

    def _expect(self, kind: str, what: str) -> str:
        token = self._next()
        if token is None or token[0] != kind:
            raise GraphError(f"behavior: expected {what}")
        return token[1]

    def _emit(
        self,
        kind: OpKind,
        lhs: Optional[str],
        rhs: Optional[str],
        guard: Optional[Tuple[str, str]],
    ) -> str:
        self._counter += 1
        op_id = f"{self._target}#{self._counter}"
        self.graph.add(op_id, kind, guard=guard)
        for operand in (lhs, rhs):
            if operand is not None:
                self.graph.add_edge(operand, op_id)
        return op_id

    def _compare(self, guard) -> Optional[str]:
        left = self._sum(guard)
        token = self._peek()
        if token == ("op", "<"):
            self._next()
            right = self._sum(guard)
            return self._emit(OpKind.CMP, left, right, guard)
        return left

    def _sum(self, guard) -> Optional[str]:
        left = self._product(guard)
        while True:
            token = self._peek()
            if token == ("op", "+"):
                self._next()
                right = self._product(guard)
                left = self._emit(OpKind.ADD, left, right, guard)
            elif token == ("op", "-"):
                self._next()
                right = self._product(guard)
                left = self._emit(OpKind.SUB, left, right, guard)
            else:
                return left

    def _product(self, guard) -> Optional[str]:
        left = self._atom(guard)
        while self._peek() == ("op", "*"):
            self._next()
            right = self._atom(guard)
            left = self._emit(OpKind.MUL, left, right, guard)
        return left

    def _atom(self, guard) -> Optional[str]:
        token = self._next()
        if token is None:
            raise GraphError("behavior: unexpected end of statement")
        kind, value = token
        if kind == "number":
            return None  # constants are free inputs
        if kind == "ident":
            producer = self.symbols.get(value)
            if value not in self.symbols:
                self.symbols[value] = None  # primary input
            return producer
        if token == ("op", "("):
            inner = self._compare(guard)
            if self._next() != ("op", ")"):
                raise GraphError("behavior: missing ')'")
            return inner
        raise GraphError(f"behavior: unexpected token {value!r}")


def parse_behavior(text: str, *, name: str = "behavior") -> DataFlowGraph:
    """Compile a multi-line behavior into a fresh, validated graph."""
    graph = DataFlowGraph(name=name)
    parser = BehaviorParser(graph)
    parser.parse(text)
    graph.validate()
    return graph
