"""Dataflow graphs: operations plus precedence (data dependence) edges.

A :class:`DataFlowGraph` is a directed acyclic graph whose nodes are
:class:`~repro.ir.operation.Operation` objects.  An edge ``u -> v`` means
*v consumes a value produced by u* and therefore may start only after *u*
has finished (start_v >= start_u + latency_u; latencies are a property of
the resource binding and are supplied by the scheduler, not stored here).

The graph is the unit the paper calls the *operation set of a block*
(§4, "Input data for the FDS algorithm is the operation set of a block
represented as a graph describing its precedence constraints").
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import GraphError
from .operation import OpKind, Operation


class DataFlowGraph:
    """A directed acyclic precedence graph over operations.

    The graph preserves insertion order of operations, which gives all
    algorithms in this library a deterministic iteration order.
    """

    def __init__(self, name: str = "dfg") -> None:
        self.name = name
        self._ops: Dict[str, Operation] = {}
        self._succs: Dict[str, List[str]] = {}
        self._preds: Dict[str, List[str]] = {}
        self._topo_cache: Optional[List[str]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_operation(self, op: Operation) -> Operation:
        """Add an operation node.  Raises :class:`GraphError` on duplicate ids."""
        if op.op_id in self._ops:
            raise GraphError(f"duplicate operation id {op.op_id!r} in graph {self.name!r}")
        self._ops[op.op_id] = op
        self._succs[op.op_id] = []
        self._preds[op.op_id] = []
        self._topo_cache = None
        return op

    def add(
        self,
        op_id: str,
        kind: OpKind,
        *,
        name: Optional[str] = None,
        guard: Optional[Tuple[str, str]] = None,
    ) -> Operation:
        """Convenience: create and add an operation in one call."""
        return self.add_operation(
            Operation(op_id=op_id, kind=kind, name=name, guard=guard)
        )

    def add_edge(self, src: str, dst: str) -> None:
        """Add a precedence edge ``src -> dst``.

        Duplicate edges are ignored; self-loops and edges that would create
        a cycle raise :class:`GraphError`.
        """
        if src not in self._ops:
            raise GraphError(f"unknown source operation {src!r}")
        if dst not in self._ops:
            raise GraphError(f"unknown destination operation {dst!r}")
        if src == dst:
            raise GraphError(f"self-loop on operation {src!r}")
        if dst in self._succs[src]:
            return
        self._succs[src].append(dst)
        self._preds[dst].append(src)
        self._topo_cache = None
        if self._creates_cycle():
            # Roll back so the graph stays usable after the error.
            self._succs[src].remove(dst)
            self._preds[dst].remove(src)
            self._topo_cache = None
            raise GraphError(f"edge {src!r} -> {dst!r} would create a cycle")

    def add_edges(self, edges: Iterable[Tuple[str, str]]) -> None:
        """Add many edges at once."""
        for src, dst in edges:
            self.add_edge(src, dst)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ops)

    def __contains__(self, op_id: str) -> bool:
        return op_id in self._ops

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._ops.values())

    def operation(self, op_id: str) -> Operation:
        """Look up an operation by id."""
        try:
            return self._ops[op_id]
        except KeyError:
            raise GraphError(f"unknown operation {op_id!r} in graph {self.name!r}") from None

    @property
    def operations(self) -> List[Operation]:
        """All operations in insertion order."""
        return list(self._ops.values())

    @property
    def op_ids(self) -> List[str]:
        """All operation ids in insertion order."""
        return list(self._ops.keys())

    @property
    def edges(self) -> List[Tuple[str, str]]:
        """All precedence edges as ``(src, dst)`` pairs."""
        return [(src, dst) for src, dsts in self._succs.items() for dst in dsts]

    def successors(self, op_id: str) -> List[str]:
        """Direct successors (consumers) of an operation."""
        self.operation(op_id)
        return list(self._succs[op_id])

    def predecessors(self, op_id: str) -> List[str]:
        """Direct predecessors (producers) of an operation."""
        self.operation(op_id)
        return list(self._preds[op_id])

    def sources(self) -> List[str]:
        """Operations with no predecessors."""
        return [oid for oid in self._ops if not self._preds[oid]]

    def sinks(self) -> List[str]:
        """Operations with no successors."""
        return [oid for oid in self._ops if not self._succs[oid]]

    def count_by_kind(self) -> Dict[OpKind, int]:
        """Histogram of operation kinds."""
        counts: Dict[OpKind, int] = {}
        for op in self._ops.values():
            counts[op.kind] = counts.get(op.kind, 0) + 1
        return counts

    def operations_of_kind(self, kind: OpKind) -> List[Operation]:
        """All operations of one kind, in insertion order."""
        return [op for op in self._ops.values() if op.kind == kind]

    def conditions(self) -> Dict[str, List[str]]:
        """Conditions appearing in guards, each with its branch labels."""
        conditions: Dict[str, List[str]] = {}
        for op in self._ops.values():
            if op.guard is not None:
                condition, branch = op.guard
                branches = conditions.setdefault(condition, [])
                if branch not in branches:
                    branches.append(branch)
        return conditions

    # ------------------------------------------------------------------
    # Orderings and paths
    # ------------------------------------------------------------------
    def topological_order(self) -> List[str]:
        """Kahn topological order (deterministic: insertion order tie-break)."""
        if self._topo_cache is not None:
            return list(self._topo_cache)
        indegree = {oid: len(self._preds[oid]) for oid in self._ops}
        ready = [oid for oid in self._ops if indegree[oid] == 0]
        order: List[str] = []
        cursor = 0
        while cursor < len(ready):
            oid = ready[cursor]
            cursor += 1
            order.append(oid)
            for succ in self._succs[oid]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self._ops):
            raise GraphError(f"graph {self.name!r} contains a cycle")
        self._topo_cache = order
        return list(order)

    def _creates_cycle(self) -> bool:
        try:
            self.topological_order()
        except GraphError:
            return True
        return False

    def critical_path_length(self, latency_of) -> int:
        """Length (in control steps) of the longest path.

        Args:
            latency_of: callable mapping an :class:`Operation` to its integer
                latency in control steps.

        Returns:
            The minimum number of control steps any schedule needs, i.e.
            ``max over sinks of (finish time under ASAP with the given
            latencies)``.
        """
        finish: Dict[str, int] = {}
        longest = 0
        for oid in self.topological_order():
            op = self._ops[oid]
            start = max((finish[p] for p in self._preds[oid]), default=0)
            finish[oid] = start + int(latency_of(op))
            longest = max(longest, finish[oid])
        return longest

    def subgraph(self, op_ids: Sequence[str], name: Optional[str] = None) -> "DataFlowGraph":
        """Induced subgraph over the given operation ids."""
        keep = set(op_ids)
        sub = DataFlowGraph(name=name or f"{self.name}.sub")
        for oid in self._ops:
            if oid in keep:
                sub.add_operation(self._ops[oid])
        for src, dst in self.edges:
            if src in keep and dst in keep:
                sub.add_edge(src, dst)
        return sub

    def validate(self) -> None:
        """Check structural invariants; raises :class:`GraphError` on failure."""
        self.topological_order()
        for src, dsts in self._succs.items():
            if len(set(dsts)) != len(dsts):
                raise GraphError(f"duplicate edges out of {src!r}")
            for dst in dsts:
                if src not in self._preds[dst]:
                    raise GraphError(f"edge {src!r}->{dst!r} missing reverse link")

    def __repr__(self) -> str:
        return (
            f"DataFlowGraph(name={self.name!r}, ops={len(self._ops)}, "
            f"edges={sum(len(s) for s in self._succs.values())})"
        )
