"""Expression-capture front end for building dataflow graphs.

Instead of enumerating nodes and edges by hand, a behavioral description
can be written with ordinary Python operators::

    b = ExprBuilder("diffeq")
    x, y, u, dx, three = b.inputs("x", "y", "u", "dx", "three")
    x1 = x + dx
    u1 = u - (three * x) * (u * dx) - (three * y) * dx
    b.output("x1", x1)
    b.output("u1", u1)
    dfg = b.build()

Inputs are free values (they do not become graph nodes); every arithmetic
operator application creates one operation node and the data-dependence
edges to the operand-producing operations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import GraphError
from .dfg import DataFlowGraph
from .operation import OpKind


class Value:
    """A value flowing through the expression builder.

    A value either comes from an input (``producer is None``) or from the
    operation node that computes it.
    """

    __slots__ = ("builder", "producer", "name")

    def __init__(self, builder: "ExprBuilder", producer: Optional[str], name: str) -> None:
        self.builder = builder
        self.producer = producer
        self.name = name

    def _binary(self, kind: OpKind, other: "Value") -> "Value":
        if not isinstance(other, Value):
            raise TypeError(
                f"operands must be builder values, got {type(other).__name__}; "
                "use ExprBuilder.constant() for literals"
            )
        if other.builder is not self.builder:
            raise GraphError("cannot combine values from different builders")
        return self.builder._apply(kind, self, other)

    def __add__(self, other: "Value") -> "Value":
        return self._binary(OpKind.ADD, other)

    def __sub__(self, other: "Value") -> "Value":
        return self._binary(OpKind.SUB, other)

    def __mul__(self, other: "Value") -> "Value":
        return self._binary(OpKind.MUL, other)

    def __lt__(self, other: "Value") -> "Value":
        return self._binary(OpKind.CMP, other)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Value({self.name!r})"


class ExprBuilder:
    """Builds a :class:`DataFlowGraph` from operator-overloaded expressions."""

    def __init__(self, name: str = "dfg") -> None:
        self._graph = DataFlowGraph(name=name)
        self._counter = 0
        self._outputs: Dict[str, Value] = {}
        self._built = False

    def input(self, name: str) -> Value:
        """Declare a primary input (does not create a graph node)."""
        return Value(self, producer=None, name=name)

    def inputs(self, *names: str) -> Tuple[Value, ...]:
        """Declare several primary inputs at once."""
        return tuple(self.input(n) for n in names)

    def constant(self, literal) -> Value:
        """Declare a constant; modeled like an input (no node, no latency)."""
        return Value(self, producer=None, name=f"const({literal})")

    def _apply(self, kind: OpKind, lhs: Value, rhs: Value) -> Value:
        if self._built:
            raise GraphError("builder already finalized; create a new ExprBuilder")
        self._counter += 1
        op_id = f"n{self._counter}"
        self._graph.add(op_id, kind)
        for operand in (lhs, rhs):
            if operand.producer is not None:
                self._graph.add_edge(operand.producer, op_id)
        return Value(self, producer=op_id, name=op_id)

    def output(self, name: str, value: Value) -> None:
        """Mark a value as a primary output (for documentation; no node)."""
        if not isinstance(value, Value):
            raise TypeError("output must be a builder value")
        if value.builder is not self:
            raise GraphError("output value belongs to a different builder")
        self._outputs[name] = value

    @property
    def outputs(self) -> Dict[str, str]:
        """Mapping of declared output names to producing operation ids."""
        return {
            name: val.producer if val.producer is not None else f"<input {val.name}>"
            for name, val in self._outputs.items()
        }

    def build(self) -> DataFlowGraph:
        """Finalize and return the graph.  The builder becomes read-only."""
        self._graph.validate()
        self._built = True
        return self._graph
