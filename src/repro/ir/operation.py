"""Operations: the atomic schedulable units of a dataflow graph.

An :class:`Operation` carries a stable identifier, an operation kind (what
function it computes, e.g. addition), and an optional human-readable name.
The mapping from operation kind to the hardware resource type that executes
it lives in :mod:`repro.resources`; the IR stays purely behavioral.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple


class OpKind(enum.Enum):
    """Behavioral operation kinds supported by the IR.

    The paper's evaluation (§7) restricts itself to addition, subtraction
    and multiplication (the comparator of the differential equation solver
    is substituted by a subtraction); the IR supports the common HLS kinds
    so workloads beyond the paper's can be expressed.
    """

    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    CMP = "cmp"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    SHL = "shl"
    SHR = "shr"
    MOV = "mov"
    LOAD = "load"
    STORE = "store"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @property
    def symbol(self) -> str:
        """Short printable symbol, used by table/trace renderers."""
        return _SYMBOLS.get(self, self.value)

    @classmethod
    def from_string(cls, text: str) -> "OpKind":
        """Parse a kind from its value name or printable symbol.

        >>> OpKind.from_string("+") is OpKind.ADD
        True
        >>> OpKind.from_string("mul") is OpKind.MUL
        True
        """
        text = text.strip().lower()
        for kind, symbol in _SYMBOLS.items():
            if text == symbol:
                return kind
        try:
            return cls(text)
        except ValueError:
            raise ValueError(f"unknown operation kind: {text!r}") from None


_SYMBOLS = {
    OpKind.ADD: "+",
    OpKind.SUB: "-",
    OpKind.MUL: "*",
    OpKind.DIV: "/",
    OpKind.CMP: "<",
    OpKind.AND: "&",
    OpKind.OR: "|",
    OpKind.XOR: "^",
    OpKind.NOT: "~",
    OpKind.SHL: "<<",
    OpKind.SHR: ">>",
    OpKind.MOV: "=",
    OpKind.LOAD: "ld",
    OpKind.STORE: "st",
}


@dataclass(frozen=True)
class Operation:
    """One schedulable operation.

    Attributes:
        op_id: Identifier, unique within its :class:`~repro.ir.dfg.DataFlowGraph`.
        kind: The behavioral operation kind.
        name: Optional human-readable label (defaults to ``kind.symbol + op_id``).
        tags: Free-form labels, e.g. to mark the source statement.
        guard: Optional ``(condition, branch)`` pair for conditional
            behavior.  Two operations guarded by the *same condition* but
            *different branches* are mutually exclusive: at most one of
            them executes per block activation, so they may share a
            functional-unit instance even in the same control step
            (classic FDS conditional handling).  One guard level is
            supported; nesting is modeled by separate blocks, as in the
            paper.
    """

    op_id: str
    kind: OpKind
    name: Optional[str] = None
    tags: Tuple[str, ...] = field(default=())
    guard: Optional[Tuple[str, str]] = None

    def __post_init__(self) -> None:
        if not self.op_id:
            raise ValueError("operation id must be a non-empty string")
        if not isinstance(self.kind, OpKind):
            raise TypeError(f"kind must be an OpKind, got {type(self.kind).__name__}")
        if self.guard is not None:
            if (
                not isinstance(self.guard, tuple)
                or len(self.guard) != 2
                or not all(isinstance(part, str) and part for part in self.guard)
            ):
                raise ValueError(
                    "guard must be a (condition, branch) pair of non-empty strings"
                )

    @property
    def label(self) -> str:
        """Display label: explicit name if given, else ``<symbol><id>``."""
        return self.name if self.name else f"{self.kind.symbol}{self.op_id}"

    def excludes(self, other: "Operation") -> bool:
        """Whether this operation is mutually exclusive with ``other``."""
        if self.guard is None or other.guard is None:
            return False
        return self.guard[0] == other.guard[0] and self.guard[1] != other.guard[1]

    def __str__(self) -> str:
        return self.label
