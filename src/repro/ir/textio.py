"""Plain-text serialization for dataflow graphs.

The format is deliberately tiny — one directive per line::

    # comment
    dfg diffeq
    op m1 mul
    op a1 add
    edge m1 a1

Directives:

* ``dfg NAME`` — optional, names the graph (first occurrence wins);
* ``op ID KIND [NAME]`` — declares an operation; KIND is an
  :class:`~repro.ir.operation.OpKind` value name or symbol (``add`` / ``+``);
* ``edge SRC DST`` — declares a precedence edge.

This exists so workloads can be shipped or exchanged as text files and so
graphs survive round-trips in tests.
"""

from __future__ import annotations

from typing import List

from ..errors import GraphError
from .dfg import DataFlowGraph
from .operation import OpKind


def dumps(graph: DataFlowGraph) -> str:
    """Serialize a graph to the text format (deterministic order)."""
    lines: List[str] = [f"dfg {graph.name}"]
    for op in graph:
        parts = [f"op {op.op_id} {op.kind.value}"]
        if op.name:
            parts.append(op.name)
        if op.guard is not None:
            parts.append(f"guard={op.guard[0]}:{op.guard[1]}")
        lines.append(" ".join(parts))
    for src, dst in graph.edges:
        lines.append(f"edge {src} {dst}")
    return "\n".join(lines) + "\n"


def loads(text: str) -> DataFlowGraph:
    """Parse a graph from the text format.  Raises :class:`GraphError` on syntax errors."""
    graph: DataFlowGraph = DataFlowGraph()
    named = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        directive, args = fields[0].lower(), fields[1:]
        if directive == "dfg":
            if len(args) != 1:
                raise GraphError(f"line {lineno}: 'dfg' takes exactly one name")
            if not named:
                graph.name = args[0]
                named = True
        elif directive == "op":
            if len(args) < 2:
                raise GraphError(
                    f"line {lineno}: 'op' takes ID KIND [NAME] [guard=c:b]"
                )
            op_id, kind_text = args[0], args[1]
            try:
                kind = OpKind.from_string(kind_text)
            except ValueError as exc:
                raise GraphError(f"line {lineno}: {exc}") from None
            name = None
            guard = None
            for token in args[2:]:
                if token.startswith("guard="):
                    value = token.split("=", 1)[1]
                    if ":" not in value:
                        raise GraphError(
                            f"line {lineno}: guard must be CONDITION:BRANCH"
                        )
                    condition, branch = value.split(":", 1)
                    guard = (condition, branch)
                elif name is None:
                    name = token
                else:
                    raise GraphError(
                        f"line {lineno}: too many tokens for 'op'"
                    )
            graph.add(op_id, kind, name=name, guard=guard)
        elif directive == "edge":
            if len(args) != 2:
                raise GraphError(f"line {lineno}: 'edge' takes SRC DST")
            graph.add_edge(args[0], args[1])
        else:
            raise GraphError(f"line {lineno}: unknown directive {directive!r}")
    graph.validate()
    return graph


def dump(graph: DataFlowGraph, path) -> None:
    """Serialize a graph to a file path."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(graph))


def load(path) -> DataFlowGraph:
    """Parse a graph from a file path."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())
