"""Intermediate representation: operations, dataflow graphs, processes."""

from .behavior import BehaviorParser, parse_behavior
from .dfg import DataFlowGraph
from .expr import ExprBuilder, Value
from .operation import OpKind, Operation
from .process import Block, Process, SystemSpec
from . import systemio, textio

__all__ = [
    "BehaviorParser",
    "Block",
    "DataFlowGraph",
    "ExprBuilder",
    "OpKind",
    "Operation",
    "Process",
    "SystemSpec",
    "Value",
    "parse_behavior",
    "systemio",
    "textio",
]
