"""Processes, blocks, and system specifications (§3 of the paper).

The paper's model:

* a **block** is a connected subset of a process description whose
  operations receive statically assigned control steps relative to the
  block's (unknown) starting time;
* a **process** is composed of blocks.  Condition **(C1)**: each block on
  its own must be schedulable by the unmodified algorithm (it is a DAG with
  a time constraint).  Condition **(C2)**: two blocks of one process that
  share a resource must never overlap in execution — loop bodies are
  separate blocks, and anything that may overlap must be modeled as a
  separate process;
* a **system** is a set of mutually independent processes, triggered by
  spontaneous events, with no synchronization points between them.

A block's ``deadline`` is its *time range*: all of its operations must
finish within ``deadline`` control steps of the block start (the paper's
"total execution time").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import SpecificationError
from .dfg import DataFlowGraph
from .operation import OpKind, Operation


@dataclass
class Block:
    """A statically scheduled unit with an unknown absolute start time.

    Attributes:
        name: Block name, unique within its process.
        graph: The block's operation set with precedence constraints.
        deadline: Time range in control steps; every operation must finish
            by this many steps after the block starts (time constraint of
            the time-constrained scheduling).
        repeats: Marks the block as a loop body with unbounded iteration
            count (documentation for the simulator; the static schedule of
            a loop body is identical to a plain block per the paper).
    """

    name: str
    graph: DataFlowGraph
    deadline: int
    repeats: bool = False

    def __post_init__(self) -> None:
        if self.deadline <= 0:
            raise SpecificationError(
                f"block {self.name!r}: deadline must be positive, got {self.deadline}"
            )
        if len(self.graph) == 0:
            raise SpecificationError(f"block {self.name!r}: empty operation set")
        self.graph.validate()

    @property
    def operations(self) -> List[Operation]:
        return self.graph.operations

    def kinds_used(self) -> List[OpKind]:
        """Operation kinds appearing in this block, deterministic order."""
        seen: List[OpKind] = []
        for op in self.graph:
            if op.kind not in seen:
                seen.append(op.kind)
        return seen

    def __repr__(self) -> str:
        return f"Block(name={self.name!r}, ops={len(self.graph)}, deadline={self.deadline})"


@dataclass
class Process:
    """An independent task: an ordered collection of non-overlapping blocks.

    Blocks of one process are guaranteed (condition C2) never to execute
    concurrently with each other; their relative start times may still be
    unknown at synthesis time (e.g. separated by data-dependent waits or
    loops with unbounded iteration count).
    """

    name: str
    blocks: List[Block] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [b.name for b in self.blocks]
        if len(set(names)) != len(names):
            raise SpecificationError(f"process {self.name!r}: duplicate block names")

    def add_block(self, block: Block) -> Block:
        if any(b.name == block.name for b in self.blocks):
            raise SpecificationError(
                f"process {self.name!r}: duplicate block name {block.name!r}"
            )
        self.blocks.append(block)
        return block

    def block(self, name: str) -> Block:
        for b in self.blocks:
            if b.name == name:
                return b
        raise SpecificationError(f"process {self.name!r}: no block named {name!r}")

    def kinds_used(self) -> List[OpKind]:
        """Operation kinds appearing anywhere in this process."""
        seen: List[OpKind] = []
        for block in self.blocks:
            for kind in block.kinds_used():
                if kind not in seen:
                    seen.append(kind)
        return seen

    @property
    def operation_count(self) -> int:
        return sum(len(b.graph) for b in self.blocks)

    def __repr__(self) -> str:
        return f"Process(name={self.name!r}, blocks={len(self.blocks)})"


class SystemSpec:
    """A group of mutually independent processes (the scheduling scope).

    This is the whole-system view the paper extends scheduling to:
    "the scope of the scheduling is extended to the processes of the whole
    system" (§1).
    """

    def __init__(self, name: str = "system") -> None:
        self.name = name
        self._processes: Dict[str, Process] = {}

    def add_process(self, process: Process) -> Process:
        if process.name in self._processes:
            raise SpecificationError(f"duplicate process name {process.name!r}")
        if not process.blocks:
            raise SpecificationError(f"process {process.name!r} has no blocks")
        self._processes[process.name] = process
        return process

    def process(self, name: str) -> Process:
        try:
            return self._processes[name]
        except KeyError:
            raise SpecificationError(f"no process named {name!r}") from None

    @property
    def processes(self) -> List[Process]:
        return list(self._processes.values())

    @property
    def process_names(self) -> List[str]:
        return list(self._processes.keys())

    def __len__(self) -> int:
        return len(self._processes)

    def __contains__(self, name: str) -> bool:
        return name in self._processes

    def iter_blocks(self) -> Iterator[Tuple[Process, Block]]:
        """Iterate ``(process, block)`` pairs across the whole system."""
        for process in self._processes.values():
            for block in process.blocks:
                yield process, block

    @property
    def operation_count(self) -> int:
        return sum(p.operation_count for p in self._processes.values())

    def kinds_used(self) -> List[OpKind]:
        seen: List[OpKind] = []
        for process in self._processes.values():
            for kind in process.kinds_used():
                if kind not in seen:
                    seen.append(kind)
        return seen

    def processes_using(self, kind: OpKind) -> List[str]:
        """Names of processes containing at least one operation of ``kind``."""
        return [p.name for p in self._processes.values() if kind in p.kinds_used()]

    def validate(self, latency_of=None) -> None:
        """Check specification invariants.

        With ``latency_of`` given (a callable ``Operation -> int``),
        additionally checks condition (C1) feasibility: each block's
        critical path must fit its deadline.
        """
        if not self._processes:
            raise SpecificationError(f"system {self.name!r} has no processes")
        for process, block in self.iter_blocks():
            block.graph.validate()
            if latency_of is not None:
                needed = block.graph.critical_path_length(latency_of)
                if needed > block.deadline:
                    raise SpecificationError(
                        f"process {process.name!r} block {block.name!r}: critical "
                        f"path {needed} exceeds deadline {block.deadline} (C1 violated)"
                    )

    def __repr__(self) -> str:
        return f"SystemSpec(name={self.name!r}, processes={len(self._processes)})"
