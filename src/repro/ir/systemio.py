"""Plain-text serialization for whole system specifications.

Extends the ``.dfg`` graph format (:mod:`repro.ir.textio`) to a ``.sys``
format describing a complete scheduling problem: the resource library,
the processes with their blocks and deadlines, the scope assignment (S1)
and the periods (S2).  One directive per line::

    system radar
    resource adder    kinds=add       latency=1 area=1
    resource mult     kinds=mul       latency=2 area=4 pipelined ii=1
    process p1
    block p1 main deadline=12 repeats
    op p1 main a1 add
    op p1 main m1 mul
    edge p1 main a1 m1
    global mult p1 p2
    period mult 6

This is what the command-line interface consumes, and it lets scheduling
problems be shipped as a single reviewable text file.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import GraphError, SpecificationError
from .dfg import DataFlowGraph
from .operation import OpKind
from .process import Block, Process, SystemSpec

#: Parse-time sanity caps.  Deadlines and periods size the schedulers'
#: per-step arrays, so an absurd value (typo, fuzzed input) would turn
#: into a memory blowup deep inside scheduling; reject it at the line
#: that declares it instead.
MAX_DEADLINE = 1_000_000
MAX_PERIOD = 1_000_000


class SystemDocument:
    """A parsed ``.sys`` file: system plus resource/scope/period data.

    The resource and period information is kept as plain data here so the
    IR layer stays free of dependencies on the resources/core packages;
    :func:`repro.api.load_problem` turns a document into live objects.
    """

    def __init__(self) -> None:
        self.name: str = "system"
        #: type name -> options dict (kinds, latency, area, pipelined, ii)
        self.resources: Dict[str, Dict[str, object]] = {}
        #: process name -> block name -> (graph, deadline, repeats)
        self.blocks: Dict[str, Dict[str, Tuple[DataFlowGraph, int, bool]]] = {}
        self.process_order: List[str] = []
        #: type name -> process group
        self.globals: Dict[str, List[str]] = {}
        #: type name -> period
        self.periods: Dict[str, int] = {}
        #: (process, block) -> source line of the ``block`` directive,
        #: so build-time errors can still point at a line (0 = unknown,
        #: e.g. for programmatically assembled documents)
        self.block_lines: Dict[Tuple[str, str], int] = {}
        #: per-block behavioral parsers (for the ``stmt`` directive)
        self._parsers: Dict[Tuple[str, str], object] = {}

    def build_system(self) -> SystemSpec:
        """Materialize the :class:`SystemSpec` described by the document.

        Build-time failures (empty blocks, malformed graphs) are raised
        as :class:`SpecificationError` carrying the ``line N:`` of the
        offending ``block`` directive whenever the document was parsed
        from text.
        """
        system = SystemSpec(name=self.name)
        for process_name in self.process_order:
            process = Process(name=process_name)
            for block_name, (graph, deadline, repeats) in self.blocks[
                process_name
            ].items():
                try:
                    graph.validate()
                    process.add_block(
                        Block(
                            name=block_name,
                            graph=graph,
                            deadline=deadline,
                            repeats=repeats,
                        )
                    )
                except (GraphError, SpecificationError, ValueError) as exc:
                    lineno = self.block_lines.get((process_name, block_name), 0)
                    prefix = f"line {lineno}: " if lineno else ""
                    raise SpecificationError(
                        f"{prefix}block {process_name}/{block_name}: {exc}"
                    ) from None
            system.add_process(process)
        return system


def loads(text: str) -> SystemDocument:
    """Parse a ``.sys`` document.  Raises :class:`SpecificationError`."""
    doc = SystemDocument()
    named = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw).strip()
        if not line:
            continue
        fields = line.split()
        directive, args = fields[0].lower(), fields[1:]
        try:
            if directive == "stmt":
                _parse_stmt(doc, line)
            else:
                _dispatch(doc, directive, args, named, lineno)
        except (GraphError, SpecificationError, ValueError) as exc:
            raise SpecificationError(f"line {lineno}: {exc}") from None
        if directive == "system":
            named = True
    return doc


def _strip_comment(raw: str) -> str:
    """Drop a ``#`` comment: at line start or preceded by whitespace.

    A ``#`` embedded in a token is data, not a comment — the behavioral
    front end names generated operations ``target#N``, and those ids
    must survive a dump/load round trip.
    """
    if raw.startswith("#"):
        return ""
    for index, char in enumerate(raw):
        if char == "#" and raw[index - 1].isspace():
            return raw[:index]
    return raw


def _parse_stmt(doc: SystemDocument, line: str) -> None:
    """``stmt PROCESS BLOCK [guard=c:b] target = expression``.

    Statements compile through the behavioral front end
    (:mod:`repro.ir.behavior`); one symbol table lives per block, so later
    statements may consume earlier targets.
    """
    from .behavior import BehaviorParser

    fields = line.split(None, 3)
    if len(fields) < 4:
        raise SpecificationError(
            "'stmt' takes PROCESS BLOCK [guard=c:b] TARGET = EXPR"
        )
    __, process_name, block_name, rest = fields
    graph = _graph_of(doc, [process_name, block_name])
    guard = None
    if rest.startswith("guard="):
        guard_text, __, rest = rest.partition(" ")
        value = guard_text.split("=", 1)[1]
        if ":" not in value:
            raise SpecificationError("guard must be CONDITION:BRANCH")
        condition, branch = value.split(":", 1)
        guard = (condition, branch)
    key = (process_name, block_name)
    parser = doc._parsers.get(key)
    if parser is None:
        parser = BehaviorParser(graph)
        doc._parsers[key] = parser
    # Nodes declared through 'op' directives are usable as identifiers.
    for op_id in graph.op_ids:
        parser.symbols.setdefault(op_id, op_id)
    parser.statement(rest, guard=guard)


def _dispatch(
    doc: SystemDocument,
    directive: str,
    args: List[str],
    named: bool,
    lineno: int = 0,
) -> None:
    if directive == "system":
        if len(args) != 1:
            raise SpecificationError("'system' takes exactly one name")
        if not named:
            doc.name = args[0]
    elif directive == "resource":
        _parse_resource(doc, args)
    elif directive == "process":
        if len(args) != 1:
            raise SpecificationError("'process' takes exactly one name")
        if args[0] in doc.blocks:
            raise SpecificationError(f"duplicate process {args[0]!r}")
        doc.blocks[args[0]] = {}
        doc.process_order.append(args[0])
    elif directive == "block":
        _parse_block(doc, args, lineno)
    elif directive == "op":
        graph = _graph_of(doc, args[:2])
        if len(args) < 4:
            raise SpecificationError(
                "'op' takes PROCESS BLOCK ID KIND [NAME] [guard=c:b]"
            )
        kind = OpKind.from_string(args[3])
        name_tokens = []
        guard = None
        for token in args[4:]:
            if token.startswith("guard="):
                if guard is not None:
                    raise SpecificationError("duplicate guard for 'op'")
                value = token.split("=", 1)[1]
                if ":" not in value:
                    raise SpecificationError("guard must be CONDITION:BRANCH")
                condition, branch = value.split(":", 1)
                guard = (condition, branch)
            else:
                # Display names may span several tokens ("initial state");
                # they rejoin with single spaces.
                name_tokens.append(token)
        name = " ".join(name_tokens) if name_tokens else None
        graph.add(args[2], kind, name=name, guard=guard)
    elif directive == "edge":
        graph = _graph_of(doc, args[:2])
        if len(args) != 4:
            raise SpecificationError("'edge' takes PROCESS BLOCK SRC DST")
        graph.add_edge(args[2], args[3])
    elif directive == "global":
        if len(args) < 3:
            raise SpecificationError("'global' takes TYPE P1 P2 [P3 ...]")
        doc.globals[args[0]] = args[1:]
    elif directive == "period":
        if len(args) != 2:
            raise SpecificationError("'period' takes TYPE VALUE")
        period = int(args[1])
        if period < 1:
            raise SpecificationError(
                f"period of {args[0]!r} must be >= 1, got {period}"
            )
        if period > MAX_PERIOD:
            raise SpecificationError(
                f"period of {args[0]!r} exceeds the cap of {MAX_PERIOD}"
            )
        doc.periods[args[0]] = period
    else:
        raise SpecificationError(f"unknown directive {directive!r}")


def _parse_resource(doc: SystemDocument, args: List[str]) -> None:
    if not args:
        raise SpecificationError("'resource' needs a type name")
    name = args[0]
    if name in doc.resources:
        raise SpecificationError(f"duplicate resource {name!r}")
    options: Dict[str, object] = {
        "kinds": [],
        "latency": 1,
        "area": 1.0,
        "pipelined": False,
        "ii": 1,
    }
    for token in args[1:]:
        if token == "pipelined":
            options["pipelined"] = True
        elif "=" in token:
            key, value = token.split("=", 1)
            if key == "kinds":
                options["kinds"] = [OpKind.from_string(k) for k in value.split(",")]
            elif key == "latency":
                options["latency"] = int(value)
            elif key == "area":
                options["area"] = float(value)
            elif key == "ii":
                options["ii"] = int(value)
            else:
                raise SpecificationError(f"unknown resource option {key!r}")
        else:
            raise SpecificationError(f"malformed resource option {token!r}")
    if not options["kinds"]:
        raise SpecificationError(f"resource {name!r} declares no kinds")
    doc.resources[name] = options


def _parse_block(doc: SystemDocument, args: List[str], lineno: int = 0) -> None:
    if len(args) < 3:
        raise SpecificationError("'block' takes PROCESS NAME deadline=N [repeats]")
    process_name, block_name = args[0], args[1]
    if process_name not in doc.blocks:
        raise SpecificationError(f"unknown process {process_name!r}")
    if block_name in doc.blocks[process_name]:
        raise SpecificationError(f"duplicate block {block_name!r}")
    deadline: Optional[int] = None
    repeats = False
    for token in args[2:]:
        if token == "repeats":
            repeats = True
        elif token.startswith("deadline="):
            deadline = int(token.split("=", 1)[1])
        else:
            raise SpecificationError(f"malformed block option {token!r}")
    if deadline is None:
        raise SpecificationError("'block' requires deadline=N")
    if deadline < 1:
        raise SpecificationError(f"deadline must be >= 1, got {deadline}")
    if deadline > MAX_DEADLINE:
        raise SpecificationError(
            f"deadline {deadline} exceeds the cap of {MAX_DEADLINE}"
        )
    graph = DataFlowGraph(name=f"{process_name}-{block_name}")
    doc.blocks[process_name][block_name] = (graph, deadline, repeats)
    doc.block_lines[(process_name, block_name)] = lineno


def _graph_of(doc: SystemDocument, args: List[str]) -> DataFlowGraph:
    if len(args) < 2:
        raise SpecificationError("missing PROCESS BLOCK prefix")
    process_name, block_name = args
    try:
        return doc.blocks[process_name][block_name][0]
    except KeyError:
        raise SpecificationError(
            f"unknown block {process_name}/{block_name}"
        ) from None


def _emit_name(name: Optional[str]) -> str:
    """Render an op's display name as ``.sys`` tokens, or drop it.

    Names are labels, not identity; emission must never produce text the
    parser rejects or reads differently.  Multi-word names re-tokenize
    with single spaces, and a name whose tokens would parse as a guard
    or start a comment is omitted entirely.
    """
    if not name:
        return ""
    tokens = name.split()
    if not tokens or any(
        token.startswith(("guard=", "#")) for token in tokens
    ):
        return ""
    return " " + " ".join(tokens)


def dumps(
    system: SystemSpec,
    *,
    resources: Optional[Dict[str, Dict[str, object]]] = None,
    global_groups: Optional[Dict[str, List[str]]] = None,
    periods: Optional[Dict[str, int]] = None,
) -> str:
    """Serialize a system (and optional scheduling data) to ``.sys`` text."""
    lines = [f"system {system.name}"]
    for name, options in (resources or {}).items():
        kinds = ",".join(k.value for k in options.get("kinds", []))
        parts = [f"resource {name}", f"kinds={kinds}"]
        parts.append(f"latency={options.get('latency', 1)}")
        parts.append(f"area={options.get('area', 1.0):g}")
        if options.get("pipelined"):
            parts.append("pipelined")
            parts.append(f"ii={options.get('ii', 1)}")
        lines.append(" ".join(parts))
    for process in system.processes:
        lines.append(f"process {process.name}")
        for block in process.blocks:
            suffix = " repeats" if block.repeats else ""
            lines.append(
                f"block {process.name} {block.name} deadline={block.deadline}{suffix}"
            )
            for op in block.graph:
                name_part = _emit_name(op.name)
                guard_part = (
                    f" guard={op.guard[0]}:{op.guard[1]}" if op.guard else ""
                )
                lines.append(
                    f"op {process.name} {block.name} {op.op_id} "
                    f"{op.kind.value}{name_part}{guard_part}"
                )
            for src, dst in block.graph.edges:
                lines.append(f"edge {process.name} {block.name} {src} {dst}")
    for type_name, group in (global_groups or {}).items():
        lines.append(f"global {type_name} " + " ".join(group))
    for type_name, period in (periods or {}).items():
        lines.append(f"period {type_name} {period}")
    return "\n".join(lines) + "\n"


def load(path) -> SystemDocument:
    """Parse a ``.sys`` file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())


def dump(
    path,
    system: SystemSpec,
    *,
    resources: Optional[Dict[str, Dict[str, object]]] = None,
    global_groups: Optional[Dict[str, List[str]]] = None,
    periods: Optional[Dict[str, int]] = None,
) -> None:
    """Write a system (and optional scheduling data) as a ``.sys`` file.

    The inverse of :func:`load` up to formatting: ``load(path)`` after
    ``dump(path, ...)`` reproduces the same system, resource options,
    scope groups, and periods (see :func:`dumps` for the text form).
    """
    text = dumps(
        system,
        resources=resources,
        global_groups=global_groups,
        periods=periods,
    )
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
