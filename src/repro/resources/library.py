"""Resource libraries: the set of available functional-unit types.

A :class:`ResourceLibrary` maps behavioral operation kinds to the resource
type that executes them.  Each kind is served by exactly one type (the
classic HLS "module selection is done" assumption the paper also makes);
one type may serve several kinds (e.g. an ALU doing add and sub).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..errors import ResourceError
from ..ir.dfg import DataFlowGraph
from ..ir.operation import OpKind, Operation
from ..ir.process import SystemSpec
from .types import ResourceType, resource_type


class ResourceLibrary:
    """A collection of resource types with a kind -> type mapping."""

    def __init__(self, types: Iterable[ResourceType] = ()) -> None:
        self._types: Dict[str, ResourceType] = {}
        self._by_kind: Dict[OpKind, ResourceType] = {}
        for rtype in types:
            self.add(rtype)

    def add(self, rtype: ResourceType) -> ResourceType:
        """Register a type.  Each operation kind may be served by one type only."""
        if rtype.name in self._types:
            raise ResourceError(f"duplicate resource type name {rtype.name!r}")
        for kind in rtype.kinds:
            if kind in self._by_kind:
                raise ResourceError(
                    f"operation kind {kind} already served by "
                    f"{self._by_kind[kind].name!r}; cannot also map to {rtype.name!r}"
                )
        self._types[rtype.name] = rtype
        for kind in rtype.kinds:
            self._by_kind[kind] = rtype
        return rtype

    @property
    def types(self) -> List[ResourceType]:
        return list(self._types.values())

    @property
    def type_names(self) -> List[str]:
        return list(self._types.keys())

    def __contains__(self, name: str) -> bool:
        return name in self._types

    def __len__(self) -> int:
        return len(self._types)

    def type(self, name: str) -> ResourceType:
        try:
            return self._types[name]
        except KeyError:
            raise ResourceError(f"no resource type named {name!r}") from None

    def type_for(self, kind: OpKind) -> ResourceType:
        """The resource type executing operations of ``kind``."""
        try:
            return self._by_kind[kind]
        except KeyError:
            raise ResourceError(f"no resource type executes {kind}") from None

    def type_of(self, op: Operation) -> ResourceType:
        """The resource type executing a concrete operation."""
        return self.type_for(op.kind)

    def latency_of(self, op: Operation) -> int:
        """Latency of an operation under this library (for precedence)."""
        return self.type_of(op).latency

    def occupancy_of(self, op: Operation) -> int:
        """Occupancy of an operation under this library (for usage)."""
        return self.type_of(op).occupancy

    def types_used_by(self, graph: DataFlowGraph) -> List[ResourceType]:
        """Resource types needed by a graph, in deterministic order."""
        seen: List[ResourceType] = []
        for op in graph:
            rtype = self.type_of(op)
            if rtype not in seen:
                seen.append(rtype)
        return seen

    def covers(self, system: SystemSpec) -> None:
        """Raise :class:`ResourceError` unless every kind used has a type."""
        for kind in system.kinds_used():
            self.type_for(kind)


def default_library() -> ResourceLibrary:
    """The library of the paper's experiment (§7).

    Addition and subtraction: unit delay, area 1.  Multiplication: pipelined,
    latency 2, initiation interval 1, area 4.  A unit-delay comparator is
    included for workloads that do not apply the paper's cmp-to-sub
    substitution.
    """
    return ResourceLibrary(
        [
            resource_type("adder", [OpKind.ADD], latency=1, area=1.0),
            resource_type("subtracter", [OpKind.SUB], latency=1, area=1.0),
            resource_type(
                "multiplier",
                [OpKind.MUL],
                latency=2,
                area=4.0,
                pipelined=True,
                initiation_interval=1,
            ),
            resource_type("comparator", [OpKind.CMP], latency=1, area=1.0),
        ]
    )


def alu_library() -> ResourceLibrary:
    """An alternative library where one ALU serves add/sub/compare.

    Useful for exercising multi-kind resource types in tests and ablations.
    """
    return ResourceLibrary(
        [
            resource_type(
                "alu", [OpKind.ADD, OpKind.SUB, OpKind.CMP], latency=1, area=1.5
            ),
            resource_type(
                "multiplier",
                [OpKind.MUL],
                latency=2,
                area=4.0,
                pipelined=True,
                initiation_interval=1,
            ),
        ]
    )
