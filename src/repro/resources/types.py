"""Hardware resource types.

A :class:`ResourceType` describes one kind of functional unit: which
behavioral operations it executes, how long an operation takes (latency),
whether the unit is pipelined, and its area cost.  The paper's evaluation
uses unit-delay adders/subtracters (area 1) and a two-cycle pipelined
multiplier (area 4).

Two distinct time quantities matter for scheduling:

* **latency** — control steps until the result is available; precedence
  constraints use this;
* **occupancy** — control steps during which the unit is busy and cannot
  accept another operation.  For a pipelined unit this is the initiation
  interval (1 unless stated otherwise); for a non-pipelined multicycle unit
  it equals the latency.  Resource usage distributions use this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Tuple

from ..errors import ResourceError
from ..ir.operation import OpKind


@dataclass(frozen=True)
class ResourceType:
    """One functional-unit type.

    Attributes:
        name: Unique name within a library (e.g. ``"mult"``).
        kinds: Operation kinds this unit can execute.
        latency: Control steps from operation start to result availability.
        area: Area cost of one instance (arbitrary units).
        pipelined: Whether the unit accepts a new operation every
            ``initiation_interval`` steps while earlier ones are in flight.
        initiation_interval: Steps between successive operation starts on a
            pipelined unit; ignored for non-pipelined units.
    """

    name: str
    kinds: FrozenSet[OpKind]
    latency: int = 1
    area: float = 1.0
    pipelined: bool = False
    initiation_interval: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ResourceError("resource type needs a non-empty name")
        if not self.kinds:
            raise ResourceError(f"resource type {self.name!r} implements no operation kinds")
        if self.latency < 1:
            raise ResourceError(f"resource type {self.name!r}: latency must be >= 1")
        if self.area < 0:
            raise ResourceError(f"resource type {self.name!r}: area must be >= 0")
        if self.initiation_interval < 1:
            raise ResourceError(
                f"resource type {self.name!r}: initiation interval must be >= 1"
            )
        if self.pipelined and self.initiation_interval > self.latency:
            raise ResourceError(
                f"resource type {self.name!r}: initiation interval exceeds latency"
            )

    @property
    def occupancy(self) -> int:
        """Control steps one operation keeps the unit busy."""
        return self.initiation_interval if self.pipelined else self.latency

    def executes(self, kind: OpKind) -> bool:
        """Whether this unit type can execute operations of ``kind``."""
        return kind in self.kinds

    def __str__(self) -> str:
        return self.name


def resource_type(
    name: str,
    kinds: Iterable[OpKind],
    *,
    latency: int = 1,
    area: float = 1.0,
    pipelined: bool = False,
    initiation_interval: int = 1,
) -> ResourceType:
    """Convenience constructor accepting any iterable of kinds."""
    return ResourceType(
        name=name,
        kinds=frozenset(kinds),
        latency=latency,
        area=area,
        pipelined=pipelined,
        initiation_interval=initiation_interval,
    )
