"""Step (S1): assignment of resource types to processes.

For every resource type a decision between a **local** and a **global**
assignment is made (§3.1).  A local assignment keeps the traditional
per-process resource pools.  A global assignment declares a *process
group*: the named processes share one pool of instances of that type,
which is exactly what traditional static scheduling cannot express.

In the paper's notation: ``R`` is the set of all resource types, ``P`` the
set of all processes, ``R_g`` the globally assigned types, ``uses(k)`` the
processes containing operations of type ``k``, and ``G_p`` the global types
assigned to process ``p``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..errors import ResourceError
from ..ir.process import SystemSpec
from .library import ResourceLibrary
from .types import ResourceType


class ResourceAssignment:
    """Local/global scope decisions for every resource type of a library."""

    def __init__(self, library: ResourceLibrary) -> None:
        self.library = library
        self._groups: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------
    # Declaration
    # ------------------------------------------------------------------
    def make_global(self, type_name: str, processes: Sequence[str]) -> None:
        """Declare ``type_name`` globally shared by the given process group.

        The group must contain at least two processes — a "global" type
        shared by a single process is just a local assignment.
        """
        self.library.type(type_name)  # raises on unknown type
        group = list(dict.fromkeys(processes))
        if len(group) < 2:
            raise ResourceError(
                f"global assignment of {type_name!r} needs a group of >= 2 "
                f"processes, got {group}"
            )
        self._groups[type_name] = group

    def make_local(self, type_name: str) -> None:
        """Revert ``type_name`` to the traditional per-process assignment."""
        self.library.type(type_name)
        self._groups.pop(type_name, None)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_global(self, type_name: str) -> bool:
        return type_name in self._groups

    def group(self, type_name: str) -> List[str]:
        """The process group sharing ``type_name`` (empty if local)."""
        return list(self._groups.get(type_name, []))

    @property
    def global_types(self) -> List[str]:
        """Names of all globally assigned types (the paper's ``R_g``)."""
        return list(self._groups.keys())

    def global_types_of(self, process_name: str) -> List[str]:
        """Global types assigned to one process (the paper's ``G_p``)."""
        return [t for t, group in self._groups.items() if process_name in group]

    def shares_globally(self, type_name: str, process_name: str) -> bool:
        """Whether ``process_name`` takes part in global sharing of the type."""
        return process_name in self._groups.get(type_name, ())

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self, system: SystemSpec) -> None:
        """Check group membership against the system specification.

        Every group member must exist and actually use the type; a process
        in the group that never executes the type's kinds would get useless
        authorizations (and points at a specification mistake).
        """
        self.library.covers(system)
        for type_name, group in self._groups.items():
            rtype = self.library.type(type_name)
            users = self._users(system, rtype)
            for process_name in group:
                if process_name not in system:
                    raise ResourceError(
                        f"global type {type_name!r}: unknown process {process_name!r}"
                    )
                if process_name not in users:
                    raise ResourceError(
                        f"global type {type_name!r}: process {process_name!r} "
                        f"contains no operation executed by this type"
                    )

    def _users(self, system: SystemSpec, rtype: ResourceType) -> List[str]:
        users: List[str] = []
        for kind in rtype.kinds:
            for name in system.processes_using(kind):
                if name not in users:
                    users.append(name)
        return users

    def users(self, system: SystemSpec, type_name: str) -> List[str]:
        """All processes using the type (the paper's ``uses(k)``)."""
        return self._users(system, self.library.type(type_name))

    @classmethod
    def all_local(cls, library: ResourceLibrary) -> "ResourceAssignment":
        """The traditional assignment: every type local (the baseline)."""
        return cls(library)

    @classmethod
    def all_global(
        cls, library: ResourceLibrary, system: SystemSpec
    ) -> "ResourceAssignment":
        """Assign every type used by >= 2 processes globally to all its users.

        This is the "pure global resource assignment" of the paper's
        experiment (§7), generalized to any system.
        """
        assignment = cls(library)
        for rtype in library.types:
            users = assignment._users(system, rtype)
            if len(users) >= 2:
                assignment.make_global(rtype.name, users)
        return assignment

    def __repr__(self) -> str:
        scopes = {t.name: ("global" if self.is_global(t.name) else "local")
                  for t in self.library.types}
        return f"ResourceAssignment({scopes})"
