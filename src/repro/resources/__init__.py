"""Resource model: functional-unit types, libraries, scope assignment (S1)."""

from .assignment import ResourceAssignment
from .library import ResourceLibrary, alu_library, default_library
from .types import ResourceType, resource_type

__all__ = [
    "ResourceAssignment",
    "ResourceLibrary",
    "ResourceType",
    "alu_library",
    "default_library",
    "resource_type",
]
