"""Merging of telemetry summaries from independent runs.

A telemetry summary is the dict shape produced by
:attr:`repro.core.result.SystemSchedule.telemetry` and
:meth:`repro.obs.tracer.Tracer.summary`: ``counters`` (name -> int),
``phase_times`` (phase -> seconds), optional ``gauges`` and
``histograms`` (name -> summary dicts from
:mod:`repro.obs.metrics`), plus the scalar volumes ``wall_time``,
``iterations``, ``events``, and ``spans``.

:func:`merge_telemetry` folds any number of such summaries into one
aggregate with the same shape, so a merged summary renders through
:func:`repro.obs.profile.render_profile` exactly like a single-run one.
The parallel exploration engine (:mod:`repro.parallel`) uses this to
combine per-worker telemetry into the sweep-level profile:

* ``counters`` and ``phase_times`` are summed key-wise;
* ``gauges`` merge min/max/samples exactly; the merged ``value`` is the
  merged ``max`` (the last-sampled value of *one* run has no meaning
  across runs, and max is order-independent);
* ``histograms`` merge bucket-wise — all histograms share one fixed
  global bucket grid (:mod:`repro.obs.metrics`), so no re-binning is
  needed and quantiles of the merged histogram are as accurate as the
  parts';
* ``wall_time`` is summed — for concurrent runs the result is
  *cumulative compute seconds*, not elapsed time (callers that also
  track elapsed time should store it under a separate key);
* ``iterations``, ``events``, and ``spans`` are summed;
* ``runs`` counts the *original* runs folded in: a part that is itself
  a merged summary contributes its own ``runs`` count, not 1.

That last rule is what makes the fold **associative and
order-independent**: ``merge([a, merge([b, c])])`` equals
``merge([merge([a, b]), c])`` equals ``merge([a, b, c])`` (pinned by
property tests in ``tests/obs/test_merge.py``), so streamed worker
telemetry can be folded incrementally in any arrival order.

Missing keys contribute nothing, so partially filled summaries (e.g.
from a run that failed before finalization) merge cleanly.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping

from .metrics import merge_gauge_summary, merge_histogram_summary


def merge_telemetry(parts: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    """Fold telemetry summaries into one aggregate of the same shape."""
    counters: Dict[str, int] = {}
    phase_times: Dict[str, float] = {}
    gauges: Dict[str, Dict[str, Any]] = {}
    histograms: Dict[str, Dict[str, Any]] = {}
    merged: Dict[str, Any] = {
        "counters": counters,
        "phase_times": phase_times,
        "wall_time": 0.0,
        "iterations": 0,
        "events": 0,
        "spans": 0,
        "runs": 0,
    }
    for part in parts:
        merged["runs"] += int(part.get("runs") or 1)
        for name, value in (part.get("counters") or {}).items():
            counters[name] = counters.get(name, 0) + int(value)
        for name, value in (part.get("phase_times") or {}).items():
            phase_times[name] = phase_times.get(name, 0.0) + float(value)
        for name, summary in (part.get("gauges") or {}).items():
            if name in gauges:
                merge_gauge_summary(gauges[name], summary)
            else:
                gauges[name] = dict(summary)
        for name, summary in (part.get("histograms") or {}).items():
            if name in histograms:
                merge_histogram_summary(histograms[name], summary)
            else:
                copied = dict(summary)
                copied["buckets"] = dict(summary.get("buckets") or {})
                histograms[name] = copied
        merged["wall_time"] += float(part.get("wall_time") or 0.0)
        merged["iterations"] += int(part.get("iterations") or 0)
        merged["events"] += int(part.get("events") or 0)
        merged["spans"] += int(part.get("spans") or 0)
    if gauges:
        merged["gauges"] = gauges
    if histograms:
        merged["histograms"] = histograms
    return merged
