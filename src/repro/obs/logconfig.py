"""Stdlib ``logging`` wiring for the ``repro.*`` logger hierarchy.

Library modules log through module-level loggers obtained from
:func:`get_logger` (named ``repro.<module>``); nothing in the library
ever prints to stdout — stdout belongs to the CLI's user-facing output.
The CLI maps ``-v``/``-q`` flags onto :func:`configure_logging`, which
attaches a single stderr handler to the ``repro`` root logger.

Default (no flags): WARNING.  ``-v``: INFO.  ``-vv``: DEBUG.
``-q``: ERROR.
"""

from __future__ import annotations

import logging
from typing import Optional

ROOT_LOGGER_NAME = "repro"

_FORMAT = "%(levelname)s %(name)s: %(message)s"


def get_logger(module_name: str) -> logging.Logger:
    """Logger for a library module, inside the ``repro`` hierarchy.

    Pass ``__name__``; names already under ``repro.`` are used as-is,
    anything else is prefixed so handlers configured on ``repro`` apply.
    """
    if module_name == ROOT_LOGGER_NAME or module_name.startswith(
        ROOT_LOGGER_NAME + "."
    ):
        return logging.getLogger(module_name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{module_name}")


def verbosity_level(verbose: int = 0, quiet: bool = False) -> int:
    """Map CLI ``-v`` counts / ``-q`` onto a stdlib logging level."""
    if quiet:
        return logging.ERROR
    if verbose >= 2:
        return logging.DEBUG
    if verbose == 1:
        return logging.INFO
    return logging.WARNING


def configure_logging(
    verbose: int = 0,
    quiet: bool = False,
    *,
    stream=None,
    fmt: Optional[str] = None,
) -> logging.Logger:
    """Attach one stderr handler to the ``repro`` logger at the level
    implied by the flags; idempotent (reconfigures the same handler).
    """
    root = logging.getLogger(ROOT_LOGGER_NAME)
    level = verbosity_level(verbose, quiet)
    root.setLevel(level)
    handler = None
    for existing in root.handlers:
        if getattr(existing, "_repro_cli_handler", False):
            handler = existing
            break
    if handler is None:
        handler = logging.StreamHandler(stream)
        handler._repro_cli_handler = True  # type: ignore[attr-defined]
        root.addHandler(handler)
    elif stream is not None:
        handler.setStream(stream)
    handler.setLevel(level)
    handler.setFormatter(logging.Formatter(fmt or _FORMAT))
    # The CLI handler is the sink of record; don't double-log through
    # the stdlib root logger.
    root.propagate = False
    return root
