"""Rendering of telemetry summaries as aligned text tables.

The profile table is what ``repro schedule --profile`` (and the
``repro profile`` subcommand) print: per-phase wall times with their
share of the total, followed by the counter registry, gauge extremes,
and histogram quantiles when any were recorded.  It consumes the
``telemetry`` dict attached to :class:`repro.core.result.SystemSchedule`
(or any mapping with the same keys).
"""

from __future__ import annotations

from typing import Any, Mapping, Optional


def _format_quantity(value: Optional[float]) -> str:
    """Render a histogram/gauge value compactly (durations vs counts)."""
    if value is None:
        return "-"
    number = float(value)
    if number == int(number) and abs(number) < 1e12:
        return f"{int(number):,}"
    return f"{number:.6g}"


def render_phase_table(
    phase_times: Mapping[str, float], wall_time: Optional[float] = None
) -> str:
    """Aligned ``phase  seconds  share`` rows plus a total line."""
    lines = ["phase timings"]
    if not phase_times:
        lines.append("  (none recorded)")
        return "\n".join(lines)
    total = wall_time if wall_time is not None else sum(phase_times.values())
    width = max(len(name) for name in phase_times)
    width = max(width, len("total"))
    for name, seconds in phase_times.items():
        share = f"{seconds / total:6.1%}" if total > 0 else "   n/a"
        lines.append(f"  {name:<{width}}  {seconds:10.4f} s  {share}")
    lines.append(f"  {'total':<{width}}  {total:10.4f} s")
    return "\n".join(lines)


def render_counter_table(counters: Mapping[str, int]) -> str:
    """Aligned ``counter  value`` rows, sorted by name."""
    lines = ["counters"]
    if not counters:
        lines.append("  (none recorded)")
        return "\n".join(lines)
    width = max(len(name) for name in counters)
    for name in sorted(counters):
        lines.append(f"  {name:<{width}}  {counters[name]:>12,}")
    return "\n".join(lines)


def render_histogram_table(histograms: Mapping[str, Mapping[str, Any]]) -> str:
    """Aligned ``histogram  count  p50  p95  max  mean`` rows."""
    lines = ["histograms"]
    if not histograms:
        lines.append("  (none recorded)")
        return "\n".join(lines)
    width = max(len(name) for name in histograms)
    header = f"  {'':<{width}}  {'count':>10}  {'p50':>12}  {'p95':>12}  {'max':>12}  {'mean':>12}"
    lines.append(header)
    for name in sorted(histograms):
        summary = histograms[name]
        count = int(summary.get("count") or 0)
        mean = (float(summary.get("sum") or 0.0) / count) if count else None
        lines.append(
            f"  {name:<{width}}  {count:>10,}"
            f"  {_format_quantity(summary.get('p50')):>12}"
            f"  {_format_quantity(summary.get('p95')):>12}"
            f"  {_format_quantity(summary.get('max')):>12}"
            f"  {_format_quantity(mean):>12}"
        )
    return "\n".join(lines)


def render_gauge_table(gauges: Mapping[str, Mapping[str, Any]]) -> str:
    """Aligned ``gauge  value  min  max  samples`` rows."""
    lines = ["gauges"]
    if not gauges:
        lines.append("  (none recorded)")
        return "\n".join(lines)
    width = max(len(name) for name in gauges)
    header = f"  {'':<{width}}  {'value':>12}  {'min':>12}  {'max':>12}  {'samples':>10}"
    lines.append(header)
    for name in sorted(gauges):
        summary = gauges[name]
        lines.append(
            f"  {name:<{width}}"
            f"  {_format_quantity(summary.get('value')):>12}"
            f"  {_format_quantity(summary.get('min')):>12}"
            f"  {_format_quantity(summary.get('max')):>12}"
            f"  {int(summary.get('samples') or 0):>10,}"
        )
    return "\n".join(lines)


def render_profile(telemetry: Mapping[str, Any], *, title: str = "") -> str:
    """Full profile report for one telemetry summary.

    Expects the keys :data:`SystemSchedule.telemetry` provides —
    ``phase_times``, ``wall_time``, ``iterations``, ``counters``,
    ``events``, and optionally ``gauges``/``histograms``/``degraded``/
    ``audit`` — all optional.
    """
    sections = []
    if title:
        sections.append(title)
    phase_times = telemetry.get("phase_times", {})
    wall_time = telemetry.get("wall_time")
    sections.append(render_phase_table(phase_times, wall_time))
    sections.append(render_counter_table(telemetry.get("counters", {})))
    gauges = telemetry.get("gauges")
    if gauges:
        sections.append(render_gauge_table(gauges))
    histograms = telemetry.get("histograms")
    if histograms:
        sections.append(render_histogram_table(histograms))
    degraded = telemetry.get("degraded")
    if degraded:
        sections.append(
            "degradations: "
            + "; ".join(str(item) for item in degraded)
        )
    audit = telemetry.get("audit")
    if isinstance(audit, Mapping) and audit.get("recorded"):
        sections.append(
            f"audit: {audit.get('decisions', 0)} decisions retained"
            f" ({audit.get('recorded', 0)} recorded,"
            f" {audit.get('dropped', 0)} dropped)"
        )
    volumes = []
    if telemetry.get("iterations"):
        volumes.append(f"{telemetry['iterations']} scheduler iterations")
    if telemetry.get("events"):
        volumes.append(f"{telemetry['events']} trace events")
    if telemetry.get("runs"):
        volumes.append(f"{telemetry['runs']} runs merged")
    if volumes:
        sections.append("volume: " + ", ".join(volumes))
    return "\n".join(sections)
