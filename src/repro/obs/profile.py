"""Rendering of telemetry summaries as aligned text tables.

The profile table is what ``repro schedule --profile`` (and the
``repro profile`` subcommand) print: per-phase wall times with their
share of the total, followed by the counter registry.  It consumes the
``telemetry`` dict attached to :class:`repro.core.result.SystemSchedule`
(or any mapping with the same keys).
"""

from __future__ import annotations

from typing import Any, Mapping, Optional


def render_phase_table(
    phase_times: Mapping[str, float], wall_time: Optional[float] = None
) -> str:
    """Aligned ``phase  seconds  share`` rows plus a total line."""
    lines = ["phase timings"]
    if not phase_times:
        lines.append("  (none recorded)")
        return "\n".join(lines)
    total = wall_time if wall_time is not None else sum(phase_times.values())
    width = max(len(name) for name in phase_times)
    width = max(width, len("total"))
    for name, seconds in phase_times.items():
        share = f"{seconds / total:6.1%}" if total > 0 else "   n/a"
        lines.append(f"  {name:<{width}}  {seconds:10.4f} s  {share}")
    lines.append(f"  {'total':<{width}}  {total:10.4f} s")
    return "\n".join(lines)


def render_counter_table(counters: Mapping[str, int]) -> str:
    """Aligned ``counter  value`` rows, sorted by name."""
    lines = ["counters"]
    if not counters:
        lines.append("  (none recorded)")
        return "\n".join(lines)
    width = max(len(name) for name in counters)
    for name in sorted(counters):
        lines.append(f"  {name:<{width}}  {counters[name]:>12,}")
    return "\n".join(lines)


def render_profile(telemetry: Mapping[str, Any], *, title: str = "") -> str:
    """Full profile report for one telemetry summary.

    Expects the keys :data:`SystemSchedule.telemetry` provides —
    ``phase_times``, ``wall_time``, ``iterations``, ``counters``,
    ``events`` — all optional.
    """
    sections = []
    if title:
        sections.append(title)
    phase_times = telemetry.get("phase_times", {})
    wall_time = telemetry.get("wall_time")
    sections.append(render_phase_table(phase_times, wall_time))
    sections.append(render_counter_table(telemetry.get("counters", {})))
    volumes = []
    if telemetry.get("iterations"):
        volumes.append(f"{telemetry['iterations']} scheduler iterations")
    if telemetry.get("events"):
        volumes.append(f"{telemetry['events']} trace events")
    if volumes:
        sections.append("volume: " + ", ".join(volumes))
    return "\n".join(sections)
