"""Structured tracing: hierarchical spans, events, and JSONL export.

A :class:`Tracer` records what one scheduling/simulation run did and how
long each part took:

* **Spans** are named, timed regions that nest —
  ``tracer.span("schedule")`` → ``tracer.span("reduction", iter=k)``.
  Timings use :func:`time.perf_counter` (monotonic) relative to the
  tracer's creation, so trace times are comparable within one tracer.
* **Events** are point records (one per scheduler iteration, say) tagged
  with the path of the enclosing spans.  A tracer built with ``bus=``
  also *publishes* each event to that
  :class:`~repro.obs.events.EventBus` the moment it is recorded, which
  is how live progress rendering subscribes to a running sweep.
* **Metrics** (:class:`repro.obs.metrics.MetricsRegistry`, wrapped by a
  :class:`repro.obs.counters.Counters` shim) ride along; the tracer owns
  a registry and installs it as the ambient target while a root span is
  active via :meth:`activate`.  Besides counters, :meth:`Tracer.observe`
  and :meth:`Tracer.set_gauge` feed the typed histogram/gauge
  instruments.

The default tracer everywhere is :data:`NULL_TRACER`, a shared
:class:`NullTracer` whose methods do nothing and allocate nothing —
instrumented code pays one attribute check (``tracer.enabled``) or one
no-op call on the uninstrumented path.

Export: :meth:`Tracer.jsonl_lines` yields one JSON object per record
(span records on close, events in emission order), and
:meth:`Tracer.write_jsonl` persists them; every line round-trips through
``json.loads``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .counters import Counters


@dataclass
class SpanRecord:
    """One completed (or still open) span."""

    name: str
    path: Tuple[str, ...]
    depth: int
    start: float
    attrs: Dict[str, Any] = field(default_factory=dict)
    end: Optional[float] = None

    @property
    def duration(self) -> float:
        """Seconds between enter and exit (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def as_record(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "type": "span",
            "name": self.name,
            "path": "/".join(self.path),
            "depth": self.depth,
            "start": round(self.start, 9),
            "duration": round(self.duration, 9),
        }
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        return record


@dataclass(frozen=True)
class TraceEvent:
    """One point event, tagged with the enclosing span path."""

    name: str
    time: float
    path: Tuple[str, ...]
    attrs: Dict[str, Any] = field(default_factory=dict)

    def as_record(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "type": "event",
            "name": self.name,
            "path": "/".join(self.path),
            "time": round(self.time, 9),
        }
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        return record


class _SpanContext:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_record")

    def __init__(self, tracer: "Tracer", record: SpanRecord) -> None:
        self._tracer = tracer
        self._record = record

    def __enter__(self) -> SpanRecord:
        return self._record

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._close_span(self._record)
        return False


class Tracer:
    """Collecting tracer: spans nest, events append, counters accumulate."""

    enabled = True

    def __init__(
        self, counters: Optional[Counters] = None, *, bus: Any = None
    ) -> None:
        self.counters = counters if counters is not None else Counters()
        self.bus = bus
        self.spans: List[SpanRecord] = []
        self.events: List[TraceEvent] = []
        self._stack: List[SpanRecord] = []
        self._epoch = time.perf_counter()

    @property
    def metrics(self):
        """The full typed-instrument registry behind the counters shim."""
        return self.counters.registry

    # -- time ----------------------------------------------------------
    def _now(self) -> float:
        return time.perf_counter() - self._epoch

    # -- spans ---------------------------------------------------------
    def span(self, name: str, **attrs: Any) -> _SpanContext:
        """Open a nested span; use as a context manager."""
        path = tuple(s.name for s in self._stack) + (name,)
        record = SpanRecord(
            name=name,
            path=path,
            depth=len(self._stack),
            start=self._now(),
            attrs=attrs,
        )
        self._stack.append(record)
        return _SpanContext(self, record)

    def _close_span(self, record: SpanRecord) -> None:
        record.end = self._now()
        # Close any dangling children first (defensive; the context-
        # manager protocol normally unwinds the stack in LIFO order).
        while self._stack and self._stack[-1] is not record:
            dangling = self._stack.pop()
            if dangling.end is None:
                dangling.end = record.end
                self.spans.append(dangling)
        if self._stack and self._stack[-1] is record:
            self._stack.pop()
        self.spans.append(record)

    @property
    def open_spans(self) -> List[str]:
        """Names of the currently open spans, outermost first."""
        return [record.name for record in self._stack]

    # -- events and counters -------------------------------------------
    def event(self, name: str, **attrs: Any) -> None:
        """Record one point event under the current span path.

        When the tracer has a bus, the event is also published to every
        subscriber before this method returns, so live consumers see it
        while the run is still going.
        """
        event = TraceEvent(
            name=name,
            time=self._now(),
            path=tuple(s.name for s in self._stack),
            attrs=attrs,
        )
        self.events.append(event)
        if self.bus is not None:
            self.bus.publish(event)

    def count(self, name: str, amount: int = 1) -> None:
        """Increment one of this tracer's counters."""
        self.counters.inc(name, amount)

    def observe(self, name: str, value: float) -> None:
        """Record one histogram observation on this tracer's registry."""
        self.counters.registry.observe(name, value)

    def set_gauge(self, name: str, value: float) -> None:
        """Record one gauge sample on this tracer's registry."""
        self.counters.registry.set_gauge(name, value)

    def activate(self):
        """Install this tracer's counters as the ambient count target."""
        return self.counters.activate()

    # -- summaries ------------------------------------------------------
    def phase_times(self, depth: int = 0) -> Dict[str, float]:
        """Total duration per span name at one nesting depth."""
        totals: Dict[str, float] = {}
        for record in self.spans:
            if record.depth == depth:
                totals[record.name] = totals.get(record.name, 0.0) + record.duration
        return totals

    def events_named(self, name: str) -> List[TraceEvent]:
        return [event for event in self.events if event.name == name]

    def summary(self) -> Dict[str, Any]:
        """Compact dict summary: counters, top-level phases, volumes.

        Typed instruments appear under ``"gauges"`` and ``"histograms"``
        only when at least one was recorded, so counter-only summaries
        keep their historical shape.
        """
        summary: Dict[str, Any] = {
            "counters": self.counters.as_dict(),
            "phase_times": self.phase_times(),
            "spans": len(self.spans),
            "events": len(self.events),
        }
        registry = self.counters.registry
        gauges = registry.gauges_dict()
        if gauges:
            summary["gauges"] = gauges
        histograms = registry.histograms_dict()
        if histograms:
            summary["histograms"] = histograms
        return summary

    # -- export ---------------------------------------------------------
    def records(self) -> Iterator[Dict[str, Any]]:
        """All records (spans then events) in chronological order."""
        items: List[Tuple[float, Dict[str, Any]]] = []
        for span in self.spans:
            items.append((span.start, span.as_record()))
        for event in self.events:
            items.append((event.time, event.as_record()))
        items.sort(key=lambda pair: pair[0])
        for _, record in items:
            yield record

    def jsonl_lines(self) -> Iterator[str]:
        """One JSON document per record; valid input to ``json.loads``."""
        for record in self.records():
            yield json.dumps(record, sort_keys=True)

    def write_jsonl(self, path) -> int:
        """Write the trace as JSON Lines; returns the number of records."""
        written = 0
        with open(path, "w", encoding="utf-8") as handle:
            for line in self.jsonl_lines():
                handle.write(line + "\n")
                written += 1
        return written


class _NullContext:
    """Reusable do-nothing context manager (shared instance)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


class NullTracer:
    """Do-nothing tracer with the :class:`Tracer` interface.

    Every method is a constant-time no-op that allocates nothing; the
    shared :data:`NULL_TRACER` instance is the default ``tracer``
    argument throughout the scheduler, so uninstrumented runs behave
    exactly as before instrumentation existed.
    """

    enabled = False
    counters: Optional[Counters] = None
    metrics = None
    bus = None
    spans: Tuple[()] = ()
    events: Tuple[()] = ()

    __slots__ = ()

    def span(self, name: str, **attrs: Any) -> _NullContext:
        return _NULL_CONTEXT

    def event(self, name: str, **attrs: Any) -> None:
        return None

    def count(self, name: str, amount: int = 1) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None

    def set_gauge(self, name: str, value: float) -> None:
        return None

    def activate(self) -> _NullContext:
        return _NULL_CONTEXT

    def phase_times(self, depth: int = 0) -> Dict[str, float]:
        return {}

    def summary(self) -> Dict[str, Any]:
        return {"counters": {}, "phase_times": {}, "spans": 0, "events": 0}


#: The shared default tracer: safe to pass anywhere, records nothing.
NULL_TRACER = NullTracer()


def as_tracer(tracer) -> "Tracer | NullTracer":
    """Normalize an optional tracer argument (``None`` → no-op)."""
    return NULL_TRACER if tracer is None else tracer
