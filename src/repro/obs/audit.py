"""Decision-audit telemetry: why the scheduler did what it did.

The coupled reduction loop makes thousands of per-iteration choices —
which operation's frame to shrink, at which side, under which
global-coupling state — and aggregate counters cannot answer *why* a
given operation landed where it did.  An :class:`AuditTrail` records,
per committed reduction, the full decision context:

* every **candidate** considered that iteration, with the forces at both
  frame ends and how the value was obtained (``cache`` classification:
  ``fresh`` evaluation, ``hit`` reuse, ``assembled`` re-fold against a
  moved system distribution, or ``uncached`` scan);
* the **winner** (process, block, op, side, score) and its **timeframe
  delta** — the frame before the commit, the frame after, and how many
  other frames the precedence propagation moved;
* the coupling **scopes** the commit produced (which global types were
  perturbed and how far — ``clean``/``process``/``system``).

Recording is strictly opt-in: schedulers take ``audit=None`` and the
scheduling code only assembles decision records when a trail is passed,
so the disabled path costs one ``None`` check per iteration.  The trail
is **ring-buffered** (`capacity` newest decisions are kept; older ones
are counted in ``dropped``) so auditing a long run has bounded memory.

The trail rides on :attr:`repro.core.result.SystemSchedule.telemetry`
under ``telemetry["audit"]`` (summary + records) and exports as JSONL
via ``repro schedule --audit out.jsonl``.  The attribution layer
(:mod:`repro.analysis.attribution`) folds it with the certifier's
conflict triples to rank what pins the area.

The trail observes and never steers: an audited run makes byte-identical
scheduling decisions (pinned by ``tests/obs/test_audit.py``).
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Mapping, Optional, Tuple

#: Cache classifications a candidate evaluation can carry.
CACHE_FRESH = "fresh"
CACHE_HIT = "hit"
CACHE_ASSEMBLED = "assembled"
CACHE_UNCACHED = "uncached"

#: Default ring capacity: enough for every decision of the paper-scale
#: systems while bounding a pathological run to a few MB.
DEFAULT_CAPACITY = 16384


@dataclass(frozen=True)
class CandidateAudit:
    """One candidate considered during a selection scan."""

    process: str
    block: str
    op: str
    force_low: float
    force_high: float
    score: float
    cache: str = CACHE_UNCACHED

    def as_record(self) -> Dict[str, Any]:
        return {
            "process": self.process,
            "block": self.block,
            "op": self.op,
            "force_low": round(self.force_low, 9),
            "force_high": round(self.force_high, 9),
            "score": round(self.score, 9),
            "cache": self.cache,
        }


@dataclass(frozen=True)
class DecisionAudit:
    """One committed reduction with its full decision context."""

    iteration: int
    process: str
    block: str
    op: str
    side: str
    score: float
    force_low: float
    force_high: float
    frame_before: Tuple[int, int]
    frame_after: Tuple[int, int]
    cache: str = CACHE_UNCACHED
    #: Ops whose frames the commit's precedence propagation moved
    #: (including the winner itself).
    changed_ops: Tuple[str, ...] = ()
    #: Resource types whose distributions the commit touched.
    touched_types: Tuple[str, ...] = ()
    #: Per-global-type propagation scope (clean/process/system).
    scopes: Mapping[str, str] = field(default_factory=dict)
    #: Every candidate considered this iteration (empty when candidate
    #: capture is off).
    candidates: Tuple[CandidateAudit, ...] = ()

    def as_record(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "type": "decision",
            "iteration": self.iteration,
            "process": self.process,
            "block": self.block,
            "op": self.op,
            "side": self.side,
            "score": round(self.score, 9),
            "force_low": round(self.force_low, 9),
            "force_high": round(self.force_high, 9),
            "frame_before": list(self.frame_before),
            "frame_after": list(self.frame_after),
            "cache": self.cache,
            "changed_ops": list(self.changed_ops),
            "touched_types": list(self.touched_types),
        }
        if self.scopes:
            record["scopes"] = dict(self.scopes)
        if self.candidates:
            record["candidates"] = [c.as_record() for c in self.candidates]
        return record


class AuditTrail:
    """Ring buffer of :class:`DecisionAudit` records.

    Args:
        capacity: Newest decisions kept; older ones only bump
            ``dropped``.  ``None`` keeps everything (unbounded).
        keep_candidates: Record the full per-candidate force table of
            every iteration.  The dominant cost of auditing; disable to
            keep only the winners.
    """

    enabled = True

    def __init__(
        self,
        capacity: Optional[int] = DEFAULT_CAPACITY,
        *,
        keep_candidates: bool = True,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.capacity = capacity
        self.keep_candidates = keep_candidates
        self._decisions: Deque[DecisionAudit] = deque(maxlen=capacity)
        self.recorded = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, decision: DecisionAudit) -> None:
        self.recorded += 1
        self._decisions.append(decision)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def decisions(self) -> List[DecisionAudit]:
        """The retained decisions, oldest first."""
        return list(self._decisions)

    @property
    def dropped(self) -> int:
        """Decisions pushed out of the ring by newer ones."""
        return self.recorded - len(self._decisions)

    def __len__(self) -> int:
        return len(self._decisions)

    def decisions_for(
        self, *, process: Optional[str] = None, op: Optional[str] = None
    ) -> List[DecisionAudit]:
        """Retained decisions filtered by winner process and/or op."""
        return [
            d
            for d in self._decisions
            if (process is None or d.process == process)
            and (op is None or d.op == op)
        ]

    def summary(self) -> Dict[str, Any]:
        """Compact dict for ``telemetry["audit"]``."""
        return {
            "decisions": len(self._decisions),
            "recorded": self.recorded,
            "dropped": self.dropped,
            "capacity": self.capacity,
            "candidates_kept": self.keep_candidates,
        }

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def as_records(self) -> List[Dict[str, Any]]:
        """JSON-safe records, oldest first, preceded by no header —
        every line round-trips through ``json.loads``."""
        return [decision.as_record() for decision in self._decisions]

    def write_jsonl(self, path) -> int:
        """Write the trail as JSON Lines; returns the record count.

        The first line is a ``{"type": "audit_summary", ...}`` header so
        a truncated ring is visible in the artifact itself.
        """
        written = 0
        with open(path, "w", encoding="utf-8") as handle:
            header = {"type": "audit_summary", **self.summary()}
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            written += 1
            for decision in self._decisions:
                handle.write(
                    json.dumps(decision.as_record(), sort_keys=True) + "\n"
                )
                written += 1
        return written


class NullAuditTrail:
    """Do-nothing trail with the :class:`AuditTrail` interface."""

    enabled = False
    recorded = 0
    dropped = 0
    capacity: Optional[int] = 0
    keep_candidates = False

    __slots__ = ()

    @property
    def decisions(self) -> List[DecisionAudit]:
        return []

    def record(self, decision: DecisionAudit) -> None:
        return None

    def __len__(self) -> int:
        return 0

    def summary(self) -> Dict[str, Any]:
        return {
            "decisions": 0,
            "recorded": 0,
            "dropped": 0,
            "capacity": 0,
            "candidates_kept": False,
        }

    def as_records(self) -> List[Dict[str, Any]]:
        return []


#: Shared no-op trail: safe to pass anywhere, records nothing.
NULL_AUDIT = NullAuditTrail()
