"""Observability: structured tracing, counters, logging, profiling.

The ``repro.obs`` subsystem is how every other layer reports what it
did without changing what it does:

* :class:`Tracer` / :data:`NULL_TRACER` — hierarchical timed spans and
  a per-iteration event stream, exportable as JSONL
  (:mod:`repro.obs.tracer`);
* :class:`Counters` and the ambient :func:`count` hook — named event
  counts from the scheduler's inner loops (:mod:`repro.obs.counters`);
* :func:`get_logger` / :func:`configure_logging` — ``repro.*`` stdlib
  loggers, wired to the CLI's ``-v``/``-q`` (:mod:`repro.obs.logconfig`);
* :func:`render_profile` — the phase-time/counter table printed by
  ``repro … --profile`` (:mod:`repro.obs.profile`);
* :func:`merge_telemetry` — key-wise aggregation of telemetry
  summaries from independent (possibly concurrent) runs
  (:mod:`repro.obs.merge`).

Everything defaults to off: code instrumented with :data:`NULL_TRACER`
and an inactive counter registry behaves — and costs — the same as
before instrumentation.  See docs/observability.md.
"""

from .counters import (
    AUTHORIZATION_CHECKS,
    CERTIFIER_OFFSET_CLASSES,
    CERTIFIER_SLOT_CHECKS,
    DISTRIBUTION_REBUILDS,
    FORCE_CACHE_HITS,
    FORCE_CACHE_INVALIDATIONS,
    FORCE_CACHE_MISSES,
    FORCE_EVALUATIONS,
    FRAME_REDUCTIONS,
    KNOWN_COUNTERS,
    LINT_FINDINGS,
    LINT_RULES_RUN,
    MODULO_MAX_TRANSFORMS,
    SCHEDULER_ITERATIONS,
    SIMULATION_CYCLES,
    Counters,
    active_counters,
    count,
)
from .logconfig import configure_logging, get_logger, verbosity_level
from .merge import merge_telemetry
from .profile import render_counter_table, render_phase_table, render_profile
from .tracer import (
    NULL_TRACER,
    NullTracer,
    SpanRecord,
    TraceEvent,
    Tracer,
    as_tracer,
)

__all__ = [
    "AUTHORIZATION_CHECKS",
    "CERTIFIER_OFFSET_CLASSES",
    "CERTIFIER_SLOT_CHECKS",
    "DISTRIBUTION_REBUILDS",
    "FORCE_CACHE_HITS",
    "FORCE_CACHE_INVALIDATIONS",
    "FORCE_CACHE_MISSES",
    "FORCE_EVALUATIONS",
    "FRAME_REDUCTIONS",
    "KNOWN_COUNTERS",
    "LINT_FINDINGS",
    "LINT_RULES_RUN",
    "MODULO_MAX_TRANSFORMS",
    "NULL_TRACER",
    "NullTracer",
    "SCHEDULER_ITERATIONS",
    "SIMULATION_CYCLES",
    "SpanRecord",
    "TraceEvent",
    "Tracer",
    "Counters",
    "active_counters",
    "as_tracer",
    "configure_logging",
    "count",
    "get_logger",
    "merge_telemetry",
    "render_counter_table",
    "render_phase_table",
    "render_profile",
    "verbosity_level",
]
