"""Observability: tracing, metrics, events, audit, logging, profiling.

The ``repro.obs`` subsystem is how every other layer reports what it
did without changing what it does:

* :class:`Tracer` / :data:`NULL_TRACER` — hierarchical timed spans and
  a per-iteration event stream, exportable as JSONL; a tracer built
  with ``bus=`` publishes events live (:mod:`repro.obs.tracer`);
* :class:`MetricsRegistry` — typed Counter/Gauge/Histogram instruments
  with associatively mergeable summaries (:mod:`repro.obs.metrics`);
  :class:`Counters` and the ambient :func:`count`/:func:`observe`/
  :func:`set_gauge` hooks feed it from the scheduler's inner loops
  (:mod:`repro.obs.counters`);
* :class:`EventBus` / :class:`JsonlEventWriter` /
  :func:`prometheus_text` — subscribe-able structured event streaming
  and exporters (:mod:`repro.obs.events`);
* :class:`AuditTrail` — opt-in ring-buffered record of every reduction
  decision, exportable via ``repro schedule --audit``
  (:mod:`repro.obs.audit`);
* :func:`get_logger` / :func:`configure_logging` — ``repro.*`` stdlib
  loggers, wired to the CLI's ``-v``/``-q`` (:mod:`repro.obs.logconfig`);
* :func:`render_profile` — the phase/counter/gauge/histogram tables
  printed by ``repro … --profile`` (:mod:`repro.obs.profile`);
* :func:`merge_telemetry` — associative, order-independent aggregation
  of telemetry summaries from independent (possibly concurrent) runs
  (:mod:`repro.obs.merge`).

Everything defaults to off: code instrumented with :data:`NULL_TRACER`
and an inactive counter registry behaves — and costs — the same as
before instrumentation.  See docs/observability.md.
"""

from .audit import (
    DEFAULT_CAPACITY,
    NULL_AUDIT,
    AuditTrail,
    CandidateAudit,
    DecisionAudit,
    NullAuditTrail,
)
from .counters import (
    AUDIT_DECISIONS,
    AUTHORIZATION_CHECKS,
    CERTIFIER_OFFSET_CLASSES,
    CERTIFIER_SLOT_CHECKS,
    DISTRIBUTION_REBUILDS,
    FORCE_CACHE_ASSEMBLIES,
    FORCE_CACHE_HITS,
    FORCE_CACHE_INVALIDATIONS,
    FORCE_CACHE_MISSES,
    FORCE_EVALUATIONS,
    FRAME_REDUCTIONS,
    KNOWN_COUNTERS,
    LINT_FINDINGS,
    LINT_RULES_RUN,
    MODULO_MAX_TRANSFORMS,
    SCHEDULER_ITERATIONS,
    SIMULATION_CYCLES,
    Counters,
    active_counters,
    count,
    observe,
    set_gauge,
)
from .events import (
    EVENT_CANDIDATE,
    EVENT_CERTIFY,
    EVENT_CERTIFY_TYPE,
    EVENT_COMMIT,
    EVENT_DEGRADE,
    EVENT_PLACEMENT,
    EVENT_PRUNE,
    EVENT_REDUCTION,
    EventBus,
    JsonlEventWriter,
    prometheus_text,
)
from .logconfig import configure_logging, get_logger, verbosity_level
from .merge import merge_telemetry
from .metrics import (
    CANDIDATE_SECONDS,
    CANDIDATES_SCANNED,
    DIRTY_SET_SIZE,
    FRAMES_REMAINING,
    INCUMBENT_AREA,
    KNOWN_GAUGES,
    KNOWN_HISTOGRAMS,
    REDUCTION_SCORE,
    SELECT_SECONDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_gauge_summary,
    merge_histogram_summary,
)
from .profile import (
    render_counter_table,
    render_gauge_table,
    render_histogram_table,
    render_phase_table,
    render_profile,
)
from .tracer import (
    NULL_TRACER,
    NullTracer,
    SpanRecord,
    TraceEvent,
    Tracer,
    as_tracer,
)

__all__ = [
    "AUDIT_DECISIONS",
    "AUTHORIZATION_CHECKS",
    "AuditTrail",
    "CANDIDATES_SCANNED",
    "CANDIDATE_SECONDS",
    "CERTIFIER_OFFSET_CLASSES",
    "CERTIFIER_SLOT_CHECKS",
    "CandidateAudit",
    "Counter",
    "Counters",
    "DEFAULT_CAPACITY",
    "DIRTY_SET_SIZE",
    "DISTRIBUTION_REBUILDS",
    "DecisionAudit",
    "EVENT_CANDIDATE",
    "EVENT_CERTIFY",
    "EVENT_CERTIFY_TYPE",
    "EVENT_COMMIT",
    "EVENT_DEGRADE",
    "EVENT_PLACEMENT",
    "EVENT_PRUNE",
    "EVENT_REDUCTION",
    "EventBus",
    "FORCE_CACHE_ASSEMBLIES",
    "FORCE_CACHE_HITS",
    "FORCE_CACHE_INVALIDATIONS",
    "FORCE_CACHE_MISSES",
    "FORCE_EVALUATIONS",
    "FRAMES_REMAINING",
    "FRAME_REDUCTIONS",
    "Gauge",
    "Histogram",
    "INCUMBENT_AREA",
    "JsonlEventWriter",
    "KNOWN_COUNTERS",
    "KNOWN_GAUGES",
    "KNOWN_HISTOGRAMS",
    "LINT_FINDINGS",
    "LINT_RULES_RUN",
    "MODULO_MAX_TRANSFORMS",
    "MetricsRegistry",
    "NULL_AUDIT",
    "NULL_TRACER",
    "NullAuditTrail",
    "NullTracer",
    "REDUCTION_SCORE",
    "SCHEDULER_ITERATIONS",
    "SELECT_SECONDS",
    "SIMULATION_CYCLES",
    "SpanRecord",
    "TraceEvent",
    "Tracer",
    "active_counters",
    "as_tracer",
    "configure_logging",
    "count",
    "get_logger",
    "merge_gauge_summary",
    "merge_histogram_summary",
    "merge_telemetry",
    "observe",
    "prometheus_text",
    "render_counter_table",
    "render_gauge_table",
    "render_histogram_table",
    "render_phase_table",
    "render_profile",
    "set_gauge",
    "verbosity_level",
]
