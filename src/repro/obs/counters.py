"""Named event counters with an ambient activation hook.

A :class:`Counters` registry holds integer counts of the interesting
events of one scheduling (or simulation) run: force evaluations,
modulo-max transforms, frame reductions, distribution rebuilds,
authorization checks.  Counts are incremented either directly
(``counters.inc("force_evaluations")``) or — from leaf modules that have
no handle on the current run — through the module-level :func:`count`
hook, which forwards to whichever registry is *active* in the enclosing
``with counters.activate():`` block.

When no registry is active, :func:`count` is a single global load plus a
``None`` check: cheap enough for the scheduler's innermost loops, so the
default (uninstrumented) path stays effectively free.

The activation hook is a plain module global, not a context variable:
one scheduling run owns the interpreter while it executes (the solvers
are single-threaded), and a global keeps the hot-path check as small as
possible.  Nested activations restore the previous registry on exit.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Optional

#: Canonical counter names incremented by the instrumented modules.
#: Other names are allowed — the registry is open — but these are the
#: ones the scheduler, binding, and simulation layers emit.
FORCE_EVALUATIONS = "force_evaluations"
MODULO_MAX_TRANSFORMS = "modulo_max_transforms"
FRAME_REDUCTIONS = "frame_reductions"
DISTRIBUTION_REBUILDS = "distribution_rebuilds"
AUTHORIZATION_CHECKS = "authorization_checks"
SCHEDULER_ITERATIONS = "scheduler_iterations"
SIMULATION_CYCLES = "simulation_cycles"
FORCE_CACHE_HITS = "force_cache_hits"
FORCE_CACHE_MISSES = "force_cache_misses"
FORCE_CACHE_INVALIDATIONS = "force_cache_invalidations"
CERTIFIER_OFFSET_CLASSES = "certifier_offset_classes"
CERTIFIER_SLOT_CHECKS = "certifier_slot_checks"
LINT_RULES_RUN = "lint_rules_run"
LINT_FINDINGS = "lint_findings"

KNOWN_COUNTERS = (
    FORCE_EVALUATIONS,
    MODULO_MAX_TRANSFORMS,
    FRAME_REDUCTIONS,
    DISTRIBUTION_REBUILDS,
    AUTHORIZATION_CHECKS,
    SCHEDULER_ITERATIONS,
    SIMULATION_CYCLES,
    FORCE_CACHE_HITS,
    FORCE_CACHE_MISSES,
    FORCE_CACHE_INVALIDATIONS,
    CERTIFIER_OFFSET_CLASSES,
    CERTIFIER_SLOT_CHECKS,
    LINT_RULES_RUN,
    LINT_FINDINGS,
)


class Counters:
    """An open registry of named integer counters."""

    __slots__ = ("_data",)

    def __init__(self) -> None:
        self._data: Dict[str, int] = {}

    def inc(self, name: str, amount: int = 1) -> None:
        """Increment one counter (created at 0 on first use)."""
        self._data[name] = self._data.get(name, 0) + amount

    def get(self, name: str) -> int:
        """Current value of a counter; 0 if it was never incremented."""
        return self._data.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        """Snapshot of all counters, sorted by name."""
        return {name: self._data[name] for name in sorted(self._data)}

    def reset(self) -> None:
        """Zero every counter."""
        self._data.clear()

    def merge(self, other: "Counters") -> None:
        """Add another registry's counts into this one."""
        for name, value in other._data.items():
            self.inc(name, value)

    def activate(self) -> "Iterator[Counters]":
        """Install this registry as the ambient :func:`count` target."""
        return _activate(self)

    def __bool__(self) -> bool:
        return any(self._data.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"Counters({inner})"


_active: Optional[Counters] = None


@contextmanager
def _activate(counters: Counters) -> Iterator[Counters]:
    global _active
    previous = _active
    _active = counters
    try:
        yield counters
    finally:
        _active = previous


def active_counters() -> Optional[Counters]:
    """The registry currently receiving ambient counts, if any."""
    return _active


def count(name: str, amount: int = 1) -> None:
    """Increment ``name`` on the active registry; no-op when none is."""
    if _active is not None:
        _active.inc(name, amount)
