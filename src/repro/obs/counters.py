"""Named event counters with an ambient activation hook.

Since the metrics registry landed (:mod:`repro.obs.metrics`), a
:class:`Counters` object is a *compatibility shim* over a
:class:`~repro.obs.metrics.MetricsRegistry`: the historical API
(``inc``/``get``/``as_dict``/``merge``/``activate``) is preserved
verbatim, while the registry underneath also carries the typed gauge
and histogram instruments.  Code that held a ``Counters`` keeps
working; code that wants the full registry reads ``counters.registry``.

Counts are incremented either directly
(``counters.inc("force_evaluations")``) or — from leaf modules that have
no handle on the current run — through the module-level :func:`count`
hook, which forwards to whichever registry is *active* in the enclosing
``with counters.activate():`` block.  :func:`observe` and
:func:`set_gauge` are the equivalent ambient hooks for histograms and
gauges.

When no registry is active, each hook is a single global load plus a
``None`` check: cheap enough for the scheduler's innermost loops, so the
default (uninstrumented) path stays effectively free.

The activation hook is a plain module global, not a context variable:
one scheduling run owns the interpreter while it executes (the solvers
are single-threaded), and a global keeps the hot-path check as small as
possible.  Nested activations restore the previous registry on exit.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from .metrics import MetricsRegistry

#: Canonical counter names incremented by the instrumented modules.
#: Other names are allowed — the registry is open — but these are the
#: ones the scheduler, binding, and simulation layers emit.
FORCE_EVALUATIONS = "force_evaluations"
MODULO_MAX_TRANSFORMS = "modulo_max_transforms"
FRAME_REDUCTIONS = "frame_reductions"
DISTRIBUTION_REBUILDS = "distribution_rebuilds"
AUTHORIZATION_CHECKS = "authorization_checks"
SCHEDULER_ITERATIONS = "scheduler_iterations"
SIMULATION_CYCLES = "simulation_cycles"
FORCE_CACHE_HITS = "force_cache_hits"
FORCE_CACHE_MISSES = "force_cache_misses"
FORCE_CACHE_INVALIDATIONS = "force_cache_invalidations"
FORCE_CACHE_ASSEMBLIES = "force_cache_assemblies"
CERTIFIER_OFFSET_CLASSES = "certifier_offset_classes"
CERTIFIER_SLOT_CHECKS = "certifier_slot_checks"
ABSINT_TRANSFERS = "absint_transfers"
ABSINT_WIDENINGS = "absint_widenings"
ABSINT_FASTPATH_PROOFS = "absint_fastpath_proofs"
LINT_RULES_RUN = "lint_rules_run"
LINT_FINDINGS = "lint_findings"
AUDIT_DECISIONS = "audit_decisions"
SELECTION_RESCORED = "selection_rescored"
SELECTION_SKIPPED = "selection_skipped"

KNOWN_COUNTERS = (
    FORCE_EVALUATIONS,
    MODULO_MAX_TRANSFORMS,
    FRAME_REDUCTIONS,
    DISTRIBUTION_REBUILDS,
    AUTHORIZATION_CHECKS,
    SCHEDULER_ITERATIONS,
    SIMULATION_CYCLES,
    FORCE_CACHE_HITS,
    FORCE_CACHE_MISSES,
    FORCE_CACHE_INVALIDATIONS,
    FORCE_CACHE_ASSEMBLIES,
    CERTIFIER_OFFSET_CLASSES,
    CERTIFIER_SLOT_CHECKS,
    ABSINT_TRANSFERS,
    ABSINT_WIDENINGS,
    ABSINT_FASTPATH_PROOFS,
    LINT_RULES_RUN,
    LINT_FINDINGS,
    AUDIT_DECISIONS,
    SELECTION_RESCORED,
    SELECTION_SKIPPED,
)


class Counters:
    """The historical counter API, now a shim over a metrics registry."""

    __slots__ = ("registry",)

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()

    def inc(self, name: str, amount: int = 1) -> None:
        """Increment one counter (created at 0 on first use)."""
        self.registry.inc(name, amount)

    def get(self, name: str) -> int:
        """Current value of a counter; 0 if it was never incremented."""
        return self.registry.counter_value(name)

    def as_dict(self) -> Dict[str, int]:
        """Snapshot of all counters, sorted by name."""
        return self.registry.counters_dict()

    def reset(self) -> None:
        """Zero every instrument of the underlying registry."""
        self.registry.reset()

    def merge(self, other: "Counters") -> None:
        """Add another registry's counts (and other instruments) into this one."""
        self.registry.merge(other.registry)

    def activate(self) -> "Iterator[Counters]":
        """Install this registry as the ambient hook target."""
        return _activate(self)

    def __bool__(self) -> bool:
        return any(self.as_dict().values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"Counters({inner})"


_active: Optional[Counters] = None


@contextmanager
def _activate(counters: Counters) -> Iterator[Counters]:
    global _active
    previous = _active
    _active = counters
    try:
        yield counters
    finally:
        _active = previous


def active_counters() -> Optional[Counters]:
    """The registry currently receiving ambient counts, if any."""
    return _active


def count(name: str, amount: int = 1) -> None:
    """Increment ``name`` on the active registry; no-op when none is."""
    if _active is not None:
        _active.registry.inc(name, amount)


def observe(name: str, value: float) -> None:
    """Record a histogram observation on the active registry; else no-op."""
    if _active is not None:
        _active.registry.observe(name, value)


def observe_many(name: str, value: float, n: int) -> None:
    """Record ``n`` equal observations on the active registry; else no-op.

    The batched force kernels fold a whole (op × slot) reduction into
    one aggregate record — e.g. the mean per-evaluation latency times
    the batch width — so the uninstrumented hot path still pays only a
    single global load and ``None`` check per batch.
    """
    if _active is not None:
        _active.registry.observe_many(name, value, n)


def set_gauge(name: str, value: float) -> None:
    """Sample a gauge on the active registry; no-op when none is."""
    if _active is not None:
        _active.registry.set_gauge(name, value)
