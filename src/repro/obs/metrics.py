"""Typed metric instruments: counters, gauges, and histograms.

A :class:`MetricsRegistry` replaces the ad-hoc ``{name: int}`` counters
dict of the first-generation observability layer with three typed
instruments:

* :class:`Counter` — a monotonically increasing integer total (force
  evaluations, cache hits, …);
* :class:`Gauge` — a sampled level with its observed extremes (mobile
  frames remaining, incumbent best area, …);
* :class:`Histogram` — a value distribution over fixed geometric
  buckets, reporting ``count``/``sum``/``min``/``max`` exactly and
  ``p50``/``p95`` from the buckets (per-iteration selection time,
  dirty-set sizes, cache-assembly latencies, …).

Two properties the rest of the stack depends on:

* **Mergeable summaries.**  Every instrument serializes to a plain-data
  summary (:meth:`Histogram.summary` etc.) and every summary shape has
  an *associative, commutative* merge (:func:`merge_histogram_summary`,
  :func:`merge_gauge_summary`) — bucket counts add, extremes combine
  through min/max — so streamed worker telemetry can be folded
  incrementally in any order (:mod:`repro.obs.merge`).  Because the
  bucket boundaries are fixed globally rather than fitted per
  histogram, merging never re-bins.
* **Compatibility.**  :class:`repro.obs.counters.Counters` is now a
  thin shim over a registry; ``telemetry["counters"]`` keeps its
  ``{name: int}`` shape while ``telemetry["histograms"]`` and
  ``telemetry["gauges"]`` carry the new instruments.

The quantile estimates are bucket-resolved: ``p50``/``p95`` return the
upper bound of the bucket holding the target rank, clamped to the exact
observed ``[min, max]``.  Estimates are deterministic and stable under
merging — the same observations always produce the same quantiles, no
matter how they were batched.

See :func:`prometheus_text` in :mod:`repro.obs.events` for the
Prometheus text rendering of a registry snapshot.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping, Optional

#: Geometric bucket grid shared by every histogram: bucket ``i`` covers
#: values in ``(BUCKET_BASE * 2**(i-1), BUCKET_BASE * 2**i]`` and bucket
#: 0 covers everything at or below ``BUCKET_BASE``.  The base resolves
#: nanoseconds; ``BUCKET_COUNT`` buckets reach ~1.2e27, far past any
#: duration or set size the schedulers produce.
BUCKET_BASE = 1e-9
BUCKET_COUNT = 120


def bucket_index(value: float) -> int:
    """Index of the fixed geometric bucket covering ``value``."""
    if value <= BUCKET_BASE:
        return 0
    index = 0
    bound = BUCKET_BASE
    # Doubling loop instead of log2: exact at bucket boundaries (no
    # float-log wobble deciding which side of a power of two lands in).
    while bound < value and index < BUCKET_COUNT:
        bound *= 2.0
        index += 1
    return index


def bucket_bound(index: int) -> float:
    """Upper bound of bucket ``index`` on the shared geometric grid."""
    return BUCKET_BASE * (2.0 ** index)


class Counter:
    """A named monotonically increasing integer total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0) -> None:
        self.name = name
        self.value = value

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A named sampled level that remembers its observed extremes."""

    __slots__ = ("name", "value", "min", "max", "samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[float] = None
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.samples = 0

    def set(self, value: float) -> None:
        self.value = value
        self.samples += 1
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def summary(self) -> Dict[str, Any]:
        return {
            "value": self.value,
            "min": self.min,
            "max": self.max,
            "samples": self.samples,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """A value distribution over the shared geometric bucket grid."""

    __slots__ = ("name", "count", "sum", "min", "max", "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        #: Sparse ``{bucket index: observation count}``.
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        index = bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    def observe_many(self, value: float, n: int) -> None:
        """Record ``n`` observations of the same ``value`` in one call.

        The batched-kernel hot paths record one aggregate per reduction
        (typically the per-evaluation mean of a batch) instead of one
        histogram update per candidate, keeping instrumentation overhead
        bounded regardless of batch width.  Equivalent to calling
        :meth:`observe` ``n`` times with ``value``: counts, sums,
        extremes, and bucket tallies all land identically, so summaries
        stay associative and merge-stable.
        """
        if n <= 0:
            return
        value = float(value)
        self.count += n
        self.sum += value * n
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        index = bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + n

    def percentile(self, q: float) -> Optional[float]:
        """Bucket-resolved quantile, clamped to the observed extremes.

        Returns the upper bound of the bucket holding the ``q``-rank
        observation; ``None`` for an empty histogram.  Deterministic and
        merge-stable (see module docstring).
        """
        if not self.count:
            return None
        target = max(1, int(q * self.count + 0.5))
        seen = 0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= target:
                estimate = bucket_bound(index)
                assert self.min is not None and self.max is not None
                return min(max(estimate, self.min), self.max)
        return self.max

    @property
    def mean(self) -> Optional[float]:
        return self.sum / self.count if self.count else None

    def summary(self) -> Dict[str, Any]:
        """Plain-data summary: exact volumes plus bucket counts.

        The shape is JSON-safe (bucket keys are strings) and merges
        associatively through :func:`merge_histogram_summary`.
        """
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "buckets": {str(i): self.buckets[i] for i in sorted(self.buckets)},
        }

    @classmethod
    def from_summary(cls, name: str, summary: Mapping[str, Any]) -> "Histogram":
        """Rebuild a histogram from a :meth:`summary` dict."""
        histogram = cls(name)
        histogram.count = int(summary.get("count") or 0)
        histogram.sum = float(summary.get("sum") or 0.0)
        histogram.min = summary.get("min")
        histogram.max = summary.get("max")
        histogram.buckets = {
            int(i): int(c) for i, c in (summary.get("buckets") or {}).items()
        }
        return histogram

    def merge_summary(self, summary: Mapping[str, Any]) -> None:
        """Fold another histogram's summary into this instrument."""
        self.count += int(summary.get("count") or 0)
        self.sum += float(summary.get("sum") or 0.0)
        other_min = summary.get("min")
        if other_min is not None and (self.min is None or other_min < self.min):
            self.min = other_min
        other_max = summary.get("max")
        if other_max is not None and (self.max is None or other_max > self.max):
            self.max = other_max
        for index, count in (summary.get("buckets") or {}).items():
            index = int(index)
            self.buckets[index] = self.buckets.get(index, 0) + int(count)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name}: n={self.count}, sum={self.sum:g})"


def merge_histogram_summary(
    into: Dict[str, Any], part: Mapping[str, Any]
) -> Dict[str, Any]:
    """Merge one histogram summary into another, in place.

    Associative and commutative: counts and bucket tallies add, extremes
    combine through min/max, and the quantiles are recomputed from the
    merged buckets — so any fold order over worker summaries produces
    the same aggregate.
    """
    merged = Histogram.from_summary("", into)
    merged.merge_summary(part)
    into.clear()
    into.update(merged.summary())
    return into


def merge_gauge_summary(
    into: Dict[str, Any], part: Mapping[str, Any]
) -> Dict[str, Any]:
    """Merge one gauge summary into another, in place.

    ``min``/``max``/``samples`` merge exactly; the merged ``value``
    (a "last seen" level, which has no order-free meaning across
    concurrent runs) is defined as the merged ``max`` so the result
    stays associative and order-independent.
    """
    for key, pick in (("min", min), ("max", max)):
        ours, theirs = into.get(key), part.get(key)
        if ours is None:
            into[key] = theirs
        elif theirs is not None:
            into[key] = pick(ours, theirs)
    into["samples"] = int(into.get("samples") or 0) + int(part.get("samples") or 0)
    into["value"] = into.get("max")
    return into


class MetricsRegistry:
    """An open registry of named counters, gauges, and histograms."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument accessors (get or create) ---------------------------
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    # -- hot-path shortcuts ---------------------------------------------
    def inc(self, name: str, amount: int = 1) -> None:
        """Increment a counter (created at 0 on first use)."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        instrument.value += amount

    def observe(self, name: str, value: float) -> None:
        """Record one histogram observation."""
        self.histogram(name).observe(value)

    def observe_many(self, name: str, value: float, n: int) -> None:
        """Record ``n`` equal histogram observations in one batched call."""
        self.histogram(name).observe_many(value, n)

    def set_gauge(self, name: str, value: float) -> None:
        """Sample a gauge level."""
        self.gauge(name).set(value)

    # -- views -----------------------------------------------------------
    def counter_value(self, name: str) -> int:
        instrument = self._counters.get(name)
        return instrument.value if instrument is not None else 0

    def counters_dict(self) -> Dict[str, int]:
        """``{name: value}`` snapshot of the counters, sorted by name."""
        return {
            name: self._counters[name].value for name in sorted(self._counters)
        }

    def gauges_dict(self) -> Dict[str, Dict[str, Any]]:
        return {name: self._gauges[name].summary() for name in sorted(self._gauges)}

    def histograms_dict(self) -> Dict[str, Dict[str, Any]]:
        return {
            name: self._histograms[name].summary()
            for name in sorted(self._histograms)
        }

    def snapshot(self) -> Dict[str, Any]:
        """Full plain-data snapshot: counters, gauges, histograms."""
        return {
            "counters": self.counters_dict(),
            "gauges": self.gauges_dict(),
            "histograms": self.histograms_dict(),
        }

    # -- lifecycle --------------------------------------------------------
    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's instruments into this one."""
        for name, counter in other._counters.items():
            self.inc(name, counter.value)
        for name, gauge in other._gauges.items():
            summary = self.gauge(name).summary()
            merged = merge_gauge_summary(summary, gauge.summary())
            target = self.gauge(name)
            target.value = merged["value"]
            target.min = merged["min"]
            target.max = merged["max"]
            target.samples = merged["samples"]
        for name, histogram in other._histograms.items():
            self.histogram(name).merge_summary(histogram.summary())

    def __bool__(self) -> bool:
        return (
            any(c.value for c in self._counters.values())
            or any(g.samples for g in self._gauges.values())
            or any(h.count for h in self._histograms.values())
        )


#: Canonical histogram names emitted by the instrumented schedulers.
SELECT_SECONDS = "select_seconds"
DIRTY_SET_SIZE = "dirty_set_size"
REDUCTION_SCORE = "reduction_score"
CANDIDATES_SCANNED = "candidates_scanned"
CANDIDATE_SECONDS = "candidate_seconds"
FORCE_EVAL_SECONDS = "force_eval_seconds"

#: Canonical gauge names.
FRAMES_REMAINING = "frames_remaining"
INCUMBENT_AREA = "incumbent_area"

KNOWN_HISTOGRAMS = (
    SELECT_SECONDS,
    DIRTY_SET_SIZE,
    REDUCTION_SCORE,
    CANDIDATES_SCANNED,
    CANDIDATE_SECONDS,
    FORCE_EVAL_SECONDS,
)

KNOWN_GAUGES = (
    FRAMES_REMAINING,
    INCUMBENT_AREA,
)


def iter_metric_summaries(
    telemetry: Mapping[str, Any],
) -> Iterable[Dict[str, Any]]:  # pragma: no cover - convenience helper
    """Yield ``{"kind", "name", ...}`` rows for every instrument in a
    telemetry summary — a uniform iteration surface for exporters."""
    for name, value in (telemetry.get("counters") or {}).items():
        yield {"kind": "counter", "name": name, "value": value}
    for name, summary in (telemetry.get("gauges") or {}).items():
        yield {"kind": "gauge", "name": name, **summary}
    for name, summary in (telemetry.get("histograms") or {}).items():
        yield {"kind": "histogram", "name": name, **summary}
