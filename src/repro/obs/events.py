"""Structured event streaming: a subscribe-able bus plus exporters.

The first-generation tracer *collected* events; this module makes them
*observable while the run is still going*.  An :class:`EventBus` holds
subscriber callbacks; a :class:`~repro.obs.tracer.Tracer` built with
``bus=`` publishes every :class:`~repro.obs.tracer.TraceEvent` to the
bus the moment it is recorded.  That is how ``repro sweep --live``
renders per-candidate progress, and how a future scheduling service
will stream job progress without touching the schedulers again.

Canonical event names the instrumented layers emit (the stream is open;
subscribers must tolerate unknown names):

* ``reduction`` — one coupled-scheduler iteration (process, block, op,
  side, score, candidates, frames_remaining);
* ``placement`` — one classic-FDS placement;
* ``commit`` — the propagation effect of a committed reduction
  (changed ops, touched types, coupling scopes);
* ``candidate`` — one sweep candidate finished (periods, status, area,
  bound);
* ``prune`` / ``degrade`` — a candidate skipped by its bound / a run
  degraded to the fallback;
* ``certify_type`` / ``certify`` — per-type and whole-run certifier
  verdicts.

Exporters:

* :class:`JsonlEventWriter` — append events to a JSON-Lines stream as
  they happen (one durable line per event);
* :func:`prometheus_text` — render a telemetry summary (counters,
  gauges, histograms) in the Prometheus text exposition format.

Subscriber errors are never swallowed silently into the scheduler: a
raising subscriber is detached after logging one warning, so a broken
progress renderer cannot take a sweep down with it.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Mapping, Optional, TextIO

from .logconfig import get_logger
from .metrics import bucket_bound

_log = get_logger(__name__)

#: Canonical event names (see module docstring).
EVENT_REDUCTION = "reduction"
EVENT_PLACEMENT = "placement"
EVENT_COMMIT = "commit"
EVENT_CANDIDATE = "candidate"
EVENT_PRUNE = "prune"
EVENT_DEGRADE = "degrade"
EVENT_CERTIFY_TYPE = "certify_type"
EVENT_CERTIFY = "certify"

Subscriber = Callable[[Any], None]


class EventBus:
    """Fan-out of trace events to subscriber callbacks, as they happen.

    Subscribers receive the live :class:`~repro.obs.tracer.TraceEvent`
    (name, time, span path, attrs).  ``subscribe`` returns the callback
    so it can be used as a decorator; ``unsubscribe`` detaches it.  A
    subscriber that raises is detached after one logged warning —
    observation must never abort the observed run.
    """

    __slots__ = ("_subscribers", "published")

    def __init__(self) -> None:
        self._subscribers: List[Subscriber] = []
        self.published = 0

    def subscribe(self, callback: Subscriber) -> Subscriber:
        self._subscribers.append(callback)
        return callback

    def unsubscribe(self, callback: Subscriber) -> None:
        try:
            self._subscribers.remove(callback)
        except ValueError:
            pass

    def __len__(self) -> int:
        return len(self._subscribers)

    def publish(self, event: Any) -> None:
        """Deliver one event to every subscriber (detaching raisers)."""
        self.published += 1
        broken: Optional[List[Subscriber]] = None
        for callback in self._subscribers:
            try:
                callback(event)
            except Exception:  # noqa: BLE001 - observation must not abort
                _log.warning(
                    "event subscriber %r raised; detaching it",
                    callback,
                    exc_info=True,
                )
                if broken is None:
                    broken = []
                broken.append(callback)
        if broken:
            for callback in broken:
                self.unsubscribe(callback)


class JsonlEventWriter:
    """Bus subscriber that appends each event as one JSON line.

    Usable directly as a callback (``bus.subscribe(writer)``) and as a
    context manager that closes the underlying stream::

        with JsonlEventWriter(path) as writer:
            bus.subscribe(writer)
            ...  # run
    """

    def __init__(self, target) -> None:
        if hasattr(target, "write"):
            self._handle: TextIO = target
            self._owns_handle = False
        else:
            self._handle = open(target, "w", encoding="utf-8")
            self._owns_handle = True
        self.written = 0

    def __call__(self, event: Any) -> None:
        record = event.as_record() if hasattr(event, "as_record") else dict(event)
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self.written += 1

    def close(self) -> None:
        if self._owns_handle:
            self._handle.close()

    def __enter__(self) -> "JsonlEventWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _metric_name(name: str, prefix: str) -> str:
    safe = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return f"{prefix}{safe}"


def _format_value(value: Any) -> str:
    if value is None:
        return "NaN"
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def prometheus_text(
    telemetry: Mapping[str, Any], *, prefix: str = "repro_"
) -> str:
    """Render a telemetry summary in the Prometheus text format.

    Consumes the ``SystemSchedule.telemetry`` /
    :meth:`repro.obs.tracer.Tracer.summary` shape: ``counters``
    (name → int), ``gauges`` and ``histograms`` (name → summary dicts),
    and ``phase_times`` (rendered as a gauge family labelled by phase).
    Histograms expose the standard cumulative ``_bucket{le=...}``
    series plus ``_sum`` and ``_count``.
    """
    lines: List[str] = []
    for name, value in (telemetry.get("counters") or {}).items():
        metric = _metric_name(name, prefix) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(value)}")
    phase_times = telemetry.get("phase_times") or {}
    if phase_times:
        metric = _metric_name("phase_seconds", prefix)
        lines.append(f"# TYPE {metric} gauge")
        for phase, seconds in phase_times.items():
            lines.append(f'{metric}{{phase="{phase}"}} {_format_value(seconds)}')
    for name, summary in (telemetry.get("gauges") or {}).items():
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(summary.get('value'))}")
        for suffix in ("min", "max"):
            if summary.get(suffix) is not None:
                lines.append(
                    f"{metric}_{suffix} {_format_value(summary[suffix])}"
                )
    for name, summary in (telemetry.get("histograms") or {}).items():
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        buckets: Dict[int, int] = {
            int(i): int(c) for i, c in (summary.get("buckets") or {}).items()
        }
        for index in sorted(buckets):
            cumulative += buckets[index]
            bound = repr(bucket_bound(index))
            lines.append(f'{metric}_bucket{{le="{bound}"}} {cumulative}')
        lines.append(
            f'{metric}_bucket{{le="+Inf"}} {int(summary.get("count") or 0)}'
        )
        lines.append(f"{metric}_sum {_format_value(summary.get('sum'))}")
        lines.append(f"{metric}_count {int(summary.get('count') or 0)}")
    return "\n".join(lines) + ("\n" if lines else "")
