"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause.

Every class carries a stable, short ``code`` used by the command-line
interface (``error [CODE]: message``) and by tooling that needs to key on
the failure category without parsing message text.  The taxonomy is
documented in docs/robustness.md and docs/api.md.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""

    #: Stable short error code, overridden by every subclass.
    code = "REPRO"


class GraphError(ReproError):
    """A dataflow graph is malformed (cycles, unknown nodes, bad edges)."""

    code = "GRAPH"


class SpecificationError(ReproError):
    """A system specification violates the model conditions (C1/C2)."""

    code = "SPEC"


class ResourceError(ReproError):
    """A resource type, library, or assignment is inconsistent."""

    code = "RES"


class InfeasibleError(ReproError):
    """No schedule exists under the given timing constraints."""

    code = "INFEASIBLE"


class PeriodError(ReproError):
    """A period assignment violates the grid-spacing constraints (eq. 3)."""

    code = "PERIOD"


class SchedulingError(ReproError):
    """The scheduler reached an inconsistent internal state."""

    code = "SCHED"


class VerificationError(ReproError):
    """A produced schedule failed static verification."""

    code = "VERIFY"


class BindingError(ReproError):
    """Operation-to-instance binding failed or is inconsistent."""

    code = "BIND"


class SimulationError(ReproError):
    """The cycle-accurate simulator detected a protocol violation."""

    code = "SIM"


class ValidationError(ReproError):
    """Preflight validation could not run (unreadable input, bad usage)."""

    code = "CHECK"
