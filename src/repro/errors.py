"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """A dataflow graph is malformed (cycles, unknown nodes, bad edges)."""


class SpecificationError(ReproError):
    """A system specification violates the model conditions (C1/C2)."""


class ResourceError(ReproError):
    """A resource type, library, or assignment is inconsistent."""


class InfeasibleError(ReproError):
    """No schedule exists under the given timing constraints."""


class PeriodError(ReproError):
    """A period assignment violates the grid-spacing constraints (eq. 3)."""


class SchedulingError(ReproError):
    """The scheduler reached an inconsistent internal state."""


class VerificationError(ReproError):
    """A produced schedule failed static verification."""


class BindingError(ReproError):
    """Operation-to-instance binding failed or is inconsistent."""


class SimulationError(ReproError):
    """The cycle-accurate simulator detected a protocol violation."""
