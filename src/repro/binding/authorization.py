"""Access-authorization tables: the synthesis-time sharing artifact.

The modulo method resolves access conflicts "through a periodical sequence
of access authorizations of the involved processes" (§3.2) — static,
with *no runtime executive*.  An :class:`AccessAuthorizationTable` makes
that artifact concrete for one global resource type: per period slot, how
many instances each sharing process may touch, and which concrete
instance ids those are (processes own disjoint id ranges per slot, so no
arbitration hardware is ever needed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import BindingError
from ..core.result import SystemSchedule
from ..obs.counters import AUTHORIZATION_CHECKS, count


@dataclass
class AccessAuthorizationTable:
    """Per-slot instance grants of one global resource type.

    Attributes:
        type_name: The global resource type.
        period: Its period ``P``.
        process_order: Sharing processes in grant order (determines the
            per-slot id ranges).
        grants: Per process, an integer array of length ``period``; entry
            ``tau`` is how many instances the process may use at absolute
            steps congruent to ``tau``.
    """

    type_name: str
    period: int
    process_order: Tuple[str, ...]
    grants: Dict[str, np.ndarray]
    #: Set for non-pipelined multicycle units, whose operations span
    #: several slots: per-slot id ranges cannot keep one physical instance
    #: across a span, so these types are bound by the periodic conflict
    #: coloring (:mod:`repro.core.coloring`) and each process nominally
    #: owns its peak-grant-sized range at every slot.
    fixed_ranges: bool = False
    #: Pool-size override (set from the coloring for multicycle types).
    pool_override: Optional[int] = None

    @classmethod
    def from_result(
        cls, result: SystemSchedule, type_name: str
    ) -> "AccessAuthorizationTable":
        """Derive the table from a finished system schedule."""
        if not result.assignment.is_global(type_name):
            raise BindingError(f"type {type_name!r} is not globally assigned")
        period = result.periods.period(type_name)
        order = tuple(result.assignment.group(type_name))
        grants = {
            process: result.authorization(process, type_name) for process in order
        }
        fixed = result.library.type(type_name).occupancy > 1
        return cls(
            type_name=type_name,
            period=period,
            process_order=order,
            grants=grants,
            fixed_ranges=fixed,
            pool_override=result.global_instances(type_name) if fixed else None,
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def grant(self, process_name: str, slot: int) -> int:
        """Instances granted to a process at one slot."""
        count(AUTHORIZATION_CHECKS)
        try:
            return int(self.grants[process_name][slot % self.period])
        except KeyError:
            raise BindingError(
                f"process {process_name!r} does not share {self.type_name!r}"
            ) from None

    def offset(self, process_name: str, slot: int) -> int:
        """First instance id owned by the process at one slot.

        With ``fixed_ranges`` the offset is slot-independent: each process
        owns ids sized by its peak grant at every slot.
        """
        slot %= self.period
        offset = 0
        for other in self.process_order:
            if other == process_name:
                return offset
            if self.fixed_ranges:
                offset += int(self.grants[other].max())
            else:
                offset += int(self.grants[other][slot])
        raise BindingError(
            f"process {process_name!r} does not share {self.type_name!r}"
        )

    def instance_ids(self, process_name: str, slot: int) -> range:
        """Concrete instance ids the process owns at one slot.

        With ``fixed_ranges`` the full per-process range is owned at every
        slot (the process's concurrent usage never exceeds its peak grant,
        and fixed ranges are disjoint across processes at all slots), so a
        multicycle operation can hold one id across its whole span.
        """
        start = self.offset(process_name, slot)
        if self.fixed_ranges:
            width = int(self.grants[process_name].max())
        else:
            width = self.grant(process_name, slot)
        return range(start, start + width)

    def demand(self) -> np.ndarray:
        """Total grants per slot (the pool must cover its maximum)."""
        total = np.zeros(self.period, dtype=int)
        for array in self.grants.values():
            total += array
        return total

    @property
    def pool_size(self) -> int:
        if self.pool_override is not None:
            return self.pool_override
        demand = self.demand()
        return int(demand.max()) if demand.size else 0

    # ------------------------------------------------------------------
    # Rendering (figure-1 style)
    # ------------------------------------------------------------------
    def render(self) -> str:
        """ASCII table: one row per process, one column per period slot."""
        header = "slot      " + " ".join(f"{tau:3d}" for tau in range(self.period))
        lines = [f"access authorizations for {self.type_name!r} (P={self.period})",
                 header]
        for process in self.process_order:
            cells = " ".join(f"{int(v):3d}" for v in self.grants[process])
            lines.append(f"{process:<10}" + cells)
        total = " ".join(f"{int(v):3d}" for v in self.demand())
        lines.append(f"{'total':<10}" + total)
        lines.append(f"pool size: {self.pool_size}")
        return "\n".join(lines)
