"""Post-scheduling binding: instances, authorizations, registers."""

from .authorization import AccessAuthorizationTable
from .instances import InstanceBinding, bind_instances
from .registers import (
    Lifetime,
    allocate_registers,
    register_requirement,
    value_lifetimes,
)

__all__ = [
    "AccessAuthorizationTable",
    "InstanceBinding",
    "allocate_registers",
    "Lifetime",
    "bind_instances",
    "register_requirement",
    "value_lifetimes",
]
