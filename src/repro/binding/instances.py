"""Operation-to-instance binding.

After scheduling, every operation is bound to a concrete functional-unit
instance:

* **local types** — classic left-edge binding per process: operations are
  colored over their occupancy intervals; blocks of one process reuse the
  same instance ids because they never execute concurrently (C2);
* **occupancy-1 global types** — the per-slot id ranges of the
  :class:`~repro.binding.authorization.AccessAuthorizationTable` partition
  the pool among the processes, and each operation is greedily assigned
  the smallest id that (a) lies inside its process's range at every period
  slot its occupancy spans and (b) is free at every step it occupies;
* **multicycle global types** — per-slot ranges cannot hold one physical
  instance across a multi-slot span, so these bind through the periodic
  conflict-graph coloring (:mod:`repro.core.coloring`) instead.

Mutually exclusive guarded operations may share an instance at the same
step — at most one of them executes per activation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import BindingError
from ..core.result import SystemSchedule
from .authorization import AccessAuthorizationTable

BlockKey = Tuple[str, str]
OpKey = Tuple[str, str, str]  # process, block, operation


@dataclass
class InstanceBinding:
    """Instance assignment of every operation of a system schedule.

    ``binding[(process, block, op)]`` is the instance index of the
    operation within either the global pool of its type (shared types) or
    the process-local pool (local types).
    """

    result: SystemSchedule
    binding: Dict[OpKey, int] = field(default_factory=dict)
    tables: Dict[str, AccessAuthorizationTable] = field(default_factory=dict)

    def instance_of(self, process: str, block: str, op_id: str) -> int:
        try:
            return self.binding[(process, block, op_id)]
        except KeyError:
            raise BindingError(
                f"operation {op_id!r} of {process}/{block} is not bound"
            ) from None

    def validate(self) -> None:
        """Re-check that no two concurrent operations share an instance.

        Mutually exclusive (guarded) operations may legitimately share an
        instance at the same step — at most one of them executes.
        """
        for (process_name, block_name), sched in self.result.block_schedules.items():
            occupancy_map: Dict[Tuple[str, int, int], List[str]] = {}
            for op in sched.graph:
                rtype = self.result.library.type_of(op)
                instance = self.instance_of(process_name, block_name, op.op_id)
                start = sched.start(op.op_id)
                for step in range(start, start + rtype.occupancy):
                    slot_key = (rtype.name, instance, step)
                    for holder_id in occupancy_map.get(slot_key, ()):
                        if not op.excludes(sched.graph.operation(holder_id)):
                            raise BindingError(
                                f"instance clash: {holder_id!r} and "
                                f"{op.op_id!r} of {process_name}/{block_name} "
                                f"both use {rtype.name}#{instance} at step {step}"
                            )
                    occupancy_map.setdefault(slot_key, []).append(op.op_id)


def bind_instances(result: SystemSchedule) -> InstanceBinding:
    """Bind every operation of a system schedule to an instance.

    Occupancy-1 global types bind through the per-slot id ranges of the
    authorization tables; multicycle global types bind through the
    periodic conflict coloring (:mod:`repro.core.coloring`), which keeps
    one physical instance across each operation's multi-slot span.
    """
    from ..core.coloring import multicycle_coloring

    binding = InstanceBinding(result=result)
    colorings = {}
    for type_name in result.assignment.global_types:
        binding.tables[type_name] = AccessAuthorizationTable.from_result(
            result, type_name
        )
        if result.library.type(type_name).occupancy > 1:
            colorings[type_name] = multicycle_coloring(result, type_name)
    for key in colorings:
        for op_key, color in colorings[key].items():
            binding.binding[op_key] = color
    for (process_name, block_name), sched in result.block_schedules.items():
        _bind_block(binding, process_name, block_name, colorings)
    binding.validate()
    return binding


def _bind_block(
    binding: InstanceBinding,
    process_name: str,
    block_name: str,
    colorings: Dict[str, Dict[OpKey, int]],
) -> None:
    result = binding.result
    sched = result.block_schedules[(process_name, block_name)]
    # Group operations by resource type, then bind each group left-edge.
    by_type: Dict[str, List[str]] = {}
    for op in sched.graph:
        by_type.setdefault(result.library.type_of(op).name, []).append(op.op_id)
    for type_name, op_ids in by_type.items():
        rtype = result.library.type(type_name)
        shared = result.assignment.shares_globally(type_name, process_name)
        if shared and type_name in colorings:
            continue  # multicycle global type: colored in bind_instances
        table = binding.tables.get(type_name) if shared else None
        # (instance, step) -> ops holding it (mutually exclusive ops may
        # share an instance at the same step: only one of them executes).
        busy: Dict[Tuple[int, int], List[str]] = {}
        offset = result.offset_of(process_name)
        for op_id in sorted(op_ids, key=lambda oid: (sched.start(oid), oid)):
            op = sched.graph.operation(op_id)
            start = sched.start(op_id)
            steps = range(start, start + rtype.occupancy)
            # Authorization tables are indexed by absolute slots; blocks
            # start at absolute times ≡ offset, so shift relative steps.
            slots = range(start + offset, start + offset + rtype.occupancy)
            instance = _first_free_instance(
                binding, process_name, type_name, table, busy, steps,
                slots, op, sched.graph,
            )
            if instance is None:
                raise BindingError(
                    f"no feasible instance for {op_id!r} "
                    f"({type_name}) in {process_name}/{block_name}"
                )
            for step in steps:
                busy.setdefault((instance, step), []).append(op_id)
            binding.binding[(process_name, block_name, op_id)] = instance


def _first_free_instance(
    binding: InstanceBinding,
    process_name: str,
    type_name: str,
    table: Optional[AccessAuthorizationTable],
    busy: Dict[Tuple[int, int], List[str]],
    steps: range,
    slots: range,
    op,
    graph,
) -> Optional[int]:
    if table is None:
        limit = max(
            1, binding.result.local_instances(process_name, type_name)
        )
        candidates = range(limit)
    else:
        # Ids usable at every absolute slot the occupancy spans.
        usable = None
        for slot in slots:
            ids = set(table.instance_ids(process_name, slot))
            usable = ids if usable is None else usable & ids
        candidates = sorted(usable or ())

    def compatible(instance: int) -> bool:
        for step in steps:
            for holder_id in busy.get((instance, step), ()):
                if not op.excludes(graph.operation(holder_id)):
                    return False
        return True

    for instance in candidates:
        if compatible(instance):
            return instance
    return None
