"""Register (storage) estimation from value lifetimes.

A value produced by an operation lives from the step its producer
finishes until the last consumer has started; the number of registers a
block needs is the maximum number of simultaneously live values (classic
left-edge register allocation lower bound).  Values consumed by nobody
(primary outputs) are kept alive to the block deadline.

This is an extension beyond the paper's scope — the paper notes that
multiplexer/wiring cost is not weighed — giving users a storage-side
counterweight to the functional-unit area numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..scheduling.schedule import BlockSchedule


@dataclass(frozen=True)
class Lifetime:
    """Live interval of one produced value, in block-relative steps."""

    op_id: str
    birth: int
    death: int  # exclusive

    @property
    def length(self) -> int:
        return max(0, self.death - self.birth)


def value_lifetimes(schedule: BlockSchedule) -> List[Lifetime]:
    """Lifetimes of all values produced inside the block."""
    graph = schedule.graph
    lifetimes: List[Lifetime] = []
    for op in graph:
        birth = schedule.finish(op.op_id)
        consumers = graph.successors(op.op_id)
        if consumers:
            death = max(schedule.start(c) for c in consumers) + 1
        else:
            death = schedule.deadline
        lifetimes.append(Lifetime(op_id=op.op_id, birth=birth, death=death))
    return lifetimes


def register_requirement(schedule: BlockSchedule) -> int:
    """Maximum number of simultaneously live values."""
    events: Dict[int, int] = {}
    for lifetime in value_lifetimes(schedule):
        if lifetime.length <= 0:
            continue
        events[lifetime.birth] = events.get(lifetime.birth, 0) + 1
        events[lifetime.death] = events.get(lifetime.death, 0) - 1
    live = 0
    peak = 0
    for step in sorted(events):
        live += events[step]
        peak = max(peak, live)
    return peak


def allocate_registers(schedule: BlockSchedule) -> Dict[str, int]:
    """Left-edge register allocation over the value lifetimes.

    Returns a mapping from producing operation id to register index; two
    values share a register iff their lifetimes do not overlap.  The
    number of registers used equals :func:`register_requirement` (the
    left-edge algorithm is optimal for interval graphs).
    """
    lifetimes = sorted(
        (lt for lt in value_lifetimes(schedule) if lt.length > 0),
        key=lambda lt: (lt.birth, lt.death, lt.op_id),
    )
    register_free_at: List[int] = []  # index -> step the register frees up
    allocation: Dict[str, int] = {}
    for lifetime in lifetimes:
        chosen = None
        for index, free_at in enumerate(register_free_at):
            if free_at <= lifetime.birth:
                chosen = index
                break
        if chosen is None:
            chosen = len(register_free_at)
            register_free_at.append(0)
        register_free_at[chosen] = lifetime.death
        allocation[lifetime.op_id] = chosen
    return allocation
