"""High-level convenience API: whole scheduling problems in one object.

Bridges the text format (:mod:`repro.ir.systemio`) and the live objects:
a :class:`Problem` bundles system, library, assignment, and periods, and
knows how to schedule itself globally or with the traditional local
baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .core.periods import PeriodAssignment, suggest_periods
from .core.result import SystemSchedule
from .core.scheduler import ModuloSystemScheduler
from .errors import SpecificationError
from .ir.process import SystemSpec
from .ir.systemio import SystemDocument
from .resources.assignment import ResourceAssignment
from .resources.library import ResourceLibrary, default_library
from .resources.types import resource_type
from .scheduling.forces import area_weights


@dataclass
class Problem:
    """A complete scheduling problem: what to schedule and how to share."""

    system: SystemSpec
    library: ResourceLibrary
    assignment: ResourceAssignment
    periods: PeriodAssignment

    def validate(self) -> None:
        self.library.covers(self.system)
        self.assignment.validate(self.system)
        self.periods.validate(self.assignment)
        self.system.validate(self.library.latency_of)

    def schedule(
        self, *, use_area_weights: bool = True, **scheduler_kwargs
    ) -> SystemSchedule:
        """Run the modulo system scheduler on this problem."""
        weights = area_weights(self.library) if use_area_weights else None
        scheduler = ModuloSystemScheduler(
            self.library, weights=weights, **scheduler_kwargs
        )
        return scheduler.schedule(self.system, self.assignment, self.periods)

    def schedule_local_baseline(
        self, *, use_area_weights: bool = True, **scheduler_kwargs
    ) -> SystemSchedule:
        """Run the traditional all-local scheduling for comparison."""
        weights = area_weights(self.library) if use_area_weights else None
        scheduler = ModuloSystemScheduler(
            self.library, weights=weights, **scheduler_kwargs
        )
        return scheduler.schedule(
            self.system, ResourceAssignment.all_local(self.library)
        )

    def dumps(self) -> str:
        """Serialize this problem as ``.sys`` text (see :func:`dumps_problem`)."""
        return dumps_problem(self)


def problem_from_document(document: SystemDocument) -> Problem:
    """Turn a parsed ``.sys`` document into a live :class:`Problem`.

    A document without ``resource`` directives gets the paper's default
    library; global types without an explicit ``period`` directive get the
    ``min-deadline`` heuristic period.
    """
    if document.resources:
        library = ResourceLibrary(
            resource_type(
                name,
                options["kinds"],
                latency=int(options["latency"]),
                area=float(options["area"]),
                pipelined=bool(options["pipelined"]),
                initiation_interval=int(options["ii"]),
            )
            for name, options in document.resources.items()
        )
    else:
        library = default_library()

    system = document.build_system()
    library.covers(system)

    assignment = ResourceAssignment(library)
    for type_name, group in document.globals.items():
        assignment.make_global(type_name, group)
    assignment.validate(system)

    periods: Dict[str, int] = dict(document.periods)
    missing = [t for t in assignment.global_types if t not in periods]
    if missing:
        suggested = suggest_periods(system, assignment, strategy="min-deadline")
        for type_name in missing:
            periods[type_name] = suggested.period(type_name)
    extra = [t for t in periods if not assignment.is_global(t)]
    if extra:
        raise SpecificationError(
            f"periods declared for non-global types: {extra}"
        )
    problem = Problem(
        system=system,
        library=library,
        assignment=assignment,
        periods=PeriodAssignment(periods),
    )
    problem.validate()
    return problem


def load_problem(path) -> Problem:
    """Parse a ``.sys`` file and build the :class:`Problem` it describes."""
    from .ir import systemio

    return problem_from_document(systemio.load(path))


def loads_problem(text: str) -> Problem:
    """Parse ``.sys`` text and build the :class:`Problem` it describes."""
    from .ir import systemio

    return problem_from_document(systemio.loads(text))


def dumps_problem(problem: Problem) -> str:
    """Serialize a whole :class:`Problem` as ``.sys`` text.

    The inverse of :func:`loads_problem`: the emitted text reparses into
    a problem with the same system, library, scope assignment, and
    periods, and an identical text round-trip schedules identically.
    This is how scheduling problems travel to worker processes in
    :mod:`repro.parallel` — as reviewable text instead of pickled live
    objects.
    """
    from .ir import systemio

    resources = {
        rtype.name: {
            "kinds": sorted(rtype.kinds, key=lambda kind: kind.value),
            "latency": rtype.latency,
            "area": rtype.area,
            "pipelined": rtype.pipelined,
            "ii": rtype.initiation_interval,
        }
        for rtype in problem.library.types
    }
    global_groups = {
        type_name: problem.assignment.group(type_name)
        for type_name in problem.assignment.global_types
    }
    return systemio.dumps(
        problem.system,
        resources=resources,
        global_groups=global_groups,
        periods=problem.periods.as_dict,
    )
