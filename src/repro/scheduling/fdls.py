"""Force-Directed List Scheduling (FDLS, Paulin & Knight §VI).

The resource-constrained sibling of FDS: operations are scheduled cycle
by cycle like a list scheduler, but when a control step is over-
subscribed the *deferral force* decides which candidates wait — the
operation whose deferral (frame reduced to ``[t+1, hi]``) yields the
lowest force is deferred first, keeping the distribution graphs smooth
instead of relying on a static urgency priority.

Latency minimization wraps the per-deadline pass: starting from the
critical path, the deadline grows until a pass succeeds (a pass fails
when an operation whose frame has collapsed onto the current step finds
no free unit and can no longer be deferred).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Set

from ..errors import InfeasibleError, SchedulingError
from ..ir.process import Block
from ..obs import as_tracer, get_logger
from ..resources.library import ResourceLibrary
from ..resources.types import ResourceType
from .forces import DEFAULT_LOOKAHEAD, hooke_force
from .schedule import BlockSchedule
from .state import BlockState

_log = get_logger(__name__)


class ForceDirectedListScheduler:
    """Resource-constrained FDLS for a single block.

    Args:
        library: Resource library.
        capacity: Instances available per resource type name.
        lookahead: Look-ahead fraction for the deferral forces.
        max_extension: Safety bound on deadline growth beyond the critical
            path; defaults to the total occupancy of the block (which
            always suffices: fully serial execution on one unit per type).
    """

    def __init__(
        self,
        library: ResourceLibrary,
        capacity: Mapping[str, int],
        *,
        lookahead: float = DEFAULT_LOOKAHEAD,
        max_extension: Optional[int] = None,
        tracer=None,
    ) -> None:
        self.library = library
        self.capacity = dict(capacity)
        self.lookahead = lookahead
        self.max_extension = max_extension
        self.tracer = as_tracer(tracer)
        for name, count in self.capacity.items():
            library.type(name)
            if count < 1:
                raise SchedulingError(f"capacity of {name!r} must be >= 1")

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def schedule(self, block: Block) -> BlockSchedule:
        """Find the smallest deadline admitting an FDLS pass."""
        graph = block.graph
        for rtype in self.library.types_used_by(graph):
            if rtype.name not in self.capacity:
                raise SchedulingError(f"no capacity given for type {rtype.name!r}")
        critical = graph.critical_path_length(self.library.latency_of)
        limit = self.max_extension
        if limit is None:
            limit = sum(self.library.latency_of(op) for op in graph)
        tracer = self.tracer
        with tracer.activate(), tracer.span("fdls", block=block.name):
            for deadline in range(critical, critical + limit + 1):
                schedule = self._pass(block, deadline)
                if tracer.enabled:
                    tracer.event(
                        "fdls_pass",
                        block=block.name,
                        deadline=deadline,
                        success=schedule is not None,
                    )
                if schedule is not None:
                    schedule.validate()
                    _log.debug(
                        "FDLS scheduled block %r at deadline %d",
                        block.name,
                        deadline,
                    )
                    return schedule
        raise SchedulingError(
            f"FDLS found no schedule up to deadline {critical + limit}"
        )

    # ------------------------------------------------------------------
    # One pass at a fixed deadline
    # ------------------------------------------------------------------
    def _pass(self, block: Block, deadline: int) -> Optional[BlockSchedule]:
        trial = Block(
            name=block.name,
            graph=block.graph,
            deadline=deadline,
            repeats=block.repeats,
        )
        try:
            state = BlockState(trial, self.library)
        except InfeasibleError:
            return None
        usage: Dict[str, List[int]] = {
            name: [0] * (deadline + 1) for name in self.capacity
        }
        placed: Set[str] = set()
        for step in range(deadline):
            if not self._schedule_step(state, usage, placed, step):
                return None
            if len(placed) == len(block.graph):
                break
        if len(placed) != len(block.graph):
            return None
        return BlockSchedule(
            graph=block.graph,
            library=self.library,
            starts=state.frames.as_schedule(),
            deadline=deadline,
            iterations=deadline,
        )

    def _schedule_step(
        self,
        state: BlockState,
        usage: Dict[str, List[int]],
        placed: Set[str],
        step: int,
    ) -> bool:
        ready = [
            oid
            for oid in state.graph.op_ids
            if oid not in placed and state.frames.lo(oid) == step
        ]
        by_type: Dict[str, List[str]] = {}
        for oid in ready:
            by_type.setdefault(state.dist.type_of[oid], []).append(oid)

        for type_name, wanting in by_type.items():
            rtype = self.library.type(type_name)
            free = self._free_capacity(usage, rtype, step)
            deferrable = [oid for oid in wanting if state.frames.hi(oid) > step]
            must_place = len(wanting) - len(deferrable)
            if must_place > free:
                return False  # collapsed frames exceed the capacity
            # Defer force-cheapest candidates until the step fits.
            while len(wanting) > free:
                if not deferrable:
                    return False
                victim = self._cheapest_deferral(state, deferrable, step)
                try:
                    state.commit_reduce(victim, step + 1, state.frames.hi(victim))
                except InfeasibleError:
                    return False
                deferrable.remove(victim)
                wanting.remove(victim)
            for oid in wanting:
                if state.frames.lo(oid) != step:
                    continue  # pushed past this step by propagation
                try:
                    state.commit_fix(oid, step)
                except InfeasibleError:
                    return False
                placed.add(oid)
                self._occupy(usage, rtype, step)
        return True

    # ------------------------------------------------------------------
    # Capacity accounting
    # ------------------------------------------------------------------
    def _free_capacity(
        self, usage: Dict[str, List[int]], rtype: ResourceType, step: int
    ) -> int:
        row = usage[rtype.name]
        window = row[step : step + rtype.occupancy]
        used = max(window) if window else 0
        return self.capacity[rtype.name] - used

    def _occupy(
        self, usage: Dict[str, List[int]], rtype: ResourceType, step: int
    ) -> None:
        row = usage[rtype.name]
        for s in range(step, min(step + rtype.occupancy, len(row))):
            row[s] += 1

    # ------------------------------------------------------------------
    # Deferral forces
    # ------------------------------------------------------------------
    def _cheapest_deferral(
        self, state: BlockState, candidates: List[str], step: int
    ) -> str:
        """The candidate whose deferral to ``step + 1`` costs least force."""
        best_oid: Optional[str] = None
        best_force = 0.0
        for oid in sorted(candidates):
            hi = state.frames.hi(oid)
            delta = state.dist.tentative_row(oid, step + 1, hi) - state.dist.row(oid)
            type_name = state.dist.type_of[oid]
            force = hooke_force(state.dist.array(type_name), delta, self.lookahead)
            if best_oid is None or force < best_force - 1e-12:
                best_oid = oid
                best_force = force
        assert best_oid is not None
        return best_oid
