"""Force computation (eqs. 5-6) with look-ahead and spring constants.

The distribution-graph values act as springs with constants equal to
themselves; displacing them by ``delta`` costs the Hooke's-law force
``sum(D * delta)``.  Paulin & Knight's look-ahead adds a fraction of the
displacement itself to the spring constant, anticipating the distribution
after the move: ``sum(delta * (D + alpha * delta))`` with the classic
``alpha = 1/3``.  Verhaegh et al.'s *global spring constants* weigh the
per-type forces, typically by area cost, so smoothing an expensive
multiplier outweighs smoothing a cheap adder.
"""

from __future__ import annotations

import time
from typing import Dict, Mapping, Optional

import numpy as np

from ..obs import counters as _ambient
from ..obs.counters import FORCE_EVALUATIONS, count
from ..obs.metrics import FORCE_EVAL_SECONDS
from ..resources.library import ResourceLibrary
from .distribution import BlockDistributions
from .state import BlockState

#: Paulin & Knight's classic look-ahead fraction.
DEFAULT_LOOKAHEAD = 1.0 / 3.0


def hooke_force(distribution: np.ndarray, delta: np.ndarray, lookahead: float) -> float:
    """Force of displacing ``distribution`` by ``delta`` (eq. 6 + look-ahead)."""
    count(FORCE_EVALUATIONS)
    return float(np.dot(delta, distribution)) + lookahead * float(np.dot(delta, delta))


def uniform_weights(library: ResourceLibrary) -> Dict[str, float]:
    """Spring-constant weights of 1 for every type (no global constants)."""
    return {rtype.name: 1.0 for rtype in library.types}


def area_weights(library: ResourceLibrary) -> Dict[str, float]:
    """Spring-constant weights equal to area costs (global spring constants)."""
    return {rtype.name: float(rtype.area) for rtype in library.types}


def force_from_deltas(
    dist: BlockDistributions,
    deltas: Mapping[str, np.ndarray],
    *,
    lookahead: float = DEFAULT_LOOKAHEAD,
    weights: Optional[Mapping[str, float]] = None,
) -> float:
    """Weighted Hooke force of a set of per-type displacements.

    This is the purely-local force kernel shared by every scheduler in the
    repository: the single-block FDS/IFDS paths sum it over all displaced
    types, and the coupled system scheduler delegates to it for types that
    are not globally shared (global types route through the balanced
    system distribution instead).
    """
    total = 0.0
    for type_name, delta in deltas.items():
        weight = 1.0 if weights is None else float(weights.get(type_name, 1.0))
        total += weight * hooke_force(dist.array(type_name), delta, lookahead)
    return total


def placement_force(
    state: BlockState,
    op_id: str,
    start: int,
    *,
    lookahead: float = DEFAULT_LOOKAHEAD,
    weights: Optional[Mapping[str, float]] = None,
) -> float:
    """Total force of tentatively placing ``op_id`` at ``start``.

    Sums, over every resource type displaced by the placement (the
    operation's own type plus the types of implicitly reduced direct
    neighbors), the weighted Hooke's-law force.  Negative values mean the
    placement smooths the distributions.

    When an ambient metrics registry is active the evaluation latency is
    recorded in the ``force_eval_seconds`` histogram; the uninstrumented
    path pays one global load and a ``None`` check.
    """
    if _ambient._active is None:
        return force_from_deltas(
            state.dist,
            state.placement_deltas(op_id, start),
            lookahead=lookahead,
            weights=weights,
        )
    started = time.perf_counter()
    force = force_from_deltas(
        state.dist,
        state.placement_deltas(op_id, start),
        lookahead=lookahead,
        weights=weights,
    )
    _ambient._active.registry.observe(
        FORCE_EVAL_SECONDS, time.perf_counter() - started
    )
    return force
