"""Memoized per-operation selection scores with dirty-set invalidation.

Force-directed schedulers re-evaluate, at every iteration, a selection
score for every still-mobile operation — yet each committed reduction
only perturbs a small *dirty set*.  An operation's tentative-placement
force depends on exactly three kinds of state:

* its own time frame (the evaluated endpoints and the ``eta`` width
  factor);
* the frames and rows of its *direct* predecessors/successors (classic
  FDS evaluates first-order implied reductions only);
* the distribution graphs of the resource types in its *footprint* —
  its own type plus the types of its direct neighbors.

A :class:`BlockSelectionCache` therefore keeps one opaque value per
operation (whatever the scheduler stores: a force pair, a
:class:`~repro.scheduling.ifds.ReductionChoice`, a per-step force list)
and, after each commit, drops exactly the entries whose inputs may have
moved:

* operations whose frames changed (including precedence propagation),
* direct neighbors of those operations,
* operations whose footprint intersects the touched resource types.

For globally shared types the coupled scheduler additionally calls
:meth:`invalidate_type` on sibling blocks, because their forces flow
through the shared system distribution (see
:mod:`repro.core.scheduler`).  Cached values are byte-identical to a
fresh evaluation — the cache changes *when* forces are computed, never
*what* they evaluate to — which is pinned by the decision-parity tests.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Tuple

from ..obs.counters import (
    FORCE_CACHE_HITS,
    FORCE_CACHE_INVALIDATIONS,
    FORCE_CACHE_MISSES,
    count,
    observe,
)
from ..obs.metrics import DIRTY_SET_SIZE
from .state import BlockState, ReductionEffect


class BlockSelectionCache:
    """Per-block memo of selection evaluations, invalidated by dirty sets."""

    def __init__(self, state: BlockState) -> None:
        self.state = state
        graph = state.graph
        type_of = state.dist.type_of
        self._neighbors: Dict[str, Tuple[str, ...]] = {}
        ops_touching: Dict[str, list] = {}
        for op_id in graph.op_ids:
            neighbors = tuple(graph.predecessors(op_id)) + tuple(
                graph.successors(op_id)
            )
            self._neighbors[op_id] = neighbors
            footprint = {type_of[op_id]}
            footprint.update(type_of[n] for n in neighbors)
            for type_name in footprint:
                ops_touching.setdefault(type_name, []).append(op_id)
        self._ops_touching_type: Dict[str, Tuple[str, ...]] = {
            type_name: tuple(ops) for type_name, ops in ops_touching.items()
        }
        self._store: Dict[str, Any] = {}
        #: Monotonic counter bumped whenever an invalidation actually
        #: removes at least one entry.  Selection scoreboards compare it
        #: to decide, in O(1), whether any cached value of this block
        #: may have gone stale since their last rescore.
        self.generation = 0

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, op_id: str) -> Optional[Any]:
        """Cached value for ``op_id``; counts a hit or a miss."""
        value = self._store.get(op_id)
        count(FORCE_CACHE_HITS if value is not None else FORCE_CACHE_MISSES)
        return value

    def put(self, op_id: str, value: Any) -> None:
        self._store[op_id] = value

    def __len__(self) -> int:
        return len(self._store)

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def invalidate_ops(self, ops: Iterable[str]) -> int:
        """Drop cached values for ``ops``; returns how many were present."""
        removed = 0
        for op_id in ops:
            if self._store.pop(op_id, None) is not None:
                removed += 1
        if removed:
            self.generation += 1
            count(FORCE_CACHE_INVALIDATIONS, removed)
        return removed

    def invalidate_after_commit(self, effect: ReductionEffect) -> int:
        """Apply the local dirty-set rules after one committed reduction."""
        dirty = set(effect.changed_ops)
        for op_id in effect.changed_ops:
            dirty.update(self._neighbors[op_id])
        for type_name in effect.touched_types:
            dirty.update(self._ops_touching_type.get(type_name, ()))
        observe(DIRTY_SET_SIZE, len(dirty))
        return self.invalidate_ops(dirty)

    def invalidate_type(self, type_name: str) -> int:
        """Drop every op whose footprint includes ``type_name``.

        Used for cross-block invalidation of globally shared types, whose
        forces flow through the shared system distribution.
        """
        return self.invalidate_ops(self._ops_touching_type.get(type_name, ()))
