"""Scheduling substrate: time frames, distributions, FDS, IFDS, list scheduling."""

from .distribution import BlockDistributions, occupancy_row
from .fdls import ForceDirectedListScheduler
from .fds import ForceDirectedScheduler
from .forces import (
    DEFAULT_LOOKAHEAD,
    area_weights,
    force_from_deltas,
    hooke_force,
    placement_force,
    uniform_weights,
)
from .ifds import ImprovedForceDirectedScheduler, ReductionChoice, evaluate_reduction
from .kernels import (
    DeltaBatch,
    PlacementKernel,
    batched_occupancy_rows,
    row_dots,
    row_self_dots,
)
from .list_scheduling import ListScheduler
from .schedule import BlockSchedule
from .selection_cache import BlockSelectionCache
from .state import BlockState, ReductionEffect
from .timeframes import FrameTable, alap_schedule, asap_schedule

__all__ = [
    "BlockDistributions",
    "BlockSchedule",
    "BlockSelectionCache",
    "BlockState",
    "DEFAULT_LOOKAHEAD",
    "DeltaBatch",
    "ForceDirectedListScheduler",
    "ForceDirectedScheduler",
    "FrameTable",
    "ImprovedForceDirectedScheduler",
    "ListScheduler",
    "PlacementKernel",
    "ReductionChoice",
    "ReductionEffect",
    "alap_schedule",
    "area_weights",
    "asap_schedule",
    "batched_occupancy_rows",
    "evaluate_reduction",
    "force_from_deltas",
    "hooke_force",
    "occupancy_row",
    "placement_force",
    "row_dots",
    "row_self_dots",
    "uniform_weights",
]
