"""Scheduling substrate: time frames, distributions, FDS, IFDS, list scheduling."""

from .distribution import BlockDistributions, occupancy_row
from .fdls import ForceDirectedListScheduler
from .fds import ForceDirectedScheduler
from .forces import (
    DEFAULT_LOOKAHEAD,
    area_weights,
    hooke_force,
    placement_force,
    uniform_weights,
)
from .ifds import ImprovedForceDirectedScheduler, ReductionChoice, evaluate_reduction
from .list_scheduling import ListScheduler
from .schedule import BlockSchedule
from .state import BlockState
from .timeframes import FrameTable, alap_schedule, asap_schedule

__all__ = [
    "BlockDistributions",
    "BlockSchedule",
    "BlockState",
    "DEFAULT_LOOKAHEAD",
    "ForceDirectedListScheduler",
    "ForceDirectedScheduler",
    "FrameTable",
    "ImprovedForceDirectedScheduler",
    "ListScheduler",
    "ReductionChoice",
    "alap_schedule",
    "area_weights",
    "asap_schedule",
    "evaluate_reduction",
    "hooke_force",
    "occupancy_row",
    "placement_force",
    "uniform_weights",
]
