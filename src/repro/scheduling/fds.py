"""Classic time-constrained Force-Directed Scheduling (Paulin & Knight).

The original FDS places, at every iteration, every still-mobile operation
tentatively at every step of its frame, evaluates the force of each
placement (self force plus direct predecessor/successor forces), commits
the single placement with the least force, and repeats until every
operation is fixed.  This is the baseline the Improved FDS (and the
paper's modification) build on.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..errors import SchedulingError
from ..ir.process import Block
from ..obs import SCHEDULER_ITERATIONS, as_tracer, get_logger
from ..obs.events import EVENT_DEGRADE, EVENT_PLACEMENT
from ..obs.metrics import CANDIDATES_SCANNED, FRAMES_REMAINING
from ..resources.library import ResourceLibrary
from ..validation.budget import RunBudget
from .fallback import degraded_block_schedule, frames_state_hash
from .forces import DEFAULT_LOOKAHEAD, placement_force
from .kernels import PlacementKernel
from .schedule import BlockSchedule
from .selection_cache import BlockSelectionCache
from .state import BlockState

_log = get_logger(__name__)


class ForceDirectedScheduler:
    """Time-constrained FDS for a single block.

    Args:
        library: Resource library (latencies, occupancies).
        lookahead: Paulin look-ahead fraction (0 disables look-ahead).
        weights: Optional per-type spring-constant weights.
        force_cache: Memoize the per-operation force rows between
            iterations, re-evaluating only the dirty set of each commit;
            decisions are identical to the brute-force scan.
        use_kernels: Evaluate each operation's whole force row with the
            batched array kernels (:mod:`repro.scheduling.kernels`)
            instead of one scalar ``placement_force`` call per step.
            Decisions agree with the scalar reference path (pinned by
            the kernel parity tests); disable for A/B measurement or to
            force the scalar path.
        budget: Optional :class:`~repro.validation.budget.RunBudget`;
            on exhaustion the run degrades to the list-scheduling
            fallback (``degraded=True``) instead of continuing.
    """

    def __init__(
        self,
        library: ResourceLibrary,
        *,
        lookahead: float = DEFAULT_LOOKAHEAD,
        weights: Optional[Mapping[str, float]] = None,
        force_cache: bool = True,
        use_kernels: bool = True,
        budget: Optional[RunBudget] = None,
        tracer=None,
    ) -> None:
        self.library = library
        self.lookahead = lookahead
        self.weights = weights
        self.force_cache = force_cache
        self.use_kernels = use_kernels
        self.budget = budget
        self.tracer = as_tracer(tracer)

    def schedule(self, block: Block) -> BlockSchedule:
        """Schedule one block; returns a validated :class:`BlockSchedule`."""
        tracer = self.tracer
        state = BlockState(block, self.library)
        cache = BlockSelectionCache(state) if self.force_cache else None
        kernel = (
            PlacementKernel(state, lookahead=self.lookahead, weights=self.weights)
            if self.use_kernels
            else None
        )
        tracker = self.budget.tracker() if self.budget is not None else None
        iterations = 0
        with tracer.activate(), tracer.span("fds", block=block.name):
            while True:
                candidates = state.frames.unfixed()
                if not candidates:
                    break
                if tracker is not None:
                    reason = tracker.tick(frames_state_hash(state, candidates))
                    if reason is not None:
                        _log.warning(
                            "FDS budget exhausted on block %r: %s; "
                            "degrading to list scheduling",
                            block.name,
                            reason,
                        )
                        if tracer.enabled:
                            tracer.event(
                                EVENT_DEGRADE,
                                reason=reason,
                                block=block.name,
                                iteration=iterations,
                                fallback="list_scheduling",
                            )
                        return degraded_block_schedule(
                            block, self.library, reason, iterations=iterations
                        )
                iterations += 1
                best_force = None
                best_op = None
                best_step = None
                for op_id in candidates:
                    lo, hi = state.frames.frame(op_id)
                    # The cache stores the whole per-step force row so the
                    # flat (op, step) fold below replays exactly as the
                    # uncached scan would.
                    forces = cache.get(op_id) if cache is not None else None
                    if forces is None:
                        if kernel is not None:
                            forces = kernel.forces(op_id, range(lo, hi + 1))
                        else:
                            forces = [
                                placement_force(
                                    state,
                                    op_id,
                                    step,
                                    lookahead=self.lookahead,
                                    weights=self.weights,
                                )
                                for step in range(lo, hi + 1)
                            ]
                        if cache is not None:
                            cache.put(op_id, forces)
                    for offset, force in enumerate(forces):
                        if best_force is None or force < best_force - 1e-12:
                            best_force, best_op, best_step = force, op_id, lo + offset
                if best_op is None:  # pragma: no cover - defensive
                    raise SchedulingError("no feasible placement found")
                effect = state.commit_reduce_effect(best_op, best_step, best_step)
                if cache is not None:
                    cache.invalidate_after_commit(effect)
                if tracer.enabled:
                    tracer.count(SCHEDULER_ITERATIONS)
                    tracer.observe(CANDIDATES_SCANNED, len(candidates))
                    tracer.set_gauge(
                        FRAMES_REMAINING, len(state.frames.unfixed())
                    )
                    tracer.event(
                        EVENT_PLACEMENT,
                        iteration=iterations,
                        block=block.name,
                        op=best_op,
                        step=best_step,
                        force=round(best_force, 9),
                        candidates=len(candidates),
                    )
        _log.debug("FDS scheduled block %r in %d iterations", block.name, iterations)
        schedule = BlockSchedule(
            graph=block.graph,
            library=self.library,
            starts=state.frames.as_schedule(),
            deadline=block.deadline,
            iterations=iterations,
        )
        schedule.validate()
        return schedule
