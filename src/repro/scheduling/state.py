"""Mutable scheduling state of one block: frames plus distribution graphs.

A :class:`BlockState` is what a force-directed scheduler iterates on: the
current partial solution (all time frames) together with the distribution
graphs derived from it.  It also evaluates the *tentative* effect of
placing an operation at a step — the distribution displacements from which
forces are computed — without mutating anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Set

import numpy as np

from ..ir.process import Block
from ..obs.counters import FRAME_REDUCTIONS, count
from ..resources.library import ResourceLibrary
from .distribution import BlockDistributions
from .timeframes import FrameTable


@dataclass(frozen=True)
class ReductionEffect:
    """What one committed frame reduction actually perturbed.

    ``changed_ops`` are the operations whose frames changed (the reduced
    operation plus everything reached by precedence propagation);
    ``touched_types`` are the resource types whose distribution graph
    changed.  Selection caches derive their dirty sets from this.
    """

    changed_ops: FrozenSet[str]
    touched_types: FrozenSet[str]


class BlockState:
    """Frames + distributions of one block under construction."""

    def __init__(self, block: Block, library: ResourceLibrary) -> None:
        self.block = block
        self.graph = block.graph
        self.library = library
        self.frames = FrameTable(block.graph, library.latency_of, block.deadline)
        self.dist = BlockDistributions(block.graph, library, self.frames)
        # Scratch buffer for tentative-array evaluation: one horizon-length
        # array reused across every placement_deltas call instead of a
        # fresh allocation per (candidate, type).  Single-threaded use
        # only, like the rest of the scheduling state.
        self._scratch = np.empty(self.frames.deadline, dtype=float)

    @property
    def deadline(self) -> int:
        return self.block.deadline

    def placement_deltas(self, op_id: str, start: int) -> Dict[str, np.ndarray]:
        """Distribution displacements caused by tentatively placing
        ``op_id`` at ``start`` (eq. 5).

        Includes the operation's own displacement and the first-order
        displacements of direct predecessors/successors whose frames the
        placement would implicitly reduce.  Returns a mapping from resource
        type name to its displacement array; nothing is mutated.  For
        types with guarded (conditional) operations the displacement is
        computed on the branch-max-combined distribution, so moves hidden
        inside a non-dominant branch cost nothing.
        """
        overrides: Dict[str, np.ndarray] = {
            op_id: self.dist.tentative_row(op_id, start, start)
        }
        implied = self.frames.implied_neighbor_frames(op_id, start)
        for oid, (lo, hi) in implied.items():
            overrides[oid] = self.dist.tentative_row(oid, lo, hi)

        deltas: Dict[str, np.ndarray] = {}
        for type_name in {self.dist.type_of[oid] for oid in overrides}:
            after = self.dist.tentative_array(type_name, overrides, out=self._scratch)
            deltas[type_name] = after - self.dist.array(type_name)
        return deltas

    def commit_reduce(self, op_id: str, lo: int, hi: int) -> Set[str]:
        """Reduce a frame for real, propagate, refresh distributions.

        Returns the resource type names whose distribution graph changed.
        """
        return set(self.commit_reduce_effect(op_id, lo, hi).touched_types)

    def commit_reduce_effect(self, op_id: str, lo: int, hi: int) -> ReductionEffect:
        """Like :meth:`commit_reduce`, but also reports the changed ops.

        Incremental schedulers need both halves of the perturbation: the
        operations whose frames moved (their own and their neighbors'
        cached forces are stale) and the types whose distributions moved.
        """
        count(FRAME_REDUCTIONS)
        changed_ops = self.frames.reduce(op_id, lo, hi)
        touched = self.dist.refresh(changed_ops)
        return ReductionEffect(frozenset(changed_ops), frozenset(touched))

    def commit_fix(self, op_id: str, start: int) -> Set[str]:
        """Pin an operation to one step for real (classic FDS placement)."""
        return self.commit_reduce(op_id, start, start)
