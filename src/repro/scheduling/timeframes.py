"""ASAP/ALAP time frames with incremental precedence propagation.

Time-constrained scheduling starts from the interval of feasible *start*
times of every operation: ``[asap, alap]`` (§4: "the possible time frames
for each operation are computed by an ASAP and ALAP scheduling").  A
:class:`FrameTable` holds these frames for one block and keeps them
consistent under reductions: shrinking one operation's frame propagates
through the precedence edges ("implicit time frame reductions of other
operations may occur due to the precedence constraints").
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from ..errors import InfeasibleError, SchedulingError
from ..ir.dfg import DataFlowGraph
from ..ir.operation import Operation


class FrameTable:
    """Feasible start-time frames of all operations of one block.

    Args:
        graph: The block's dataflow graph.
        latency_of: Callable mapping an operation to its latency in control
            steps (precedence uses full latency, even for pipelined units).
        deadline: The block's time range; every operation must *finish* at
            or before this step, so a sink with latency ``d`` may start no
            later than ``deadline - d``.

    Raises:
        InfeasibleError: if the critical path exceeds the deadline.
    """

    def __init__(
        self,
        graph: DataFlowGraph,
        latency_of: Callable[[Operation], int],
        deadline: int,
    ) -> None:
        self.graph = graph
        self.deadline = deadline
        self._latency: Dict[str, int] = {}
        for op in graph:
            latency = int(latency_of(op))
            if latency < 1:
                raise SchedulingError(f"operation {op.op_id!r}: latency must be >= 1")
            self._latency[op.op_id] = latency
        self._topo = graph.topological_order()
        self._lo: Dict[str, int] = {}
        self._hi: Dict[str, int] = {}
        self._compute_initial_frames()
        # Incremental mobility tracking: ``_unfixed_list`` is a
        # topo-ordered superset of the mobile operations, compacted
        # lazily on read, so :meth:`unfixed` costs O(mobile + newly
        # fixed) instead of a full scan; ``_unfixed_count`` keeps
        # :meth:`all_fixed` O(1); ``_version`` bumps on every committed
        # frame change so callers can memoize frame-derived state.
        self._unfixed_list: List[str] = [
            oid for oid in self._topo if self._lo[oid] != self._hi[oid]
        ]
        self._unfixed_count = len(self._unfixed_list)
        self._unfixed_stale = False
        self._version = 0

    def _compute_initial_frames(self) -> None:
        for oid in self._topo:
            self._lo[oid] = max(
                (self._lo[p] + self._latency[p] for p in self.graph.predecessors(oid)),
                default=0,
            )
        for oid in reversed(self._topo):
            bound = self.deadline - self._latency[oid]
            for succ in self.graph.successors(oid):
                bound = min(bound, self._hi[succ] - self._latency[oid])
            self._hi[oid] = bound
            if self._hi[oid] < self._lo[oid]:
                raise InfeasibleError(
                    f"block {self.graph.name!r}: operation {oid!r} cannot meet "
                    f"deadline {self.deadline} (asap {self._lo[oid]} > alap {self._hi[oid]})"
                )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def latency(self, op_id: str) -> int:
        return self._latency[op_id]

    def lo(self, op_id: str) -> int:
        """Earliest feasible start (current ASAP)."""
        return self._lo[op_id]

    def hi(self, op_id: str) -> int:
        """Latest feasible start (current ALAP)."""
        return self._hi[op_id]

    def frame(self, op_id: str) -> Tuple[int, int]:
        return self._lo[op_id], self._hi[op_id]

    def width(self, op_id: str) -> int:
        """Number of feasible start steps (the paper's time-frame width)."""
        return self._hi[op_id] - self._lo[op_id] + 1

    def mobility(self, op_id: str) -> int:
        """Slack of the operation: width - 1."""
        return self.width(op_id) - 1

    def is_fixed(self, op_id: str) -> bool:
        return self._lo[op_id] == self._hi[op_id]

    def all_fixed(self) -> bool:
        return self._unfixed_count == 0

    def unfixed_count(self) -> int:
        """Number of operations whose frame allows more than one start."""
        return self._unfixed_count

    def version(self) -> int:
        """Monotonic counter bumped by every committed frame change.

        Lets callers memoize frame-derived state (hashes, candidate
        lists) and revalidate with one integer comparison instead of a
        full-table scan.
        """
        return self._version

    def unfixed(self) -> List[str]:
        """Ids of operations whose frame still allows more than one start."""
        if self._unfixed_stale:
            lo, hi = self._lo, self._hi
            self._unfixed_list = [
                oid for oid in self._unfixed_list if lo[oid] != hi[oid]
            ]
            self._unfixed_stale = False
        return self._unfixed_list

    def frames(self) -> Dict[str, Tuple[int, int]]:
        """Snapshot of all frames."""
        return {oid: (self._lo[oid], self._hi[oid]) for oid in self._topo}

    def as_schedule(self) -> Dict[str, int]:
        """Start times once all frames are fixed."""
        if not self.all_fixed():
            raise SchedulingError("frames not fully reduced; no schedule yet")
        return dict(self._lo)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def reduce(self, op_id: str, new_lo: int, new_hi: int) -> Set[str]:
        """Shrink one frame and propagate along precedence edges.

        Returns the set of operation ids whose frame changed (including
        ``op_id`` itself if it changed).  Raises :class:`InfeasibleError` if
        the reduction empties any frame; the table is left unchanged in
        that case.
        """
        lo, hi = self._lo[op_id], self._hi[op_id]
        if new_lo <= lo and new_hi >= hi:
            # Superset request: nothing can shrink (frames only ever
            # narrow) and the clamped bounds equal the current frame, so
            # skip the clamp arithmetic entirely.  This is the hot exit
            # for ``fix`` on an already-fixed operation.
            return set()
        new_lo = max(lo, new_lo)
        new_hi = min(hi, new_hi)
        if new_lo > new_hi:
            raise InfeasibleError(
                f"reduction of {op_id!r} to [{new_lo}, {new_hi}] empties the frame"
            )
        undo: List[Tuple[str, int, int]] = []
        try:
            changed = self._apply(op_id, new_lo, new_hi, undo)
        except InfeasibleError:
            for oid, old_lo, old_hi in reversed(undo):
                self._lo[oid], self._hi[oid] = old_lo, old_hi
            # The fix-count bookkeeping ran ahead of the failure; recount
            # against the (restored) superset list.  Error paths are cold.
            lo_map, hi_map = self._lo, self._hi
            self._unfixed_count = sum(
                1 for oid in self._unfixed_list if lo_map[oid] != hi_map[oid]
            )
            self._unfixed_stale = True
            raise
        self._version += 1
        return changed

    def fix(self, op_id: str, start: int) -> Set[str]:
        """Pin an operation to a single start step (classic FDS placement)."""
        return self.reduce(op_id, start, start)

    def _apply(
        self,
        op_id: str,
        new_lo: int,
        new_hi: int,
        undo: List[Tuple[str, int, int]],
    ) -> Set[str]:
        undo.append((op_id, self._lo[op_id], self._hi[op_id]))
        was_mobile = self._lo[op_id] != self._hi[op_id]
        self._lo[op_id], self._hi[op_id] = new_lo, new_hi
        if was_mobile and new_lo == new_hi:
            self._unfixed_count -= 1
            self._unfixed_stale = True
        changed: Set[str] = {op_id}
        worklist: List[str] = [op_id]
        while worklist:
            oid = worklist.pop()
            lat = self._latency[oid]
            earliest_succ_start = self._lo[oid] + lat
            for succ in self.graph.successors(oid):
                if self._lo[succ] < earliest_succ_start:
                    hi_succ = self._hi[succ]
                    undo.append((succ, self._lo[succ], hi_succ))
                    self._lo[succ] = earliest_succ_start
                    if earliest_succ_start > hi_succ:
                        raise InfeasibleError(
                            f"propagation emptied frame of {succ!r}"
                        )
                    if earliest_succ_start == hi_succ:
                        self._unfixed_count -= 1
                        self._unfixed_stale = True
                    changed.add(succ)
                    worklist.append(succ)
            for pred in self.graph.predecessors(oid):
                latest_pred_start = self._hi[oid] - self._latency[pred]
                if self._hi[pred] > latest_pred_start:
                    lo_pred = self._lo[pred]
                    undo.append((pred, lo_pred, self._hi[pred]))
                    self._hi[pred] = latest_pred_start
                    if lo_pred > latest_pred_start:
                        raise InfeasibleError(
                            f"propagation emptied frame of {pred!r}"
                        )
                    if lo_pred == latest_pred_start:
                        self._unfixed_count -= 1
                        self._unfixed_stale = True
                    changed.add(pred)
                    worklist.append(pred)
        return changed

    # ------------------------------------------------------------------
    # Tentative neighbor frames (for force evaluation)
    # ------------------------------------------------------------------
    def implied_neighbor_frames(
        self, op_id: str, start: int
    ) -> Dict[str, Tuple[int, int]]:
        """Frames of *direct* predecessors/successors implied by placing
        ``op_id`` at ``start``, without modifying the table.

        Classic FDS evaluates predecessor/successor forces from exactly
        these first-order implied reductions (Paulin & Knight §IV); the
        transitive closure is intentionally not followed.
        """
        implied: Dict[str, Tuple[int, int]] = {}
        for pred in self.graph.predecessors(op_id):
            new_hi = min(self._hi[pred], start - self._latency[pred])
            if new_hi != self._hi[pred]:
                implied[pred] = (self._lo[pred], new_hi)
        finish = start + self._latency[op_id]
        for succ in self.graph.successors(op_id):
            new_lo = max(self._lo[succ], finish)
            if new_lo != self._lo[succ]:
                implied[succ] = (new_lo, self._hi[succ])
        return implied


def asap_schedule(
    graph: DataFlowGraph, latency_of: Callable[[Operation], int]
) -> Dict[str, int]:
    """As-soon-as-possible start times (no resource limits)."""
    starts: Dict[str, int] = {}
    for oid in graph.topological_order():
        starts[oid] = max(
            (starts[p] + latency_of(graph.operation(p)) for p in graph.predecessors(oid)),
            default=0,
        )
    return starts


def alap_schedule(
    graph: DataFlowGraph, latency_of: Callable[[Operation], int], deadline: int
) -> Dict[str, int]:
    """As-late-as-possible start times against a deadline.

    One direct reverse pass over the precedence edges — no
    :class:`FrameTable` (whose forward pass, dict snapshots, and frame
    consistency checks this function never needed).  Infeasibility is
    detected exactly as before: a backward-pass bound below step 0 means
    the critical path through that operation exceeds the deadline, which
    is precisely the ``asap > alap`` condition the full table reports
    (the ASAP of the chain's head is 0).
    """
    latency: Dict[str, int] = {}
    for op in graph:
        lat = int(latency_of(op))
        if lat < 1:
            raise SchedulingError(
                f"operation {op.op_id!r}: latency must be >= 1"
            )
        latency[op.op_id] = lat
    starts: Dict[str, int] = {}
    for oid in reversed(graph.topological_order()):
        lat = latency[oid]
        bound = deadline - lat
        for succ in graph.successors(oid):
            implied = starts[succ] - lat
            if implied < bound:
                bound = implied
        if bound < 0:
            raise InfeasibleError(
                f"block {graph.name!r}: operation {oid!r} cannot meet "
                f"deadline {deadline} (alap start {bound} before step 0)"
            )
        starts[oid] = bound
    return {oid: starts[oid] for oid in graph.op_ids}
