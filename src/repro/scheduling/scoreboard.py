"""Incremental selection scoreboard: dirty-cone candidate rescoring.

Every iteration of the coupled scheduler picks the reduction with the
largest weighted force difference by folding a score over *all* mobile
candidates of *all* blocks (``score > best + 1e-12`` in scan order).
PR 2 made each force evaluation cached and PR 7 vectorized the scan —
but the scan itself still touched every entry every iteration.

A :class:`SelectionScoreboard` removes that last full pass.  It keeps,
per entry (block), a persistent :class:`EntryRecord` holding the
entry's *strict-prefix-maxima subsequence* — the only candidates the
hysteresis fold can ever accept — plus the bookkeeping needed to decide
whether the record is still exact.  A selection scan then only rescores
the entries inside the commit's dirty cone (the committed block, its
same-process siblings when the coupling scope was not ``clean``, and
every entry subscribed to a globally balanced type whose system
distribution ``S`` bumped); clean entries contribute their cached
incumbents untouched.

Exactness
---------
The scan-order fold accepts a candidate iff its score strictly exceeds
``best + 1e-12``.  Two facts make the scoreboard exact, not heuristic:

1. **Accepted candidates are strict prefix maxima.**  By induction the
   running ``best`` never drops more than the epsilon below the prefix
   maximum, so an accepted score strictly exceeds every earlier score.
2. **Folding over any subsequence containing all strict prefix maxima
   is exact.**  Omitted candidates are never accepted and acceptance is
   the only way the fold state changes, so the replay visits the same
   state sequence.

An entry-local strict prefix maximum set is a superset of the global
strict prefix maxima restricted to that entry (a global maximum exceeds
*all* earlier candidates, including its own entry's).  Replaying the
fold over the concatenated per-entry subsequences in entry order is
therefore bit-identical to the full scan — same winner, same score,
same tie-break.

The cross-entry replay never visits most entries at all.  The fold's
running ``best`` always sits within the epsilon below the prefix
maximum of all scores seen, so an entry can only change the state when
its own maximum *strictly exceeds every earlier entry's maximum* — the
entry-maxima array's strict prefix maxima, found with one vectorized
``np.maximum.accumulate`` over the persistent per-entry maxima.  Only
those few survivors replay their records; each still skips in O(1)
when its maximum cannot beat ``best + 1e-12``.

Which counters a skipped entry *would* have produced is aggregated the
same way (``sum_skip_hits``/``sum_candidates``), so telemetry stays
bit-identical to the full scan; ``selection_rescored`` /
``selection_skipped`` count the scoreboard's own work split per scan.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

__all__ = ["EntryRecord", "SelectionScoreboard", "prefix_maxima_positions"]

#: The decision epsilon of the selection fold (must match the scheduler).
EPSILON = 1e-12


def prefix_maxima_positions(scores: List[float]) -> List[int]:
    """Positions of the strict prefix maxima of ``scores`` (scalar path).

    Position 0 always participates (the fold unconditionally accepts the
    first candidate); every later position participates iff its score
    strictly exceeds all earlier ones.
    """
    if not scores:
        return []
    positions = [0]
    running = scores[0]
    for pos in range(1, len(scores)):
        score = scores[pos]
        if score > running:
            positions.append(pos)
            running = score
    return positions


class EntryRecord:
    """Cached incumbent state of one entry between rescores.

    ``pm_*`` hold the strict-prefix-maxima subsequence of the entry's
    candidate scores in scan order: the candidate offsets (into the
    entry's candidate list), their scores, and both frame-end forces.
    ``pm_kinds`` is the per-offset cache classification of the *last
    tracked* rescore (``None`` when tracking was off).  ``skip_hits`` is
    the exact number of ``force_cache_hits`` a skipped scan contributes
    (every candidate of a clean entry probes as a hit); ``touched_types``
    are the balanced global types whose ``S`` bump stales the record.
    """

    __slots__ = (
        "pm_offsets",
        "pm_scores",
        "pm_flows",
        "pm_fhighs",
        "pm_kinds",
        "n_candidates",
        "skip_hits",
        "touched_types",
        "last_scored",
    )

    def __init__(self) -> None:
        self.pm_offsets: List[int] = []
        self.pm_scores: List[float] = []
        self.pm_flows: List[float] = []
        self.pm_fhighs: List[float] = []
        self.pm_kinds: Optional[List[str]] = None
        self.n_candidates = 0
        self.skip_hits = 0
        self.touched_types: Tuple[str, ...] = ()
        self.last_scored = -1


class SelectionScoreboard:
    """Persistent per-entry incumbents plus the incremental global fold."""

    def __init__(self, n_entries: int) -> None:
        self.records: List[EntryRecord] = [EntryRecord() for _ in range(n_entries)]
        #: Per-entry maximum candidate score (``-inf`` when the entry
        #: has no candidates): the fold visits only its strict prefix
        #: maxima, found vectorized (see the module exactness notes).
        self._max_scores = np.full(n_entries, -np.inf, dtype=float)
        #: Entries subscribed to each balanced type: exactly those whose
        #: record goes stale when the type's ``S`` version bumps.
        self.subscribers: Dict[str, Set[int]] = {}
        #: Aggregates over all records, maintained by :meth:`store`, so
        #: a scan charges skipped entries in O(rescored) not O(entries).
        self.sum_candidates = 0
        self.sum_skip_hits = 0

    # -- record maintenance -------------------------------------------
    def store(
        self,
        index: int,
        *,
        n_candidates: int,
        skip_hits: int,
        touched_types: Iterable[str],
        scan_no: int,
        pm_offsets: Optional[List[int]] = None,
        pm_scores: Optional[List[float]] = None,
        pm_flows: Optional[List[float]] = None,
        pm_fhighs: Optional[List[float]] = None,
        pm_kinds: Optional[List[str]] = None,
    ) -> None:
        """Refresh entry ``index``'s counters, subscriptions, and — when
        the caller replays folds from records (the scalar path) — its
        prefix-maxima subsequence.  The kernel path keeps scored state
        per slot instead and stores only the bookkeeping half."""
        record = self.records[index]
        self.sum_candidates += n_candidates - record.n_candidates
        self.sum_skip_hits += skip_hits - record.skip_hits
        new_types = tuple(touched_types)
        if new_types != record.touched_types:
            for type_name in record.touched_types:
                subscribed = self.subscribers.get(type_name)
                if subscribed is not None:
                    subscribed.discard(index)
            for type_name in new_types:
                self.subscribers.setdefault(type_name, set()).add(index)
            record.touched_types = new_types
        if pm_offsets is not None:
            record.pm_offsets = pm_offsets
            record.pm_scores = pm_scores or []
            record.pm_flows = pm_flows or []
            record.pm_fhighs = pm_fhighs or []
            record.pm_kinds = pm_kinds
            # pm scores are strictly increasing: the last one is the max.
            self._max_scores[index] = (
                pm_scores[-1] if pm_scores else -np.inf
            )
        record.n_candidates = n_candidates
        record.skip_hits = skip_hits
        record.last_scored = scan_no

    def rescore_set(
        self, dirty: Iterable[int], bumped_types: Iterable[str]
    ) -> List[int]:
        """Entries whose record may be stale: dirty cone + S-bump cone."""
        stale: Set[int] = set(dirty)
        for type_name in bumped_types:
            subscribed = self.subscribers.get(type_name)
            if subscribed:
                stale.update(subscribed)
        return sorted(stale)

    # -- the cross-entry fold ------------------------------------------
    def fold(self) -> Optional[Tuple[float, int, int, float, float]]:
        """Replay the hysteresis fold; returns the winning candidate.

        The fold's running ``best`` never sits more than the epsilon
        below the prefix maximum of all scores folded so far, so entry
        ``i`` can only change the state when its own maximum *strictly
        exceeds* every earlier entry's maximum.  Those survivors — the
        strict prefix maxima of the per-entry maxima array — are found
        with one vectorized accumulate; only they replay their records,
        which is bit-identical to visiting every entry.  Returns
        ``(score, entry, offset, force_low, force_high)`` or ``None``
        when no candidates remain anywhere.
        """
        maxes = self._max_scores
        prefix = np.maximum.accumulate(maxes)
        survives = np.empty(maxes.shape, dtype=bool)
        survives[0] = maxes[0] != -np.inf
        np.greater(maxes[1:], prefix[:-1], out=survives[1:])
        records = self.records
        state = None
        for i in np.nonzero(survives)[0].tolist():
            state = self._fold_entry(state, records[i], i)
        return state  # type: ignore[return-value]

    @staticmethod
    def _fold_entry(state, record: EntryRecord, index: int):
        scores = record.pm_scores
        if not scores:
            return state
        if state is None:
            # No candidate anywhere before this entry: its first
            # candidate (always a prefix maximum) seeds the fold
            # unconditionally, exactly like the full scan.
            best = scores[0]
            pos = 0
            start = 1
        else:
            best = state[0]
            # Per-entry maxima are strictly increasing: if the last
            # (largest) cannot beat the incumbent, none can — O(1) skip.
            if scores[-1] <= best + EPSILON:
                return state
            pos = -1
            start = 0
        for j in range(start, len(scores)):
            score = scores[j]
            if score > best + EPSILON:
                best = score
                pos = j
        if pos < 0:
            return state
        return (
            best,
            index,
            record.pm_offsets[pos],
            record.pm_flows[pos],
            record.pm_fhighs[pos],
        )
