"""Resource-constrained list scheduling.

The classic counterpart of time-constrained FDS: given *fixed instance
counts* per resource type, operations are scheduled cycle by cycle; ready
operations are prioritized by least slack (ALAP-based urgency) and placed
whenever an instance is free.  Used as a baseline and as the engine of the
resource-constrained modulo scheduling variant
(:mod:`repro.core.rc_modulo`).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional

import numpy as np

from ..errors import SchedulingError
from ..ir.process import Block
from ..resources.library import ResourceLibrary
from .schedule import BlockSchedule
from .timeframes import alap_schedule


class ListScheduler:
    """Resource-constrained list scheduler for a single block.

    Args:
        library: Resource library.
        capacity: Instances available per resource type name.  Types used
            by a block but missing from the mapping raise
            :class:`SchedulingError`.
    """

    def __init__(self, library: ResourceLibrary, capacity: Mapping[str, int]) -> None:
        self.library = library
        self.capacity = dict(capacity)
        for name, count in self.capacity.items():
            library.type(name)
            if count < 1:
                raise SchedulingError(f"capacity of {name!r} must be >= 1, got {count}")

    def schedule(
        self,
        block: Block,
        *,
        slot_capacity: Optional[Callable[[str, int], int]] = None,
    ) -> BlockSchedule:
        """Schedule one block under the instance limits.

        Args:
            block: The block to schedule.  Its ``deadline`` is used for the
                urgency priorities; the produced schedule may exceed it if
                the instance counts force a longer makespan (callers check
                ``makespan`` against their constraint).
            slot_capacity: Optional override hook: given a resource type
                name and an absolute step, returns the capacity available
                at that step (defaults to the static per-type capacity).
                The modulo variant uses this to enforce periodic
                access-authorization limits.

        Returns:
            A validated :class:`BlockSchedule` whose ``deadline`` equals the
            achieved makespan.
        """
        graph = block.graph
        for rtype in self.library.types_used_by(graph):
            if rtype.name not in self.capacity:
                raise SchedulingError(f"no capacity given for type {rtype.name!r}")

        # Urgency: ALAP starts against the tightest feasible horizon.
        horizon_guess = max(
            block.deadline,
            graph.critical_path_length(self.library.latency_of),
        )
        alap = alap_schedule(graph, self.library.latency_of, horizon_guess)

        horizon = horizon_guess + sum(
            self.library.latency_of(op) for op in graph
        ) + 1
        usage: Dict[str, np.ndarray] = {
            name: np.zeros(horizon, dtype=int) for name in self.capacity
        }

        def free_at(type_name: str, step: int) -> int:
            static = self.capacity[type_name]
            limit = static if slot_capacity is None else min(
                static, slot_capacity(type_name, step)
            )
            return limit - int(usage[type_name][step])

        starts: Dict[str, int] = {}
        finish: Dict[str, int] = {}
        remaining = set(graph.op_ids)
        step = 0
        while remaining:
            if step >= horizon:
                raise SchedulingError(
                    f"list scheduling exceeded horizon {horizon}; "
                    "slot capacities may be unsatisfiable"
                )
            ready = [
                oid
                for oid in remaining
                if all(finish.get(p, horizon + 1) <= step for p in graph.predecessors(oid))
            ]
            ready.sort(key=lambda oid: (alap[oid], oid))
            for oid in ready:
                op = graph.operation(oid)
                rtype = self.library.type_of(op)
                occupancy = rtype.occupancy
                if step + occupancy > horizon:
                    continue
                if all(free_at(rtype.name, s) > 0 for s in range(step, step + occupancy)):
                    usage[rtype.name][step : step + occupancy] += 1
                    starts[oid] = step
                    finish[oid] = step + rtype.latency
                    remaining.discard(oid)
            step += 1

        makespan = max(finish.values())
        schedule = BlockSchedule(
            graph=graph,
            library=self.library,
            starts=starts,
            deadline=makespan,
            iterations=step,
        )
        schedule.validate()
        return schedule
