"""Schedule results for single blocks: start times, usage profiles, checks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np

from ..errors import VerificationError
from ..ir.dfg import DataFlowGraph
from ..resources.library import ResourceLibrary


@dataclass
class BlockSchedule:
    """A fully scheduled block.

    Attributes:
        graph: The scheduled dataflow graph.
        library: Resource library that defined latencies/occupancies.
        starts: Start control step of every operation (relative to the
            block's own, possibly unknown, absolute start time).
        deadline: The block's time range.
        iterations: Scheduler iterations spent producing this schedule
            (0 when not applicable).
        degraded: True when a budget exhaustion forced the producing
            scheduler onto the list-scheduling fallback
            (:mod:`repro.scheduling.fallback`); the schedule is still
            valid, just not force-optimized.
        degraded_reason: Human-readable reason for the degradation.
    """

    graph: DataFlowGraph
    library: ResourceLibrary
    starts: Dict[str, int]
    deadline: int
    iterations: int = 0
    degraded: bool = False
    degraded_reason: Optional[str] = None

    def start(self, op_id: str) -> int:
        return self.starts[op_id]

    def finish(self, op_id: str) -> int:
        """First step after the operation's result is available."""
        return self.starts[op_id] + self.library.latency_of(self.graph.operation(op_id))

    @property
    def makespan(self) -> int:
        """Steps until the last operation finishes."""
        return max(self.finish(oid) for oid in self.starts)

    # ------------------------------------------------------------------
    # Resource usage
    # ------------------------------------------------------------------
    def usage_profile(self, type_name: str) -> np.ndarray:
        """Integer concurrent-usage counts per step for one resource type.

        Guarded operations are combined like alternation branches: per
        condition, only the pointwise-maximal branch counts (at most one
        branch executes per activation), so the profile is the worst case
        over all branch outcomes.
        """
        profile = np.zeros(self.deadline, dtype=int)
        branch_sums: Dict[str, Dict[str, np.ndarray]] = {}
        for oid, start in self.starts.items():
            op = self.graph.operation(oid)
            rtype = self.library.type_of(op)
            if rtype.name != type_name:
                continue
            row = np.zeros(self.deadline, dtype=int)
            row[start : start + rtype.occupancy] += 1
            if op.guard is None:
                profile += row
            else:
                condition, branch = op.guard
                per_branch = branch_sums.setdefault(condition, {})
                if branch in per_branch:
                    per_branch[branch] += row
                else:
                    per_branch[branch] = row
        for per_branch in branch_sums.values():
            profile += np.maximum.reduce(list(per_branch.values()))
        return profile

    def peak_usage(self, type_name: str) -> int:
        """Maximum concurrent usage of one type (its local instance need)."""
        profile = self.usage_profile(type_name)
        return int(profile.max()) if profile.size else 0

    def peaks(self) -> Dict[str, int]:
        """Peak usage for every type the block uses."""
        result: Dict[str, int] = {}
        for rtype in self.library.types_used_by(self.graph):
            result[rtype.name] = self.peak_usage(rtype.name)
        return result

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check precedence and deadline constraints; raise on violation."""
        missing = [oid for oid in self.graph.op_ids if oid not in self.starts]
        if missing:
            raise VerificationError(f"unscheduled operations: {missing}")
        for oid in self.graph.op_ids:
            op = self.graph.operation(oid)
            start = self.starts[oid]
            if start < 0:
                raise VerificationError(f"operation {oid!r} starts before step 0")
            if self.finish(oid) > self.deadline:
                raise VerificationError(
                    f"operation {oid!r} finishes at {self.finish(oid)} past "
                    f"deadline {self.deadline}"
                )
            for pred in self.graph.predecessors(oid):
                if self.finish(pred) > start:
                    raise VerificationError(
                        f"precedence violated: {pred!r} finishes at "
                        f"{self.finish(pred)} but {oid!r} starts at {start}"
                    )

    def table(self) -> str:
        """Human-readable step-by-operation listing."""
        lines = [f"schedule of {self.graph.name!r} (deadline {self.deadline})"]
        by_step: Dict[int, List[str]] = {}
        for oid, start in sorted(self.starts.items(), key=lambda kv: (kv[1], kv[0])):
            by_step.setdefault(start, []).append(self.graph.operation(oid).label)
        for step in range(self.deadline):
            if step in by_step:
                lines.append(f"  step {step:3d}: " + ", ".join(by_step[step]))
        return "\n".join(lines)
