"""Distribution graphs: expected resource usage per control step (eq. 4).

Every operation whose frame allows ``W`` start steps is placed at each of
them with probability ``1/W``; the probability that it *occupies* its
functional unit at step ``t`` is the fraction of start steps ``s`` with
``s <= t <= s + occupancy - 1``.  The distribution graph of a resource
type is the sum of these occupancy probabilities over all operations
executed by that type — the "springs" of force-directed scheduling.

Guarded operations (conditional branches) are combined like alternation
branches in classic FDS: per condition, the *pointwise maximum* of the
branch sums enters the distribution instead of their plain sum, because
at most one branch executes per activation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

import numpy as np

from ..errors import SchedulingError
from ..ir.dfg import DataFlowGraph
from ..obs.counters import DISTRIBUTION_REBUILDS, count
from ..resources.library import ResourceLibrary
from .timeframes import FrameTable


def occupancy_row(lo: int, hi: int, occupancy: int, horizon: int) -> np.ndarray:
    """Occupancy-probability row of one operation.

    Args:
        lo, hi: Inclusive start-time frame.
        occupancy: Steps the operation keeps its unit busy per start.
        horizon: Length of the time axis (the block deadline).

    Returns:
        Array of length ``horizon``; entry ``t`` is the probability the
        operation occupies its unit at step ``t``.
    """
    if lo > hi:
        raise SchedulingError(f"empty frame [{lo}, {hi}]")
    if hi + occupancy > horizon:
        raise SchedulingError(
            f"frame [{lo}, {hi}] with occupancy {occupancy} exceeds horizon {horizon}"
        )
    # Vectorized sliding-window count: step ``t`` is covered by the starts
    # in ``[max(lo, t - occupancy + 1), min(hi, t)]``, so the probability is
    # that count times ``1 / width``.  Integer counts times one multiply
    # keep the entries exact multiples of the weight.
    row = np.zeros(horizon, dtype=float)
    weight = 1.0 / (hi - lo + 1)
    steps = np.arange(lo, hi + occupancy)
    counts = np.minimum(hi, steps) - np.maximum(lo, steps - occupancy + 1) + 1
    row[lo : hi + occupancy] = counts * weight
    return row


def combine_rows(
    rows: Mapping[str, np.ndarray],
    guards: Mapping[str, Optional[Tuple[str, str]]],
    horizon: int,
) -> np.ndarray:
    """Combine operation rows into a distribution, honoring guards.

    Unguarded rows add up; per condition, branch sums are combined by
    pointwise maximum (mutually exclusive alternatives).
    """
    total = np.zeros(horizon, dtype=float)
    branch_sums: Dict[str, Dict[str, np.ndarray]] = {}
    for op_id, row in rows.items():
        guard = guards.get(op_id)
        if guard is None:
            total += row
        else:
            condition, branch = guard
            per_branch = branch_sums.setdefault(condition, {})
            if branch in per_branch:
                per_branch[branch] += row
            else:
                per_branch[branch] = row.astype(float, copy=True)
    for per_branch in branch_sums.values():
        # Left fold in insertion order, value-identical to the old
        # ``np.maximum.reduce(list(...))`` without rebuilding a list of
        # the dict values on every tentative evaluation.
        folded: Optional[np.ndarray] = None
        for branch_sum in per_branch.values():
            if folded is None:
                folded = branch_sum
            else:
                folded = np.maximum(folded, branch_sum)
        if folded is not None:
            total += folded
    return total


class BlockDistributions:
    """All distribution graphs of one block, kept in sync with its frames.

    The time axis is the block's relative time ``0 .. deadline-1``.
    """

    def __init__(
        self, graph: DataFlowGraph, library: ResourceLibrary, frames: FrameTable
    ) -> None:
        self.graph = graph
        self.library = library
        self.frames = frames
        self.horizon = frames.deadline
        self.type_of: Dict[str, str] = {}
        self.occupancy_of: Dict[str, int] = {}
        self.guard_of: Dict[str, Optional[Tuple[str, str]]] = {}
        self._rows: Dict[str, np.ndarray] = {}
        self._sums: Dict[str, np.ndarray] = {}
        self._ops_of_type: Dict[str, List[str]] = {}
        self._guarded_types: Set[str] = set()
        self._row_cache: Dict[Tuple[str, int, int], np.ndarray] = {}
        for op in graph:
            rtype = library.type_of(op)
            self.type_of[op.op_id] = rtype.name
            self.occupancy_of[op.op_id] = rtype.occupancy
            self.guard_of[op.op_id] = op.guard
            self._ops_of_type.setdefault(rtype.name, []).append(op.op_id)
            if op.guard is not None:
                self._guarded_types.add(rtype.name)
        for op in graph:
            lo, hi = frames.frame(op.op_id)
            self._rows[op.op_id] = self.tentative_row(op.op_id, lo, hi)
        for type_name in self._ops_of_type:
            self._sums[type_name] = self._compute_array(type_name)

    def _compute_array(
        self,
        type_name: str,
        override: Optional[Mapping[str, np.ndarray]] = None,
    ) -> np.ndarray:
        rows: Dict[str, np.ndarray] = {}
        for op_id in self._ops_of_type[type_name]:
            if override and op_id in override:
                rows[op_id] = override[op_id]
            else:
                rows[op_id] = self._rows[op_id]
        return combine_rows(rows, self.guard_of, self.horizon)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def type_names(self) -> List[str]:
        """Resource types used by this block, deterministic order."""
        return list(self._ops_of_type.keys())

    def ops_of_type(self, type_name: str) -> List[str]:
        return list(self._ops_of_type.get(type_name, []))

    def has_guards(self, type_name: str) -> bool:
        """Whether any operation of the type is guarded (conditional)."""
        return type_name in self._guarded_types

    def row(self, op_id: str) -> np.ndarray:
        """Current occupancy-probability row of one operation (read-only)."""
        return self._rows[op_id]

    def array(self, type_name: str) -> np.ndarray:
        """Current distribution graph of one resource type (read-only)."""
        try:
            return self._sums[type_name]
        except KeyError:
            raise SchedulingError(
                f"block {self.graph.name!r} uses no resource of type {type_name!r}"
            ) from None

    def tentative_row(self, op_id: str, lo: int, hi: int) -> np.ndarray:
        """Row the operation would have with frame ``[lo, hi]``.

        Rows are memoized per ``(op, lo, hi)`` — the same tentative
        placements are evaluated over and over between commits — and must
        therefore be treated as read-only by callers.
        """
        key = (op_id, lo, hi)
        row = self._row_cache.get(key)
        if row is None:
            row = occupancy_row(lo, hi, self.occupancy_of[op_id], self.horizon)
            self._row_cache[key] = row
        return row

    def tentative_array(
        self,
        type_name: str,
        override: Mapping[str, np.ndarray],
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Distribution the type would have with some rows replaced.

        Takes the fast additive path when the type has no guarded
        operations; recombines with branch maxima otherwise.  ``out``
        optionally reuses a caller-owned scratch buffer of length
        ``horizon`` on the additive path (the hot tentative-evaluation
        loops call this once per candidate, so per-call allocation is
        measurable churn); the guarded path ignores it because the
        branch-max recombination allocates its own accumulator.
        """
        if type_name not in self._guarded_types:
            if out is None:
                result = self._sums[type_name].copy()
            else:
                result = out
                np.copyto(result, self._sums[type_name])
            for op_id, row in override.items():
                if self.type_of[op_id] == type_name:
                    result += row - self._rows[op_id]
            return result
        return self._compute_array(type_name, override=override)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def refresh(self, changed_ops: Iterable[str]) -> Set[str]:
        """Recompute rows of operations whose frames changed.

        Returns the names of the resource types whose distribution graph
        was affected.
        """
        touched: Set[str] = set()
        for op_id in changed_ops:
            lo, hi = self.frames.frame(op_id)
            new_row = self.tentative_row(op_id, lo, hi)
            type_name = self.type_of[op_id]
            if type_name not in self._guarded_types:
                self._sums[type_name] += new_row - self._rows[op_id]
            self._rows[op_id] = new_row
            touched.add(type_name)
        for type_name in touched:
            if type_name in self._guarded_types:
                self._sums[type_name] = self._compute_array(type_name)
        if touched:
            count(DISTRIBUTION_REBUILDS, len(touched))
        return touched

    def peak(self, type_name: str) -> float:
        """Maximum of the distribution graph (expected peak usage)."""
        return float(self.array(type_name).max())
