"""Improved Force-Directed Scheduling (Verhaegh et al., IFDS).

The IFDS refines classic FDS in two ways the paper relies on (§4):

* **Gradual time-frame reduction** — instead of pinning an operation to a
  single step, every iteration only *shrinks one frame by one step*.  For
  each mobile operation the forces of a tentative placement at the two
  outermost ends of its frame are computed; with more than two feasible
  steps the difference is halved (``eta = 1/2``) as a rough estimate for
  the interior placements.  The operation with the largest weighted force
  difference has its frame shortened at the side with the *higher* force,
  removing the worst neighborhood solution.
* **Global spring constants** — per-type weights (typically area costs)
  entering the force sums; see :mod:`repro.scheduling.forces`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Tuple

from ..ir.process import Block
from ..obs import SCHEDULER_ITERATIONS, as_tracer, get_logger
from ..obs.events import EVENT_DEGRADE, EVENT_REDUCTION
from ..obs.metrics import CANDIDATES_SCANNED, FRAMES_REMAINING, REDUCTION_SCORE
from ..resources.library import ResourceLibrary
from ..validation.budget import RunBudget
from .fallback import degraded_block_schedule, frames_state_hash
from .forces import DEFAULT_LOOKAHEAD, placement_force
from .kernels import PlacementKernel
from .schedule import BlockSchedule
from .selection_cache import BlockSelectionCache
from .state import BlockState

_log = get_logger(__name__)


@dataclass(frozen=True)
class ReductionChoice:
    """One gradual-reduction decision: which frame shrinks, at which side."""

    op_id: str
    shrink_low_side: bool
    force_low: float
    force_high: float
    score: float


def evaluate_reduction(
    state: BlockState,
    op_id: str,
    *,
    lookahead: float = DEFAULT_LOOKAHEAD,
    weights: Optional[Mapping[str, float]] = None,
    kernel: Optional[PlacementKernel] = None,
) -> ReductionChoice:
    """Evaluate the IFDS reduction candidate for one mobile operation.

    With ``kernel`` both frame-end forces come from one batched
    evaluation (:meth:`~repro.scheduling.kernels.PlacementKernel.forces`)
    instead of two scalar ``placement_force`` calls.
    """
    lo, hi = state.frames.frame(op_id)
    if kernel is not None:
        force_low, force_high = kernel.forces(op_id, (lo, hi))
    else:
        force_low = placement_force(
            state, op_id, lo, lookahead=lookahead, weights=weights
        )
        force_high = placement_force(
            state, op_id, hi, lookahead=lookahead, weights=weights
        )
    eta = 1.0 if hi - lo + 1 <= 2 else 0.5
    score = eta * abs(force_low - force_high)
    # Shrink at the side with the higher force (drop the worst placement);
    # on a (numerical) tie, drop the late side, biasing toward early starts.
    shrink_low_side = force_low > force_high + 1e-12
    return ReductionChoice(
        op_id=op_id,
        shrink_low_side=shrink_low_side,
        force_low=force_low,
        force_high=force_high,
        score=score,
    )


class ImprovedForceDirectedScheduler:
    """Time-constrained IFDS for a single block.

    With ``force_cache`` enabled (the default) the per-operation
    :class:`ReductionChoice` evaluations are memoized between iterations
    and only the dirty set of each committed reduction is re-evaluated;
    decisions are identical to the brute-force scan.  With
    ``use_kernels`` (also the default) fresh evaluations go through the
    batched array kernels; disable for the scalar reference path.

    ``budget`` optionally bounds the run; on exhaustion the block is
    rescheduled by the list-scheduling fallback and the result is tagged
    ``degraded=True`` instead of the run continuing unbounded.
    """

    def __init__(
        self,
        library: ResourceLibrary,
        *,
        lookahead: float = DEFAULT_LOOKAHEAD,
        weights: Optional[Mapping[str, float]] = None,
        force_cache: bool = True,
        use_kernels: bool = True,
        budget: Optional[RunBudget] = None,
        tracer=None,
    ) -> None:
        self.library = library
        self.lookahead = lookahead
        self.weights = weights
        self.force_cache = force_cache
        self.use_kernels = use_kernels
        self.budget = budget
        self.tracer = as_tracer(tracer)

    def schedule(self, block: Block) -> BlockSchedule:
        """Schedule one block; returns a validated :class:`BlockSchedule`."""
        tracer = self.tracer
        state = BlockState(block, self.library)
        cache = BlockSelectionCache(state) if self.force_cache else None
        kernel = (
            PlacementKernel(state, lookahead=self.lookahead, weights=self.weights)
            if self.use_kernels
            else None
        )
        tracker = self.budget.tracker() if self.budget is not None else None
        iterations = 0
        with tracer.activate(), tracer.span("ifds", block=block.name):
            while True:
                mobile = state.frames.unfixed()
                if not mobile:
                    break
                if tracker is not None:
                    reason = tracker.tick(frames_state_hash(state, mobile))
                    if reason is not None:
                        _log.warning(
                            "IFDS budget exhausted on block %r: %s; "
                            "degrading to list scheduling",
                            block.name,
                            reason,
                        )
                        if tracer.enabled:
                            tracer.event(
                                EVENT_DEGRADE,
                                reason=reason,
                                block=block.name,
                                iteration=iterations,
                                fallback="list_scheduling",
                            )
                        return degraded_block_schedule(
                            block, self.library, reason, iterations=iterations
                        )
                iterations += 1
                best: Optional[ReductionChoice] = None
                for op_id in mobile:
                    choice = cache.get(op_id) if cache is not None else None
                    if choice is None:
                        choice = evaluate_reduction(
                            state,
                            op_id,
                            lookahead=self.lookahead,
                            weights=self.weights,
                            kernel=kernel,
                        )
                        if cache is not None:
                            cache.put(op_id, choice)
                    if best is None or choice.score > best.score + 1e-12:
                        best = choice
                assert best is not None
                lo, hi = state.frames.frame(best.op_id)
                if best.shrink_low_side:
                    effect = state.commit_reduce_effect(best.op_id, lo + 1, hi)
                else:
                    effect = state.commit_reduce_effect(best.op_id, lo, hi - 1)
                if cache is not None:
                    cache.invalidate_after_commit(effect)
                if tracer.enabled:
                    tracer.count(SCHEDULER_ITERATIONS)
                    tracer.observe(REDUCTION_SCORE, best.score)
                    tracer.observe(CANDIDATES_SCANNED, len(mobile))
                    tracer.set_gauge(
                        FRAMES_REMAINING, len(state.frames.unfixed())
                    )
                    tracer.event(
                        EVENT_REDUCTION,
                        iteration=iterations,
                        block=block.name,
                        op=best.op_id,
                        side="low" if best.shrink_low_side else "high",
                        score=round(best.score, 9),
                        candidates=len(mobile),
                    )
        _log.debug("IFDS scheduled block %r in %d iterations", block.name, iterations)
        schedule = BlockSchedule(
            graph=block.graph,
            library=self.library,
            starts=state.frames.as_schedule(),
            deadline=block.deadline,
            iterations=iterations,
        )
        schedule.validate()
        return schedule
