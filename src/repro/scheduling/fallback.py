"""Graceful-degradation fallback for budget-exhausted scheduler runs.

When a :class:`~repro.validation.budget.RunBudget` trips mid-run, the
force-directed schedulers abandon the partially reduced frames and hand
the block to :func:`degraded_block_schedule`: a list-scheduling pass with
one instance per operation of each type, which is ASAP-equivalent and
therefore always meets the deadline whenever the critical path does (the
C1 feasibility check every scheduler performs up front).  The result is
a valid, verifiable schedule — just without the force-directed area
optimization — tagged ``degraded=True`` with the reason attached.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict

from ..ir.process import Block
from ..resources.library import ResourceLibrary
from .list_scheduling import ListScheduler
from .schedule import BlockSchedule


def frames_state_hash(state, op_ids) -> int:
    """Hash of the mobile operations' current frames.

    Fed to :meth:`BudgetTracker.tick` as the oscillation-detector state;
    frame reductions are monotone, so a repeat within the window always
    indicates a genuine cycle, never a false positive.
    """
    return hash(tuple((op_id, state.frames.frame(op_id)) for op_id in op_ids))


def asap_capacity(block: Block, library: ResourceLibrary) -> Dict[str, int]:
    """One instance per operation of each type: never a resource stall."""
    counts: Counter = Counter(
        library.type_of(op).name for op in block.graph
    )
    return dict(counts)


def degraded_block_schedule(
    block: Block,
    library: ResourceLibrary,
    reason: str,
    *,
    iterations: int = 0,
) -> BlockSchedule:
    """Best-effort schedule for ``block`` after a budget exhaustion.

    Runs :class:`ListScheduler` with unconstrained (per-op) capacities so
    the makespan equals the critical path, then re-tags the result with
    the block's own deadline and the degradation reason.  Raises only if
    the block itself is infeasible (critical path beyond the deadline),
    which the schedulers have already ruled out before starting.
    """
    listed = ListScheduler(library, asap_capacity(block, library)).schedule(block)
    schedule = BlockSchedule(
        graph=listed.graph,
        library=library,
        starts=listed.starts,
        deadline=block.deadline,
        iterations=iterations,
        degraded=True,
        degraded_reason=reason,
    )
    schedule.validate()
    return schedule
