"""Array-backed force kernels: batched (op × slot) evaluation.

The force-directed inner loops all reduce to the same shape of work:
for a batch of tentative placements ``(op, start)``, build the per-type
distribution displacements (eq. 5) and fold them into Hooke forces
(eq. 6).  The scalar reference path — :func:`repro.scheduling.forces
.placement_force` — does this one candidate at a time with one tiny
``np.dot`` per displaced type; at system scale that is hundreds of
thousands of interpreter round-trips per run.

This module evaluates *all* candidate slots of an operation (and, for
the system scheduler, all dirty operations of a block) in one vectorized
pass over flat ``(candidates, horizon)`` matrices:

* :func:`batched_occupancy_rows` generalizes
  :func:`repro.scheduling.distribution.occupancy_row`'s sliding-window
  counts to a stacked row matrix;
* :class:`DeltaBatch` builds the per-type displacement matrices for a
  whole candidate batch, value-identical per row to
  :meth:`BlockState.placement_deltas`;
* :class:`PlacementKernel` is the FDS/IFDS driver: one call returns the
  forces of every start step in an operation's frame.

Exactness contract
------------------
Displacement construction is purely elementwise (subtract, add, masked
zero rows), so every ``DeltaBatch`` row is **bit-identical** to the
scalar path's delta for the same candidate.  The force *dots* are
batched matrix products, and BLAS matrix–vector products are not
bitwise-identical to a sequence of ``np.dot`` calls (ulp-level
differences, empirically ~1e-16).  Decisions in every scheduler compare
forces against ``1e-12`` epsilons, so kernel-vs-scalar agreement is
pinned at the *decision* level by ``tests/core/test_kernel_parity.py``;
within one mode results are deterministic because all matrix shapes are
functions of the scheduling state alone.

Operations whose force footprint (own resource type plus the types of
direct predecessors/successors) contains a *guarded* type fall back to
the scalar reference path: guarded displacement goes through branch-max
recombination, which is not an additive update.  The fallback is decided
statically per operation, so both kernel and scalar modes agree on which
machinery evaluates which operation.
"""

from __future__ import annotations

import time
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import SchedulingError
from ..obs import counters as _ambient
from ..obs.counters import FORCE_EVALUATIONS, count, observe_many
from ..obs.metrics import FORCE_EVAL_SECONDS
from .forces import DEFAULT_LOOKAHEAD, placement_force
from .state import BlockState

__all__ = [
    "batched_occupancy_rows",
    "row_dots",
    "row_self_dots",
    "DeltaBatch",
    "PlacementKernel",
]


#: Step-axis arrays keyed by horizon, shared by every occupancy batch.
#: Read-only by construction; the scheduling stack is single-threaded.
_STEPS_CACHE: Dict[int, np.ndarray] = {}


def _steps(horizon: int) -> np.ndarray:
    steps = _STEPS_CACHE.get(horizon)
    if steps is None:
        steps = np.arange(horizon, dtype=np.int64)
        _STEPS_CACHE[horizon] = steps
    return steps


def batched_occupancy_rows(
    los: Sequence[int],
    his: Sequence[int],
    occupancy,
    horizon: int,
    out: Optional[np.ndarray] = None,
    validate: bool = True,
) -> np.ndarray:
    """Stacked occupancy-probability rows for a batch of frames.

    Row ``i`` is value-identical to ``occupancy_row(los[i], his[i],
    occupancy, horizon)``: the integer sliding-window count times one
    float weight, computed here for every frame at once.  Outside the
    window the clipped count is exactly 0, so the zero entries match the
    scalar path's zero-initialized row bit for bit.

    ``occupancy`` may be one integer for the whole batch or a per-row
    array, so heterogeneous operations batch into one call.  ``out``
    optionally reuses a caller-owned ``(len(los), horizon)`` float
    buffer.  ``validate=False`` skips the frame sanity checks for
    internal callers whose bounds are invariant-guaranteed (scheduler
    frames always satisfy them); the public default keeps them on.
    """
    los = np.asarray(los, dtype=np.int64)
    his = np.asarray(his, dtype=np.int64)
    occ = np.asarray(occupancy, dtype=np.int64)
    if validate:
        if los.shape != his.shape or los.ndim != 1:
            raise SchedulingError(
                f"frame bound arrays must be 1-d and congruent, "
                f"got {los.shape} and {his.shape}"
            )
        if occ.ndim not in (0, 1) or (occ.ndim == 1 and occ.shape != los.shape):
            raise SchedulingError(
                f"occupancy must be a scalar or match the frame bounds, "
                f"got shape {occ.shape}"
            )
        if np.any(los > his):
            bad = int(np.argmax(los > his))
            raise SchedulingError(
                f"empty frame [{int(los[bad])}, {int(his[bad])}]"
            )
        if los.size and np.any(his + occ > horizon):
            bad = int(np.argmax(his + occ > horizon))
            occ_bad = int(occ[bad]) if occ.ndim else int(occ)
            raise SchedulingError(
                f"frame [{int(los[bad])}, {int(his[bad])}] with occupancy "
                f"{occ_bad} exceeds horizon {horizon}"
            )
    n = los.shape[0]
    weights = 1.0 / (his - los + 1)
    steps = _steps(horizon)
    occ_col = occ[:, None] if occ.ndim else occ
    counts = (
        np.minimum(his[:, None], steps)
        - np.maximum(los[:, None], steps - occ_col + 1)
        + 1
    )
    np.maximum(counts, 0, out=counts)
    if out is None:
        return counts * weights[:, None]
    np.multiply(counts, weights[:, None], out=out[:n])
    return out[:n]


def row_dots(matrix: np.ndarray, vector: np.ndarray) -> np.ndarray:
    """Row-wise dot products ``matrix[i] . vector`` as one matrix product.

    One dgemv replaces ``n`` interpreter-level ``np.dot`` calls.  Within
    a run the result is deterministic for a given shape; it is *not*
    bitwise-equal to the scalar ``np.dot`` sequence (see the module
    exactness contract).
    """
    return matrix @ vector


def row_self_dots(matrix: np.ndarray) -> np.ndarray:
    """Row-wise self dot products ``matrix[i] . matrix[i]``."""
    return np.einsum("ij,ij->i", matrix, matrix)


class DeltaBatch:
    """Per-type displacement matrices of a batch of tentative placements.

    For candidates ``[(op, start), ...]`` of one block, builds — in a
    single pass per operation — the eq. 5 displacement of every
    candidate as rows of per-type ``(len(candidates), horizon)``
    matrices.  Rows replicate the scalar accumulation exactly: the
    tentative distribution starts from the current type sum, adds the
    operation's own row increment and then every implied neighbor
    increment (predecessors in graph order, then successors), and
    subtracts the type sum again, so cancellation behaves identically.
    Neighbors whose frame a candidate does *not* implicitly reduce
    contribute an exact-zero increment row, which is a numerical no-op.

    Two internal build paths cover the two batch shapes the schedulers
    produce.  *Narrow* batches — at most two candidate slots per
    operation, the IFDS/system frame-end case — replay the scalar
    ``placement_deltas`` accumulation per candidate against the memoized
    tentative rows, which is both cheaper than stacking occupancy
    batches at that width and bit-exact by construction.  *Wide* batches
    (whole-frame FDS scans) assemble one flattened occupancy batch per
    operation covering the own row and every neighbor row of every
    candidate in a single :func:`batched_occupancy_rows` call.

    Attributes:
        candidates: The ``(op_id, start)`` pairs, batch order.
        type_orders: Per candidate, the displaced type names in
            first-occurrence order (own type, then overridden
            predecessors', then overridden successors').
        deltas: Mapping from type name to its ``(n, horizon)``
            displacement matrix; rows of candidates that do not displace
            the type are never consumed (the narrow path leaves them
            uninitialized, the wide path zero).

    Candidates must not have a guarded force footprint — callers route
    those through the scalar reference path.
    """

    __slots__ = ("candidates", "type_orders", "deltas")

    def __init__(self, state: BlockState, candidates: Sequence[Tuple[str, int]]):
        n = len(candidates)
        self.candidates = list(candidates)
        self.type_orders: List[Tuple[str, ...]] = [()] * n
        self.deltas: Dict[str, np.ndarray] = {}

        # Group batch rows by operation: all of an op's candidate slots
        # share the same neighbor structure and vectorize together.
        groups: Dict[str, List[int]] = {}
        for row, (op_id, _start) in enumerate(candidates):
            groups.setdefault(op_id, []).append(row)

        if n <= 2 * len(groups):
            self._build_narrow(state)
        else:
            self._build_wide(state, groups)

    def _build_narrow(self, state: BlockState) -> None:
        """Per-candidate replay of the scalar delta accumulation.

        Each row reproduces bit for bit what
        :meth:`BlockState.placement_deltas` computes.  The common case —
        one overridden row per displaced type — replays the scalar
        round trip ``(S + (row - old_row)) - S`` elementwise but stacked
        over every (candidate, type) pair of the type at once, three
        vector operations per type instead of four per pair (IEEE
        addition commutes, so folding the increment first is
        bit-identical).  Pairs with several overridden rows of one type,
        or a guarded type, fall back to the literal per-candidate
        ``tentative_array`` round trip.
        """
        dist = state.dist
        frames = state.frames
        type_of = dist.type_of
        horizon = dist.horizon
        n = len(self.candidates)
        deltas = self.deltas
        # Static per-op structure (own latency, predecessors with their
        # latencies, successors), memoized on the state: the narrow path
        # re-walks it for the same operations on every invalidation.
        meta = getattr(state, "_narrow_meta", None)
        if meta is None:
            graph = state.graph
            latency = frames._latency
            meta = {
                op_id: (
                    latency[op_id],
                    [(pred, latency[pred]) for pred in graph.predecessors(op_id)],
                    list(graph.successors(op_id)),
                )
                for op_id in graph.op_ids
            }
            state._narrow_meta = meta
        lo_of = frames._lo
        hi_of = frames._hi
        current_rows = dist._rows
        tentative_row = dist.tentative_row
        # singles[type] = (batch rows, new rows, current rows) of every
        # candidate displacing the type through exactly one override.
        singles: Dict[str, Tuple[List[int], List[np.ndarray], List[np.ndarray]]] = {}
        multis: List[Tuple[int, str, List[Tuple[str, np.ndarray]]]] = []
        for row, (op_id, start) in enumerate(self.candidates):
            latency, preds, succs = meta[op_id]
            # (oid, overriding row) pairs in the scalar override-dict
            # order: the operation itself, predecessors, successors.
            overrides: List[Tuple[str, np.ndarray]] = [
                (op_id, tentative_row(op_id, start, start))
            ]
            for pred, pred_latency in preds:
                new_hi = start - pred_latency
                if new_hi < hi_of[pred]:
                    overrides.append(
                        (pred, tentative_row(pred, lo_of[pred], new_hi))
                    )
            finish = start + latency
            for succ in succs:
                if finish > lo_of[succ]:
                    overrides.append(
                        (succ, tentative_row(succ, finish, hi_of[succ]))
                    )
            order: List[str] = []
            per_type: Dict[str, List[int]] = {}
            for position, (oid, _new_row) in enumerate(overrides):
                type_name = type_of[oid]
                bucket = per_type.get(type_name)
                if bucket is None:
                    per_type[type_name] = [position]
                    order.append(type_name)
                else:
                    bucket.append(position)
            self.type_orders[row] = tuple(order)
            for type_name in order:
                positions = per_type[type_name]
                if len(positions) == 1 and not dist.has_guards(type_name):
                    oid, new_row = overrides[positions[0]]
                    lists = singles.setdefault(type_name, ([], [], []))
                    lists[0].append(row)
                    lists[1].append(new_row)
                    lists[2].append(current_rows[oid])
                else:
                    multis.append((row, type_name, overrides))
        # One stacked round trip for every single-override pair of every
        # type at once: row ``i`` still computes exactly
        # ``(new - old) + S_t - S_t`` elementwise, so each row is
        # bit-identical to the per-type version while the numpy call
        # count per batch stays constant instead of linear in the
        # number of displaced types.  Rows a candidate does not displace
        # are never consumed (``type_orders`` gates every consumer), so
        # the matrices need no zero fill.
        if singles:
            news_all: List[np.ndarray] = []
            olds_all: List[np.ndarray] = []
            bases_all: List[np.ndarray] = []
            spans: List[Tuple[str, List[int], int, int]] = []
            offset = 0
            for type_name, (rows, news, olds) in singles.items():
                news_all.extend(news)
                olds_all.extend(olds)
                bases_all.extend([dist.array(type_name)] * len(rows))
                spans.append((type_name, rows, offset, offset + len(rows)))
                offset += len(rows)
            inc = np.asarray(news_all) - np.asarray(olds_all)
            base_stack = np.asarray(bases_all)
            inc += base_stack
            inc -= base_stack
            for type_name, rows, lo, hi in spans:
                matrix = deltas.get(type_name)
                if matrix is None:
                    matrix = np.empty((n, horizon), dtype=float)
                    deltas[type_name] = matrix
                matrix[rows] = inc[lo:hi]
        if multis:
            scratch = state._scratch
            for row, type_name, overrides in multis:
                matrix = deltas.get(type_name)
                if matrix is None:
                    matrix = np.empty((n, horizon), dtype=float)
                    deltas[type_name] = matrix
                after = dist.tentative_array(
                    type_name, dict(overrides), out=scratch
                )
                np.subtract(after, dist.array(type_name), out=matrix[row])

    def _build_wide(self, state: BlockState, groups: Dict[str, List[int]]) -> None:
        """Stacked-occupancy path for wide batches (whole-frame scans).

        One flattened :func:`batched_occupancy_rows` call per operation
        covers the operation's own tentative rows and every neighbor's
        implied rows for all candidate starts at once.  Increments of
        neighbor frames a candidate does not implicitly reduce are exact
        zeros (the batched row equals the current row bit for bit), so
        accumulating them is a bitwise no-op and needs no masking.
        """
        dist = state.dist
        frames = state.frames
        graph = state.graph
        horizon = dist.horizon
        n = len(self.candidates)
        candidates = self.candidates
        for op_id, rows in groups.items():
            starts = np.asarray([candidates[r][1] for r in rows], dtype=np.int64)
            width = starts.shape[0]
            # Per contribution: (type, los, his, occupancy, current row,
            # overridden mask) in the scalar override-dict order: the
            # operation itself, predecessors, successors.
            specs: List[tuple] = [
                (
                    dist.type_of[op_id],
                    starts,
                    starts,
                    dist.occupancy_of[op_id],
                    dist.row(op_id),
                    None,
                )
            ]
            for pred in graph.predecessors(op_id):
                p_lo, p_hi = frames.frame(pred)
                new_hi = np.minimum(p_hi, starts - frames.latency(pred))
                specs.append(
                    (
                        dist.type_of[pred],
                        np.full_like(starts, p_lo),
                        new_hi,
                        dist.occupancy_of[pred],
                        dist.row(pred),
                        new_hi != p_hi,
                    )
                )
            finishes = starts + frames.latency(op_id)
            for succ in graph.successors(op_id):
                s_lo, s_hi = frames.frame(succ)
                new_lo = np.maximum(s_lo, finishes)
                specs.append(
                    (
                        dist.type_of[succ],
                        new_lo,
                        np.full_like(starts, s_hi),
                        dist.occupancy_of[succ],
                        dist.row(succ),
                        new_lo != s_lo,
                    )
                )

            # One occupancy batch for every (contribution, candidate)
            # row; neighbor frames are implied reductions of feasible
            # frames, so the invariant-checked bounds always hold.
            los = np.concatenate([spec[1] for spec in specs])
            his = np.concatenate([spec[2] for spec in specs])
            occs = np.repeat(
                np.asarray([spec[3] for spec in specs], dtype=np.int64), width
            )
            incs = batched_occupancy_rows(los, his, occs, horizon, validate=False)
            for i, spec in enumerate(specs):
                incs[i * width : (i + 1) * width] -= spec[4]

            # Per-candidate displaced-type order (first occurrence).
            orders: List[List[str]] = [[specs[0][0]] for _ in rows]
            for spec in specs[1:]:
                type_name, mask = spec[0], spec[5]
                for slot, flagged in enumerate(mask):
                    if flagged and type_name not in orders[slot]:
                        orders[slot].append(type_name)
            for slot, row in enumerate(rows):
                self.type_orders[row] = tuple(orders[slot])

            # Accumulate per type through the tentative sum, mirroring
            # tentative_array's  S + inc1 + inc2 ... - S  round trip.
            by_type: Dict[str, List[int]] = {}
            for i, spec in enumerate(specs):
                by_type.setdefault(spec[0], []).append(i)
            contiguous = rows == list(range(rows[0], rows[0] + width))
            row_index = None if contiguous else np.asarray(rows, dtype=np.intp)
            for type_name, spec_ids in by_type.items():
                matrix = self.deltas.get(type_name)
                if matrix is None:
                    matrix = np.zeros((n, horizon), dtype=float)
                    self.deltas[type_name] = matrix
                if row_index is None:
                    view = matrix[rows[0] : rows[0] + width]
                else:
                    view = matrix[row_index]
                base = dist.array(type_name)
                view[:] = base
                for i in spec_ids:
                    view += incs[i * width : (i + 1) * width]
                view -= base
                if row_index is not None:
                    matrix[row_index] = view


def guarded_footprint_ops(state: BlockState) -> frozenset:
    """Operations whose force evaluation must use the scalar path.

    An operation's footprint is its own resource type plus the types of
    its direct predecessors and successors; if any of those types has
    guarded operations, tentative displacement needs the branch-max
    recombination and the additive kernels do not apply.  The set is a
    static property of the block, so kernel and scalar modes partition
    the operations identically.
    """
    dist = state.dist
    graph = state.graph
    fallback = set()
    for op_id in graph.op_ids:
        footprint = [op_id]
        footprint.extend(graph.predecessors(op_id))
        footprint.extend(graph.successors(op_id))
        if any(dist.has_guards(dist.type_of[oid]) for oid in footprint):
            fallback.add(op_id)
    return frozenset(fallback)


class PlacementKernel:
    """Batched local-force evaluator for one block (FDS/IFDS driver core).

    One :meth:`forces` call returns the weighted Hooke force of placing
    an operation at *every* requested start step: the per-type
    displacement matrices come from :class:`DeltaBatch`, the dots from
    one matrix product per displaced type.  Operations with a guarded
    footprint are delegated to the scalar
    :func:`~repro.scheduling.forces.placement_force` reference path.

    Instrumentation parity: ``force_evaluations`` advances by one per
    (candidate, displaced type) pair — the same total the scalar loop
    counts — and the ``force_eval_seconds`` histogram receives one
    batched record of the mean per-candidate latency times the batch
    width, keeping the uninstrumented path at a single global load.
    """

    def __init__(
        self,
        state: BlockState,
        *,
        lookahead: float = DEFAULT_LOOKAHEAD,
        weights: Optional[Mapping[str, float]] = None,
    ) -> None:
        self.state = state
        self.lookahead = lookahead
        self.weights = dict(weights) if weights is not None else None
        self.scalar_ops = guarded_footprint_ops(state)

    def _weight(self, type_name: str) -> float:
        if self.weights is None:
            return 1.0
        return float(self.weights.get(type_name, 1.0))

    def forces(self, op_id: str, steps: Sequence[int]) -> List[float]:
        """Forces of tentatively placing ``op_id`` at each of ``steps``."""
        if op_id in self.scalar_ops:
            return [
                placement_force(
                    self.state,
                    op_id,
                    step,
                    lookahead=self.lookahead,
                    weights=self.weights,
                )
                for step in steps
            ]
        registry_active = _ambient._active is not None
        started = time.perf_counter() if registry_active else 0.0
        batch = DeltaBatch(self.state, [(op_id, step) for step in steps])
        totals = self._fold(batch)
        if registry_active:
            elapsed = time.perf_counter() - started
            width = len(totals)
            if width:
                observe_many(FORCE_EVAL_SECONDS, elapsed / width, width)
        return totals

    def _fold(self, batch: DeltaBatch) -> List[float]:
        """Fold a delta batch into per-candidate weighted force totals."""
        dist = self.state.dist
        contributions: Dict[str, np.ndarray] = {}
        for type_name, matrix in batch.deltas.items():
            weight = self._weight(type_name)
            contributions[type_name] = weight * (
                row_dots(matrix, dist.array(type_name))
                + self.lookahead * row_self_dots(matrix)
            )
        totals: List[float] = []
        evaluations = 0
        for row, order in enumerate(batch.type_orders):
            total = 0.0
            for type_name in order:
                total += float(contributions[type_name][row])
            evaluations += len(order)
            totals.append(total)
        count(FORCE_EVALUATIONS, evaluations)
        return totals
