"""RTL backend: controllers, datapath units, authorization ROMs, HDL text."""

from .design import ControllerSpec, IssueSpec, RTLDesign, UnitSpec, build_rtl
from .verilog import emit_verilog

__all__ = [
    "ControllerSpec",
    "IssueSpec",
    "RTLDesign",
    "UnitSpec",
    "build_rtl",
    "emit_verilog",
]
