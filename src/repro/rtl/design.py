"""RTL-level design model derived from a bound system schedule.

The end product of the paper's flow is hardware: per process a finite
state machine controller stepping through the block schedule, a datapath
of functional-unit instances (shared global pools plus per-process local
units), and — in place of any runtime arbiter — per-process
*authorization ROMs* holding the periodic access grants.  This module
derives that structure from a :class:`~repro.core.result.SystemSchedule`
plus its :class:`~repro.binding.instances.InstanceBinding` and
cross-checks its consistency; :mod:`repro.rtl.verilog` renders it as
readable HDL text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import BindingError
from ..binding.instances import InstanceBinding
from ..core.result import SystemSchedule


@dataclass(frozen=True)
class UnitSpec:
    """One functional-unit instance in the datapath."""

    name: str
    type_name: str
    scope: str  # "global" or the owning process name
    index: int
    occupancy: int = 1  # busy steps per issued operation


@dataclass(frozen=True)
class IssueSpec:
    """One operation issue: at FSM state ``state``, start ``op_id`` on ``unit``.

    ``guard`` carries the operation's ``(condition, branch)`` pair when
    the issue is conditional; two issues with the same condition but
    different branches are mutually exclusive and may target one unit in
    the same state.
    """

    state: int
    op_id: str
    op_label: str
    unit: str
    guard: Optional[Tuple[str, str]] = None

    def excludes(self, other: "IssueSpec") -> bool:
        if self.guard is None or other.guard is None:
            return False
        return self.guard[0] == other.guard[0] and self.guard[1] != other.guard[1]


@dataclass
class ControllerSpec:
    """The FSM of one block: a linear state sequence with issue slots.

    ``offset`` is the process's start-grid offset: the block may start
    only at absolute times ≡ offset (mod ``grid``), so FSM state ``s``
    always executes at absolute period slot ``(s + offset) mod P``.
    """

    process: str
    block: str
    n_states: int
    grid: int
    offset: int = 0
    issues: List[IssueSpec] = field(default_factory=list)

    @property
    def name(self) -> str:
        return f"{self.process}_{self.block}_ctrl"

    def issues_at(self, state: int) -> List[IssueSpec]:
        return [issue for issue in self.issues if issue.state == state]


@dataclass
class RTLDesign:
    """Complete derived design: units, controllers, authorization ROMs."""

    system_name: str
    units: List[UnitSpec]
    controllers: List[ControllerSpec]
    #: type name -> (period, process -> per-slot grant counts)
    authorization_roms: Dict[str, Tuple[int, Dict[str, List[int]]]]
    #: global types whose processes own fixed (slot-independent) id ranges
    #: sized by their peak grant — required for multicycle units (see
    #: :class:`repro.binding.AccessAuthorizationTable`)
    fixed_range_types: frozenset = frozenset()

    def unit(self, name: str) -> UnitSpec:
        for unit in self.units:
            if unit.name == name:
                return unit
        raise BindingError(f"no unit named {name!r}")

    def units_of_type(self, type_name: str) -> List[UnitSpec]:
        return [u for u in self.units if u.type_name == type_name]

    def controller(self, process: str, block: str) -> ControllerSpec:
        for ctrl in self.controllers:
            if ctrl.process == process and ctrl.block == block:
                return ctrl
        raise BindingError(f"no controller for {process}/{block}")

    # ------------------------------------------------------------------
    # Consistency
    # ------------------------------------------------------------------
    def consistency_check(self) -> None:
        """Cross-check the derived structure; raises :class:`BindingError`.

        * every issue targets an existing unit of a type;
        * a controller never issues two operations on one unit in one state;
        * global-unit issues stay within the process's authorization ROM
          grant at the issue state's period slot.
        """
        unit_names = {unit.name for unit in self.units}
        for ctrl in self.controllers:
            for state in range(ctrl.n_states):
                used: Dict[str, List[IssueSpec]] = {}
                for issue in ctrl.issues_at(state):
                    if issue.unit not in unit_names:
                        raise BindingError(
                            f"{ctrl.name}: unknown unit {issue.unit!r}"
                        )
                    for holder in used.get(issue.unit, ()):
                        if not issue.excludes(holder):
                            raise BindingError(
                                f"{ctrl.name} state {state}: unit "
                                f"{issue.unit!r} issued to both "
                                f"{holder.op_id!r} and {issue.op_id!r}"
                            )
                    used.setdefault(issue.unit, []).append(issue)
            self._check_authorizations(ctrl)
        self._check_cross_process_units()

    def _check_authorizations(self, ctrl: ControllerSpec) -> None:
        for issue in ctrl.issues:
            unit = self.unit(issue.unit)
            if unit.scope != "global":
                continue
            if unit.type_name in self.fixed_range_types:
                # Multicycle types are pooled by the periodic conflict
                # coloring; cross-process safety is checked unit-wise in
                # _check_cross_process_units instead of by id ranges.
                continue
            period, grants = self.authorization_roms[unit.type_name]
            slot = (issue.state + ctrl.offset) % period
            granted = grants.get(ctrl.process, [0] * period)[slot]
            # The unit index must lie inside the process's granted range.
            offset = 0
            for process_name, counts in grants.items():
                if process_name == ctrl.process:
                    break
                offset += counts[slot]
            if not offset <= unit.index < offset + granted:
                raise BindingError(
                    f"{ctrl.name} state {issue.state}: unit {unit.name!r} "
                    f"outside the authorized range of {ctrl.process!r} at "
                    f"slot {slot}"
                )

    def _check_cross_process_units(self) -> None:
        """No two processes may touch one global unit at a shared slot.

        Block start times are arbitrary grid-aligned values, so issues of
        different processes on the same unit whose absolute slot sets
        intersect can collide in some interleaving.
        """
        occupancy_slots: Dict[Tuple[str, int], List[Tuple[str, IssueSpec]]] = {}
        unit_types = {unit.name: unit for unit in self.units}
        for ctrl in self.controllers:
            for issue in ctrl.issues:
                unit = unit_types[issue.unit]
                if unit.scope != "global":
                    continue
                period, __ = self.authorization_roms[unit.type_name]
                for step in range(issue.state, issue.state + unit.occupancy):
                    slot = (step + ctrl.offset) % period
                    key = (issue.unit, slot)
                    for other_process, other in occupancy_slots.get(key, ()):
                        if other_process != ctrl.process:
                            raise BindingError(
                                f"unit {issue.unit!r} at slot {slot}: issued "
                                f"by both {other_process!r} ({other.op_id}) "
                                f"and {ctrl.process!r} ({issue.op_id})"
                            )
                    occupancy_slots.setdefault(key, []).append(
                        (ctrl.process, issue)
                    )

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        return {
            "units": len(self.units),
            "controllers": len(self.controllers),
            "issues": sum(len(c.issues) for c in self.controllers),
            "rom_bits": sum(
                period * len(grants) * 4
                for period, grants in self.authorization_roms.values()
            ),
        }


def build_rtl(
    result: SystemSchedule, binding: Optional[InstanceBinding] = None
) -> RTLDesign:
    """Derive the RTL design from a schedule (binding computed if absent)."""
    if binding is None:
        from ..binding.instances import bind_instances

        binding = bind_instances(result)

    units: List[UnitSpec] = []
    for rtype in result.library.types:
        if result.assignment.is_global(rtype.name):
            pool = result.global_instances(rtype.name)
            for index in range(pool):
                units.append(
                    UnitSpec(
                        name=f"{rtype.name}_g{index}",
                        type_name=rtype.name,
                        scope="global",
                        index=index,
                        occupancy=rtype.occupancy,
                    )
                )
        for process in result.system.processes:
            count = result.local_instances(process.name, rtype.name)
            for index in range(count):
                units.append(
                    UnitSpec(
                        name=f"{process.name}_{rtype.name}_{index}",
                        type_name=rtype.name,
                        scope=process.name,
                        index=index,
                        occupancy=rtype.occupancy,
                    )
                )

    roms: Dict[str, Tuple[int, Dict[str, List[int]]]] = {}
    for type_name in result.assignment.global_types:
        period = result.periods.period(type_name)
        grants = {
            process: result.authorization(process, type_name).tolist()
            for process in result.assignment.group(type_name)
        }
        roms[type_name] = (period, grants)

    controllers: List[ControllerSpec] = []
    for (process_name, block_name), sched in result.block_schedules.items():
        ctrl = ControllerSpec(
            process=process_name,
            block=block_name,
            n_states=sched.deadline,
            grid=result.grid_spacing(process_name),
            offset=result.offset_of(process_name),
        )
        for op in sched.graph:
            rtype = result.library.type_of(op)
            instance = binding.instance_of(process_name, block_name, op.op_id)
            if result.assignment.shares_globally(rtype.name, process_name):
                unit_name = f"{rtype.name}_g{instance}"
            else:
                unit_name = f"{process_name}_{rtype.name}_{instance}"
            ctrl.issues.append(
                IssueSpec(
                    state=sched.start(op.op_id),
                    op_id=op.op_id,
                    op_label=op.label,
                    unit=unit_name,
                    guard=op.guard,
                )
            )
        ctrl.issues.sort(key=lambda issue: (issue.state, issue.op_id))
        controllers.append(ctrl)

    design = RTLDesign(
        system_name=result.system.name,
        units=units,
        controllers=controllers,
        authorization_roms=roms,
        fixed_range_types=frozenset(
            type_name
            for type_name in result.assignment.global_types
            if result.library.type(type_name).occupancy > 1
        ),
    )
    design.consistency_check()
    return design
