"""Crash-safe sweep checkpoints: a JSONL journal of finished candidates.

Each line of a :class:`SweepJournal` file is one completed candidate
outcome (evaluated, pruned, or failed), appended with ``flush`` +
``fsync`` *before* the result is surfaced, so a sweep killed at any
instant — including ``SIGKILL`` — loses at most the candidate that was
still in flight.  Resuming a sweep with the same journal path restores
every journaled outcome by its deterministic candidate key
(``tuple(sorted(periods.items()))``), skips those candidates
exactly-once, and seeds the incumbent-area bound from the journaled
results so pruning decisions stay sound: a journaled pruned candidate
was pruned against a real evaluated incumbent whose area is restored
alongside it.

Loading tolerates a truncated final line (the classic torn-write tail of
a crash) by dropping it: the candidate simply re-runs, which is safe —
journaling is exactly-once for *completed* work, at-least-once overall.
"""

from __future__ import annotations

import json
import os
from typing import IO, TYPE_CHECKING, Dict, List, Optional, Tuple

from ..errors import ReproError
from ..obs import get_logger

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import CandidateResult

_log = get_logger(__name__)

LexKey = Tuple[Tuple[str, int], ...]

#: Journal schema version; bump only on incompatible record changes.
JOURNAL_VERSION = 1


class CheckpointError(ReproError):
    """A sweep checkpoint journal is unusable (I/O failure, bad schema)."""

    code = "CKPT"


def candidate_key(periods: Dict[str, int]) -> LexKey:
    """The journal identity of a candidate: its sorted period items."""
    return tuple(sorted(periods.items()))


def load_jsonl_tolerant(path: str) -> Tuple[List[Dict[str, object]], int]:
    """Read a JSONL file, tolerating torn and corrupt lines.

    Returns ``(records, dropped)``: every line that parses as a JSON
    object, in file order, plus the count of lines that did not.  The
    file is read as *bytes* and each line decoded independently, so a
    crash that tears a record anywhere — including mid-way through a
    multi-byte UTF-8 character — costs exactly that record, never the
    readable ones around it.  A journal whose very first record is torn
    (zero-length file, truncated line) simply loads as empty.

    ``OSError`` propagates: an unreadable *file* is the caller's
    policy decision, an unreadable *line* is this function's.
    """
    records: List[Dict[str, object]] = []
    dropped = 0
    with open(path, "rb") as handle:
        data = handle.read()
    for raw_line in data.split(b"\n"):
        if not raw_line.strip():
            continue
        try:
            entry = json.loads(raw_line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            dropped += 1
            continue
        if not isinstance(entry, dict):
            dropped += 1
            continue
        records.append(entry)
    return records, dropped


class SweepJournal:
    """Append-only JSONL journal of completed sweep candidates.

    Opening a path that already holds a journal is the resume case:
    :meth:`load` returns the previously completed records keyed by
    candidate, and subsequent :meth:`append` calls extend the same file.
    """

    def __init__(self, path: "str | os.PathLike[str]") -> None:
        self.path = str(path)
        self._handle: Optional[IO[str]] = None

    # ------------------------------------------------------------------
    # Reading (resume)
    # ------------------------------------------------------------------
    def load(self) -> Dict[LexKey, Dict[str, object]]:
        """Completed records keyed by candidate; ``{}`` if no file yet.

        Malformed lines (torn tail after a crash) are dropped with a
        warning — the affected candidate just re-runs.  A duplicate key
        keeps the first occurrence, preserving the outcome that actually
        completed first.
        """
        if not os.path.exists(self.path):
            return {}
        records: Dict[LexKey, Dict[str, object]] = {}
        try:
            entries, dropped = load_jsonl_tolerant(self.path)
        except OSError as exc:
            raise CheckpointError(
                f"cannot read sweep checkpoint {self.path!r}: {exc}"
            ) from exc
        for entry in entries:
            try:
                if entry.get("version") != JOURNAL_VERSION:
                    raise ValueError(
                        f"journal version {entry.get('version')!r}"
                    )
                periods = {
                    str(k): int(v) for k, v in entry["periods"].items()
                }
                if "status" not in entry:
                    raise ValueError("missing status")
            except (ValueError, KeyError, TypeError, AttributeError):
                dropped += 1
                continue
            entry["periods"] = periods
            records.setdefault(candidate_key(periods), entry)
        if dropped:
            _log.warning(
                "sweep checkpoint %s: dropped %d unreadable line(s) "
                "(truncated tail?); the candidates will re-run",
                self.path,
                dropped,
            )
        return records

    @staticmethod
    def best_area(records: Dict[LexKey, Dict[str, object]]) -> Optional[float]:
        """Smallest journaled evaluated area — the restored incumbent."""
        areas = [
            float(entry["area"])
            for entry in records.values()
            if entry.get("status") == "ok" and entry.get("area") is not None
        ]
        return min(areas) if areas else None

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append(self, record: "CandidateResult") -> None:
        """Durably journal one finished :class:`CandidateResult`."""
        entry = {
            "version": JOURNAL_VERSION,
            "order": record.order,
            "periods": dict(record.periods),
            "status": record.status,
            "area": record.area,
            "bound": record.bound,
            "iterations": record.iterations,
            "wall_time": record.wall_time,
            "instance_counts": dict(record.instance_counts),
            "error": record.error,
            "attempts": record.attempts,
        }
        try:
            if self._handle is None:
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(json.dumps(entry, sort_keys=True) + "\n")
            self._handle.flush()
            os.fsync(self._handle.fileno())
        except OSError as exc:
            raise CheckpointError(
                f"cannot write sweep checkpoint {self.path!r}: {exc}"
            ) from exc

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
