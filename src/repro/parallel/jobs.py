"""Picklable job specifications and the worker entry point.

A :class:`SweepJob` is pure data: the scheduling problem round-tripped
through the ``.sys`` text format (:mod:`repro.ir.systemio`), the period
candidate to evaluate, and the execution policy (timeout, attempt
number, optional fault injection).  Workers reconstruct the live
:class:`repro.api.Problem` from the text — parsed once per worker and
memoized — so nothing crosses the process boundary except strings,
numbers, and plain containers.

:func:`run_jobs` is the function a :class:`concurrent.futures.
ProcessPoolExecutor` executes: it runs a chunk of jobs back to back and
returns one :class:`JobResult` per job.  Failures never propagate as
exceptions — a job that raises (or exceeds its timeout) yields a result
record with ``ok=False`` and the error text, so one bad candidate cannot
abort a sweep.  Per-job timeouts are enforced with ``SIGALRM`` where the
platform provides it (Unix main threads); elsewhere the timeout is
recorded but not enforced.

The ``fault`` field deliberately injects failures so the engine's (and
the scheduling service's) retry, timeout, and crash-recovery paths stay
testable without contriving a workload that crashes the scheduler.  The
directive grammar is ``KIND[:ARG]``:

===================== =================================================
directive             effect at the injection point
===================== =================================================
``raise[:MSG]``       raise ``RuntimeError(MSG)`` (default message
                      ``"injected fault"``)
``sleep:SECONDS``     stall for ``SECONDS`` in one blocking sleep
``hang:SECONDS``      stall for ``SECONDS`` in short slices — a stuck
                      job that keeps "running" until a deadline or
                      watchdog gives up on it
``exit:CODE``         ``os._exit(CODE)`` — kill the hosting process
                      without cleanup, simulating a hard worker crash
``corrupt-journal``   append an unreadable garbage line to the journal
                      in scope (no-op when none is), exercising the
                      torn-record tolerance of
                      :meth:`repro.parallel.checkpoint.SweepJournal.load`
===================== =================================================

An unknown directive is rejected with a stable ``SPEC``-coded
:class:`repro.errors.SpecificationError` at parse time — never silently
ignored — so a typo in a chaos-test plan fails the test instead of
quietly testing nothing.  :class:`FaultPlan` schedules one directive
onto the Nth unit of work of a run (see the scheduling service's
fault-injection harness, docs/service.md).
"""

from __future__ import annotations

import os
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

from ..core.periods import PeriodAssignment
from ..core.scheduler import ModuloSystemScheduler
from ..errors import SpecificationError
from ..obs import Tracer
from ..obs.metrics import CANDIDATE_SECONDS
from ..resources.assignment import ResourceAssignment
from ..scheduling.forces import area_weights

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from types import FrameType

    from ..api import Problem


class JobTimeout(Exception):
    """Raised inside a worker when a job exceeds its time budget."""


@dataclass(frozen=True)
class SweepJob:
    """One schedulable unit of a design-space exploration, as plain data.

    Attributes:
        job_id: Caller-chosen identity, echoed on the result record.
        problem_text: The problem in ``.sys`` form
            (:func:`repro.api.dumps_problem`).
        periods: Candidate period assignment as ``(type, period)`` pairs
            in the candidate's own order; ignored for local jobs.
        local: Schedule the traditional all-local baseline instead of
            the global assignment (used by ``repro compare``).
        timeout: Per-job wall-clock budget in seconds (None = unlimited).
        fault: Optional fault-injection directive (see the module
            docstring table) for exercising failure handling.
        attempt: 1 for the first try, incremented by the engine's retry.
        use_scoreboard: Select reductions through the incremental
            scoreboard (the default) or the full candidate rescan
            (``repro sweep --no-scoreboard``).
    """

    job_id: int
    problem_text: str
    periods: Tuple[Tuple[str, int], ...] = ()
    local: bool = False
    timeout: Optional[float] = None
    fault: Optional[str] = None
    attempt: int = 1
    use_scoreboard: bool = True


@dataclass
class JobResult:
    """Outcome of one job, shipped back from the worker as plain data."""

    job_id: int
    ok: bool
    area: Optional[float] = None
    iterations: int = 0
    wall_time: float = 0.0
    instance_counts: Dict[str, int] = field(default_factory=dict)
    error: Optional[str] = None
    #: Telemetry summary of the run (the ``SystemSchedule.telemetry``
    #: shape), mergeable via :func:`repro.obs.merge_telemetry`.
    telemetry: Dict[str, object] = field(default_factory=dict)
    worker_pid: int = 0
    attempt: int = 1


#: Per-worker memo of the last parsed problem text.  Sweeps ship the
#: same problem to every job, so one slot removes all repeated parsing
#: without growing with the number of distinct problems seen.
_problem_cache: List[Tuple[str, object]] = []


def _problem_for(text: str) -> "Problem":
    from ..api import loads_problem

    if _problem_cache and _problem_cache[0][0] == text:
        return _problem_cache[0][1]  # type: ignore[return-value]
    problem = loads_problem(text)
    _problem_cache[:] = [(text, problem)]
    return problem


@contextmanager
def _deadline(seconds: Optional[float]) -> Iterator[None]:
    """Raise :class:`JobTimeout` after ``seconds`` of wall time.

    Uses ``SIGALRM``; silently unenforced when the platform has no
    alarm signal or when not running in the main thread (signal
    handlers can only be installed there).
    """
    if (
        not seconds
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _on_alarm(signum: int, frame: "Optional[FrameType]") -> None:
        raise JobTimeout(f"job timed out after {seconds:g} s")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


#: Known fault directive kinds (the table in the module docstring).
FAULT_KINDS = ("raise", "sleep", "hang", "exit", "corrupt-journal")

#: How long one slice of a ``hang:`` stall sleeps; short enough that a
#: surrounding ``SIGALRM`` deadline or watchdog observes the hang fast.
_HANG_SLICE_SECONDS = 0.05

#: The garbage ``corrupt-journal`` appends: its own line (trailing
#: newline, so durable neighbours stay parseable) of invalid UTF-8 that
#: no JSONL reader can mistake for a record.
_JOURNAL_GARBAGE = b'\x00\xfe\xff{"corrupt-journal": torn \x80\n'


def parse_fault(fault: str) -> Tuple[str, str]:
    """Split and validate a fault directive into ``(kind, arg)``.

    Unknown kinds and malformed arguments raise a ``SPEC``-coded
    :class:`~repro.errors.SpecificationError` — a directive is either
    valid or an error, never a silent no-op.
    """
    kind, _, arg = fault.partition(":")
    if kind not in FAULT_KINDS:
        raise SpecificationError(
            f"unknown fault directive {fault!r}; known kinds: "
            f"{', '.join(FAULT_KINDS)}"
        )
    if kind in ("sleep", "hang"):
        try:
            seconds = float(arg) if arg else 1.0
        except ValueError:
            raise SpecificationError(
                f"fault directive {fault!r}: {kind} needs a number of "
                f"seconds, got {arg!r}"
            ) from None
        if seconds < 0:
            raise SpecificationError(
                f"fault directive {fault!r}: seconds must be >= 0"
            )
    elif kind == "exit":
        try:
            int(arg) if arg else 1
        except ValueError:
            raise SpecificationError(
                f"fault directive {fault!r}: exit needs an integer "
                f"status code, got {arg!r}"
            ) from None
    elif kind == "corrupt-journal" and arg:
        raise SpecificationError(
            f"fault directive {fault!r}: corrupt-journal takes no argument"
        )
    return kind, arg


def inject_fault(
    fault: Optional[str], *, journal_path: Optional[str] = None
) -> None:
    """Apply a fault-injection directive (no-op for ``None``).

    ``journal_path`` is the journal in scope at the injection point (a
    sweep checkpoint or job journal); only ``corrupt-journal`` uses it,
    appending one unreadable garbage line so the crash-tolerant loader
    is exercised.  Without a journal in scope ``corrupt-journal``
    degrades to a no-op — there is nothing to corrupt.
    """
    if fault is None:
        return
    kind, arg = parse_fault(fault)
    if kind == "raise":
        raise RuntimeError(arg or "injected fault")
    if kind == "sleep":
        time.sleep(float(arg) if arg else 1.0)
        return
    if kind == "hang":
        deadline = time.monotonic() + (float(arg) if arg else 1.0)
        while time.monotonic() < deadline:
            time.sleep(
                min(_HANG_SLICE_SECONDS, max(0.0, deadline - time.monotonic()))
            )
        return
    if kind == "exit":
        os._exit(int(arg) if arg else 1)
    if kind == "corrupt-journal":
        if journal_path is not None:
            with open(journal_path, "ab") as handle:
                handle.write(_JOURNAL_GARBAGE)
                handle.flush()
                os.fsync(handle.fileno())
        return


@dataclass(frozen=True)
class FaultPlan:
    """A fault directive aimed at specific units of work of a run.

    The plan fires ``directive`` on the ``target``-th through
    ``target + count - 1``-th unit (1-based) of whatever sequence the
    consumer counts — the scheduling service counts job *attempt
    starts* across the server's lifetime, so ``exit:1@1`` kills the
    server during the first attempt and a restarted server (counting
    from 1 again, but normally started without the plan) resumes clean.

    The string form is ``DIRECTIVE@N`` or ``DIRECTIVE@NxC``
    (``hang:5@2``, ``exit:1@3x2``); a plain ``DIRECTIVE`` targets the
    first unit.
    """

    directive: str
    target: int = 1
    count: int = 1

    def __post_init__(self) -> None:
        parse_fault(self.directive)  # reject unknown directives eagerly
        if self.target < 1:
            raise SpecificationError(
                f"fault plan target must be >= 1, got {self.target}"
            )
        if self.count < 1:
            raise SpecificationError(
                f"fault plan count must be >= 1, got {self.count}"
            )

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse ``DIRECTIVE[@N[xC]]`` into a plan."""
        directive, _, where = spec.partition("@")
        target, count = 1, 1
        if where:
            head, _, tail = where.partition("x")
            try:
                target = int(head)
                if tail:
                    count = int(tail)
            except ValueError:
                raise SpecificationError(
                    f"fault plan {spec!r}: expected DIRECTIVE[@N[xC]]"
                ) from None
        return cls(directive=directive, target=target, count=count)

    def spec(self) -> str:
        """The string form :meth:`parse` accepts (round-trips)."""
        text = f"{self.directive}@{self.target}"
        if self.count != 1:
            text += f"x{self.count}"
        return text

    def fault_for(self, index: int) -> Optional[str]:
        """The directive for the ``index``-th unit (1-based), or None."""
        if self.target <= index < self.target + self.count:
            return self.directive
        return None


def run_job(job: SweepJob) -> JobResult:
    """Execute one job; always returns a record, never raises."""
    started = time.perf_counter()
    try:
        with _deadline(job.timeout):
            inject_fault(job.fault)
            problem = _problem_for(job.problem_text)
            tracer = Tracer()
            scheduler = ModuloSystemScheduler(
                problem.library,
                weights=area_weights(problem.library),
                tracer=tracer,
                use_scoreboard=job.use_scoreboard,
            )
            if job.local:
                result = scheduler.schedule(
                    problem.system,
                    ResourceAssignment.all_local(problem.library),
                )
            else:
                result = scheduler.schedule(
                    problem.system,
                    problem.assignment,
                    PeriodAssignment(dict(job.periods)),
                )
        wall = time.perf_counter() - started
        telemetry = dict(result.telemetry)
        # The candidate's end-to-end latency joins the run's histograms
        # so the sweep-level merge can report per-candidate quantiles.
        tracer.observe(CANDIDATE_SECONDS, wall)
        telemetry["histograms"] = tracer.metrics.histograms_dict()
        return JobResult(
            job_id=job.job_id,
            ok=True,
            area=result.total_area(),
            iterations=result.iterations,
            wall_time=wall,
            instance_counts=result.instance_counts(),
            telemetry=telemetry,
            worker_pid=os.getpid(),
            attempt=job.attempt,
        )
    except JobTimeout as exc:
        return _failure(job, str(exc), started)
    except Exception as exc:  # noqa: BLE001 - isolate any candidate failure
        return _failure(job, f"{type(exc).__name__}: {exc}", started)


def _failure(job: SweepJob, error: str, started: float) -> JobResult:
    return JobResult(
        job_id=job.job_id,
        ok=False,
        error=error,
        wall_time=time.perf_counter() - started,
        worker_pid=os.getpid(),
        attempt=job.attempt,
    )


def run_jobs(jobs: List[SweepJob]) -> List[JobResult]:
    """Worker entry point: run a chunk of jobs, one record each."""
    return [run_job(job) for job in jobs]
