"""Picklable job specifications and the worker entry point.

A :class:`SweepJob` is pure data: the scheduling problem round-tripped
through the ``.sys`` text format (:mod:`repro.ir.systemio`), the period
candidate to evaluate, and the execution policy (timeout, attempt
number, optional fault injection).  Workers reconstruct the live
:class:`repro.api.Problem` from the text — parsed once per worker and
memoized — so nothing crosses the process boundary except strings,
numbers, and plain containers.

:func:`run_jobs` is the function a :class:`concurrent.futures.
ProcessPoolExecutor` executes: it runs a chunk of jobs back to back and
returns one :class:`JobResult` per job.  Failures never propagate as
exceptions — a job that raises (or exceeds its timeout) yields a result
record with ``ok=False`` and the error text, so one bad candidate cannot
abort a sweep.  Per-job timeouts are enforced with ``SIGALRM`` where the
platform provides it (Unix main threads); elsewhere the timeout is
recorded but not enforced.

The ``fault`` field deliberately injects failures (``"raise[:msg]"``
raises, ``"sleep:SECONDS"`` stalls before scheduling) so the engine's
retry and failure paths stay testable without contriving a workload
that crashes the scheduler.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..core.periods import PeriodAssignment
from ..core.scheduler import ModuloSystemScheduler
from ..obs import Tracer
from ..obs.metrics import CANDIDATE_SECONDS
from ..resources.assignment import ResourceAssignment
from ..scheduling.forces import area_weights


class JobTimeout(Exception):
    """Raised inside a worker when a job exceeds its time budget."""


@dataclass(frozen=True)
class SweepJob:
    """One schedulable unit of a design-space exploration, as plain data.

    Attributes:
        job_id: Caller-chosen identity, echoed on the result record.
        problem_text: The problem in ``.sys`` form
            (:func:`repro.api.dumps_problem`).
        periods: Candidate period assignment as ``(type, period)`` pairs
            in the candidate's own order; ignored for local jobs.
        local: Schedule the traditional all-local baseline instead of
            the global assignment (used by ``repro compare``).
        timeout: Per-job wall-clock budget in seconds (None = unlimited).
        fault: Optional fault injection — ``"raise[:msg]"`` or
            ``"sleep:SECONDS"`` — for exercising failure handling.
        attempt: 1 for the first try, incremented by the engine's retry.
        use_scoreboard: Select reductions through the incremental
            scoreboard (the default) or the full candidate rescan
            (``repro sweep --no-scoreboard``).
    """

    job_id: int
    problem_text: str
    periods: Tuple[Tuple[str, int], ...] = ()
    local: bool = False
    timeout: Optional[float] = None
    fault: Optional[str] = None
    attempt: int = 1
    use_scoreboard: bool = True


@dataclass
class JobResult:
    """Outcome of one job, shipped back from the worker as plain data."""

    job_id: int
    ok: bool
    area: Optional[float] = None
    iterations: int = 0
    wall_time: float = 0.0
    instance_counts: Dict[str, int] = field(default_factory=dict)
    error: Optional[str] = None
    #: Telemetry summary of the run (the ``SystemSchedule.telemetry``
    #: shape), mergeable via :func:`repro.obs.merge_telemetry`.
    telemetry: Dict[str, object] = field(default_factory=dict)
    worker_pid: int = 0
    attempt: int = 1


#: Per-worker memo of the last parsed problem text.  Sweeps ship the
#: same problem to every job, so one slot removes all repeated parsing
#: without growing with the number of distinct problems seen.
_problem_cache: List[Tuple[str, object]] = []


def _problem_for(text: str):
    from ..api import loads_problem

    if _problem_cache and _problem_cache[0][0] == text:
        return _problem_cache[0][1]
    problem = loads_problem(text)
    _problem_cache[:] = [(text, problem)]
    return problem


@contextmanager
def _deadline(seconds: Optional[float]) -> Iterator[None]:
    """Raise :class:`JobTimeout` after ``seconds`` of wall time.

    Uses ``SIGALRM``; silently unenforced when the platform has no
    alarm signal or when not running in the main thread (signal
    handlers can only be installed there).
    """
    if (
        not seconds
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _on_alarm(signum, frame):
        raise JobTimeout(f"job timed out after {seconds:g} s")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def inject_fault(fault: Optional[str]) -> None:
    """Apply a fault-injection directive (no-op for ``None``)."""
    if fault is None:
        return
    kind, _, arg = fault.partition(":")
    if kind == "raise":
        raise RuntimeError(arg or "injected fault")
    if kind == "sleep":
        time.sleep(float(arg or 1.0))
        return
    raise ValueError(f"unknown fault directive {fault!r}")


def run_job(job: SweepJob) -> JobResult:
    """Execute one job; always returns a record, never raises."""
    started = time.perf_counter()
    try:
        with _deadline(job.timeout):
            inject_fault(job.fault)
            problem = _problem_for(job.problem_text)
            tracer = Tracer()
            scheduler = ModuloSystemScheduler(
                problem.library,
                weights=area_weights(problem.library),
                tracer=tracer,
                use_scoreboard=job.use_scoreboard,
            )
            if job.local:
                result = scheduler.schedule(
                    problem.system,
                    ResourceAssignment.all_local(problem.library),
                )
            else:
                result = scheduler.schedule(
                    problem.system,
                    problem.assignment,
                    PeriodAssignment(dict(job.periods)),
                )
        wall = time.perf_counter() - started
        telemetry = dict(result.telemetry)
        # The candidate's end-to-end latency joins the run's histograms
        # so the sweep-level merge can report per-candidate quantiles.
        tracer.observe(CANDIDATE_SECONDS, wall)
        telemetry["histograms"] = tracer.metrics.histograms_dict()
        return JobResult(
            job_id=job.job_id,
            ok=True,
            area=result.total_area(),
            iterations=result.iterations,
            wall_time=wall,
            instance_counts=result.instance_counts(),
            telemetry=telemetry,
            worker_pid=os.getpid(),
            attempt=job.attempt,
        )
    except JobTimeout as exc:
        return _failure(job, str(exc), started)
    except Exception as exc:  # noqa: BLE001 - isolate any candidate failure
        return _failure(job, f"{type(exc).__name__}: {exc}", started)


def _failure(job: SweepJob, error: str, started: float) -> JobResult:
    return JobResult(
        job_id=job.job_id,
        ok=False,
        error=error,
        wall_time=time.perf_counter() - started,
        worker_pid=os.getpid(),
        attempt=job.attempt,
    )


def run_jobs(jobs: List[SweepJob]) -> List[JobResult]:
    """Worker entry point: run a chunk of jobs, one record each."""
    return [run_job(job) for job in jobs]
