"""Bounded retry with exponential backoff.

A :class:`RetryPolicy` is the declarative half of the failure story the
engine and the scheduling service share: *how often* a failed unit of
work may be re-attempted and *how long* to wait before each re-attempt.
The policy itself is pure data — it never sleeps — so callers decide
where the delay is spent (the :class:`~repro.parallel.engine.
ExplorationEngine` sleeps between candidate re-dispatches, the
:class:`~repro.service.jobstore.JobStore` between job attempts) and
tests can assert the exact delay sequence without waiting it out.

The delay before attempt ``n`` (``n >= 2``; attempt 1 is the original
try and never waits) is::

    min(max_delay, base_delay * multiplier ** (n - 2))

Backoff is deterministic — no jitter — because every consumer in this
package is either a single coordinator (no thundering herd to spread)
or a test that asserts byte-identical journals; see docs/robustness.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = ["RetryPolicy", "DEFAULT_RETRY_POLICY"]


@dataclass(frozen=True)
class RetryPolicy:
    """How many attempts a unit of work gets, and the waits between them.

    Attributes:
        max_attempts: Total tries including the first one; ``1`` means
            "never retry".
        base_delay: Seconds before the first retry (attempt 2).
        multiplier: Geometric growth factor of successive delays.
        max_delay: Ceiling every delay is clamped to.
    """

    max_attempts: int = 3
    base_delay: float = 0.1
    multiplier: float = 2.0
    max_delay: float = 30.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0:
            raise ValueError(f"base_delay must be >= 0, got {self.base_delay}")
        if self.multiplier < 1.0:
            raise ValueError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if self.max_delay < self.base_delay:
            raise ValueError(
                f"max_delay {self.max_delay} must be >= base_delay "
                f"{self.base_delay}"
            )

    @property
    def retries(self) -> int:
        """Re-attempts after the first try (the engine's ``retries``)."""
        return self.max_attempts - 1

    def allows(self, attempt: int) -> bool:
        """Whether attempt number ``attempt`` (1-based) may run at all."""
        return 1 <= attempt <= self.max_attempts

    def delay_for(self, attempt: int) -> float:
        """Seconds to wait before running attempt ``attempt`` (1-based).

        Attempt 1 is the original try: no wait.  Attempts beyond
        ``max_attempts`` are never run, so asking for their delay is a
        caller bug and raises.
        """
        if attempt < 1 or attempt > self.max_attempts:
            raise ValueError(
                f"attempt {attempt} outside 1..{self.max_attempts}"
            )
        if attempt == 1:
            return 0.0
        return min(
            self.max_delay, self.base_delay * self.multiplier ** (attempt - 2)
        )

    def delays(self) -> Iterator[float]:
        """The full delay sequence, one entry per attempt."""
        for attempt in range(1, self.max_attempts + 1):
            yield self.delay_for(attempt)

    def total_delay(self) -> float:
        """Worst-case seconds spent waiting across every retry."""
        return sum(self.delays())


#: The policy the scheduling service applies when none is configured:
#: three attempts, 100 ms then 200 ms of backoff.
DEFAULT_RETRY_POLICY = RetryPolicy()
