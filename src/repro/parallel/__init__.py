"""Parallel design-space exploration (docs/parallel.md).

The ``repro.parallel`` subsystem evaluates many scheduling candidates
for one problem at once:

* :class:`ExplorationEngine` — fans candidates over a process pool
  (``workers=1`` keeps the exact in-process serial path), prunes
  candidates with admissible area lower bounds, retries crashed or
  timed-out jobs once, and merges per-worker telemetry into one
  ``repro profile``-compatible summary (:mod:`repro.parallel.engine`);
* :class:`SweepJob` / :class:`JobResult` — the picklable job protocol;
  problems travel as ``.sys`` text, results as plain data
  (:mod:`repro.parallel.jobs`);
* :class:`SweepJournal` — crash-safe JSONL checkpoints; a sweep given a
  ``checkpoint`` path journals every finished candidate durably and can
  resume exactly-once after being killed mid-run
  (:mod:`repro.parallel.checkpoint`).

``repro sweep --workers N`` and ``repro compare --workers N`` are the
CLI front ends; ``repro sweep --resume PATH`` enables checkpointing.
"""

from .checkpoint import CheckpointError, SweepJournal, load_jsonl_tolerant
from .engine import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_PRUNED,
    CandidateResult,
    CompareOutcome,
    ExplorationEngine,
    ExplorationError,
    SweepInterrupted,
    SweepOutcome,
)
from .jobs import (
    FaultPlan,
    JobResult,
    JobTimeout,
    SweepJob,
    inject_fault,
    parse_fault,
    run_job,
    run_jobs,
)
from .retry import DEFAULT_RETRY_POLICY, RetryPolicy

__all__ = [
    "DEFAULT_RETRY_POLICY",
    "STATUS_FAILED",
    "STATUS_OK",
    "STATUS_PRUNED",
    "CandidateResult",
    "CheckpointError",
    "CompareOutcome",
    "ExplorationEngine",
    "ExplorationError",
    "FaultPlan",
    "JobResult",
    "JobTimeout",
    "RetryPolicy",
    "SweepInterrupted",
    "SweepJob",
    "SweepJournal",
    "SweepOutcome",
    "inject_fault",
    "load_jsonl_tolerant",
    "parse_fault",
    "run_job",
    "run_jobs",
]
