"""Parallel design-space exploration (docs/parallel.md).

The ``repro.parallel`` subsystem evaluates many scheduling candidates
for one problem at once:

* :class:`ExplorationEngine` — fans candidates over a process pool
  (``workers=1`` keeps the exact in-process serial path), prunes
  candidates with admissible area lower bounds, retries crashed or
  timed-out jobs once, and merges per-worker telemetry into one
  ``repro profile``-compatible summary (:mod:`repro.parallel.engine`);
* :class:`SweepJob` / :class:`JobResult` — the picklable job protocol;
  problems travel as ``.sys`` text, results as plain data
  (:mod:`repro.parallel.jobs`).

``repro sweep --workers N`` and ``repro compare --workers N`` are the
CLI front ends.
"""

from .engine import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_PRUNED,
    CandidateResult,
    CompareOutcome,
    ExplorationEngine,
    ExplorationError,
    SweepOutcome,
)
from .jobs import JobResult, JobTimeout, SweepJob, run_job, run_jobs

__all__ = [
    "STATUS_FAILED",
    "STATUS_OK",
    "STATUS_PRUNED",
    "CandidateResult",
    "CompareOutcome",
    "ExplorationEngine",
    "ExplorationError",
    "JobResult",
    "JobTimeout",
    "SweepJob",
    "SweepOutcome",
    "run_job",
    "run_jobs",
]
