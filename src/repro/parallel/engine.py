"""Parallel design-space exploration with bound-based pruning.

The :class:`ExplorationEngine` evaluates many scheduling candidates for
one problem — today period assignments from the §4 grid (eqs. 2-3),
structurally anything expressible as a :class:`repro.parallel.jobs.
SweepJob` — and returns every outcome plus a merged telemetry summary.

Two orthogonal accelerations:

* **Parallelism** — candidates fan out over a
  ``ProcessPoolExecutor``; the problem travels as ``.sys`` text, results
  stream back unordered, and per-worker telemetry merges into one
  aggregate (:func:`repro.obs.merge_telemetry`).  ``workers=1`` keeps
  everything in-process with a single shared scheduler — the exact
  serial path the CLI always had.
* **Pruning** — each candidate's admissible area lower bound
  (:func:`repro.analysis.bounds.area_lower_bound`) is computed up
  front (no scheduling needed); candidates are dispatched cheapest
  bound first, and a candidate whose bound meets or exceeds the best
  area found so far is skipped.  Admissibility makes this sound: a
  skipped candidate can tie the incumbent but never beat it, so the
  best *area* matches the exhaustive sweep exactly.  Skipped and
  failed candidates are always counted and reported — no silent caps.

Failure policy: a candidate that raises, times out, or loses its worker
process is retried once (configurable) and then recorded as a failed
candidate; the rest of the sweep is unaffected, and no candidate is
lost or evaluated twice.

The winner tie-break is deterministic and documented: among equal-area
schedules, the lexicographically smallest ``sorted(periods.items())``
wins.  With pruning enabled an equal-area (never better) candidate may
be skipped before evaluation; run with pruning disabled when the exact
tie-break over the full space matters.  See docs/parallel.md.
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Tuple

from ..analysis.bounds import area_lower_bound
from ..core.periods import PeriodAssignment
from ..core.scheduler import ModuloSystemScheduler
from ..errors import ReproError
from ..obs import get_logger, merge_telemetry
from ..obs.events import EVENT_CANDIDATE, EVENT_PRUNE
from ..obs.metrics import CANDIDATE_SECONDS, INCUMBENT_AREA, merge_gauge_summary
from ..obs.tracer import as_tracer
from ..resources.assignment import ResourceAssignment
from ..scheduling.forces import area_weights
from .checkpoint import SweepJournal
from .jobs import JobTimeout, SweepJob, _deadline, inject_fault, run_jobs
from .retry import RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..analysis.static.certificate import Certificate
    from ..api import Problem
    from ..core.result import SystemSchedule
    from ..obs.tracer import NullTracer, Tracer

_log = get_logger(__name__)

LexKey = Tuple[Tuple[str, int], ...]

#: Candidate states a sweep can report.
STATUS_OK = "ok"
STATUS_PRUNED = "pruned"
STATUS_FAILED = "failed"


class ExplorationError(ReproError):
    """A mandatory exploration job failed after all retries."""

    code = "SWEEP"


class SweepInterrupted(Exception):
    """A sweep stopped at a candidate boundary via ``stop_when``.

    Control flow, not failure: raised *before* the next candidate is
    evaluated or journaled, so an abandoned sweep (a timed-out service
    attempt, a cancelled job) never races a successor on the shared
    checkpoint journal."""


def _lexkey(periods: Dict[str, int]) -> LexKey:
    return tuple(sorted(periods.items()))


def _journal_int(value: object) -> int:
    """A journaled JSON number as an int (missing/odd values → 0)."""
    return int(value) if isinstance(value, (int, float)) else 0


def _journal_float(value: object) -> float:
    """A journaled JSON number as a float (missing/odd values → 0.0)."""
    return float(value) if isinstance(value, (int, float)) else 0.0


@dataclass
class _Spec:
    """Internal dispatch record for one candidate."""

    order: int
    periods: Dict[str, int]
    lexkey: LexKey
    bound: float
    local: bool = False
    attempt: int = 1
    fault: Optional[str] = None


@dataclass
class CandidateResult:
    """Outcome of one candidate of a sweep.

    ``restored`` marks a candidate whose outcome was replayed from a
    sweep checkpoint journal instead of being evaluated in this run.
    """

    order: int
    periods: Dict[str, int]
    bound: float
    status: str
    area: Optional[float] = None
    iterations: int = 0
    wall_time: float = 0.0
    instance_counts: Dict[str, int] = field(default_factory=dict)
    error: Optional[str] = None
    attempts: int = 0
    worker_pid: int = 0
    restored: bool = False
    telemetry: Dict[str, object] = field(default_factory=dict, repr=False)

    @property
    def lexkey(self) -> LexKey:
        return _lexkey(self.periods)


@dataclass
class SweepOutcome:
    """Every candidate outcome of a sweep plus the aggregate telemetry.

    ``results`` is in the original candidate order; ``telemetry`` is
    render-compatible with ``repro profile``
    (:func:`repro.obs.render_profile`) and additionally carries the
    engine's own accounting (``candidates_*``, ``workers``,
    ``sweep_wall_time``, ``worker_summaries``).
    """

    results: List[CandidateResult]
    best: Optional[CandidateResult]
    telemetry: Dict[str, object]

    def _count(self, status: str) -> int:
        return sum(1 for record in self.results if record.status == status)

    @property
    def evaluated(self) -> int:
        return self._count(STATUS_OK)

    @property
    def pruned(self) -> int:
        return self._count(STATUS_PRUNED)

    @property
    def failed(self) -> int:
        return self._count(STATUS_FAILED)

    @property
    def best_periods(self) -> Optional[Dict[str, int]]:
        return None if self.best is None else dict(self.best.periods)

    @property
    def best_area(self) -> Optional[float]:
        return None if self.best is None else self.best.area


@dataclass
class CompareOutcome:
    """Global and local runs of one problem, evaluated side by side."""

    global_result: CandidateResult
    local_result: CandidateResult
    telemetry: Dict[str, object]


class ExplorationEngine:
    """Fans scheduling candidates over a worker pool with pruning.

    Args:
        problem: The :class:`repro.api.Problem` whose design space is
            explored.
        workers: Worker process count; 1 (the default) evaluates
            in-process with one shared scheduler — identical to the
            plain serial sweep.
        prune: Skip candidates whose area lower bound meets or exceeds
            the best area found so far (sound; see module docstring).
        interval_bounds: Strengthen the pruning bound with the
            residue-pressure intervals of :mod:`repro.analysis.absint`
            (the :func:`area_lower_bound` default).  ``False`` falls
            back to the plain averaging bound — kept for A/B
            benchmarks (``benchmarks/bench_absint.py``); both settings
            are admissible, so the best area is identical either way.
        chunk_size: Jobs batched per worker call; raise above 1 when
            single candidates schedule in well under ~50 ms and IPC
            starts to dominate.
        inflight_factor: Outstanding chunks kept per worker.  Lower
            values prune harder (dispatch sees fresher incumbents),
            higher values keep workers busier.
        timeout: Per-job wall-clock budget in seconds (enforced via
            ``SIGALRM`` where available).
        retries: How often a crashed/raised/timed-out candidate is
            re-dispatched before being recorded as failed.
        retry_policy: Optional :class:`repro.parallel.retry.RetryPolicy`
            governing both the attempt ceiling (it overrides
            ``retries``) and the exponential backoff slept before each
            re-dispatch; without one, retries are immediate (the
            historical behavior).
        checkpoint: Optional path of a JSONL sweep journal
            (:class:`repro.parallel.checkpoint.SweepJournal`).  Every
            finished candidate is durably appended before its result is
            surfaced; if the file already holds records (a previous run
            of the same sweep died), those candidates are skipped
            exactly-once and the incumbent area bound is restored so
            pruning stays sound.  See docs/robustness.md.
        tracer: Optional :class:`repro.obs.Tracer`; receives one event
            per candidate and the merged worker counters.
        fault_for: Test hook — maps a candidate's period dict to a
            fault directive for its job (see
            :mod:`repro.parallel.jobs`), or None.
        stop_when: Optional cooperative-cancellation probe, polled
            before each candidate is evaluated (and journaled); when it
            returns True the sweep raises :class:`SweepInterrupted`
            without touching the checkpoint journal again.
    """

    def __init__(
        self,
        problem: "Problem",
        *,
        workers: int = 1,
        prune: bool = True,
        interval_bounds: bool = True,
        chunk_size: int = 1,
        inflight_factor: int = 2,
        timeout: Optional[float] = None,
        retries: int = 1,
        retry_policy: Optional[RetryPolicy] = None,
        checkpoint: Optional[str] = None,
        tracer: "Optional[Tracer | NullTracer]" = None,
        use_scoreboard: bool = True,
        fault_for: Optional[Callable[[Dict[str, int]], Optional[str]]] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> None:
        if workers < 1:
            raise ExplorationError(f"workers must be >= 1, got {workers}")
        if chunk_size < 1:
            raise ExplorationError(f"chunk_size must be >= 1, got {chunk_size}")
        self.problem = problem
        self.workers = workers
        self.prune = prune
        self.interval_bounds = interval_bounds
        self.chunk_size = chunk_size
        self.inflight_factor = max(1, inflight_factor)
        self.timeout = timeout
        self.retry_policy = retry_policy
        if retry_policy is not None:
            self.retries = retry_policy.retries
        else:
            self.retries = max(0, retries)
        self.checkpoint = checkpoint
        self.tracer = as_tracer(tracer)
        self.use_scoreboard = use_scoreboard
        self.fault_for = fault_for
        self.stop_when = stop_when
        self._problem_text: Optional[str] = None
        self._journal: Optional[SweepJournal] = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def sweep(
        self,
        candidates: Iterable[PeriodAssignment],
        *,
        on_result: Optional[Callable[[CandidateResult], None]] = None,
    ) -> SweepOutcome:
        """Evaluate period-assignment candidates; returns every outcome.

        ``on_result`` is called in the parent process, in completion
        order, once per candidate (evaluated, pruned, or failed) — but
        not for candidates replayed from a checkpoint journal.
        """
        started = time.perf_counter()
        specs: List[_Spec] = []
        for order, candidate in enumerate(candidates):
            periods = dict(candidate.as_dict)
            bound = area_lower_bound(
                self.problem.system,
                self.problem.library,
                self.problem.assignment,
                candidate,
                use_intervals=self.interval_bounds,
            )
            specs.append(
                _Spec(
                    order=order,
                    periods=periods,
                    lexkey=_lexkey(periods),
                    bound=bound,
                    fault=self.fault_for(periods) if self.fault_for else None,
                )
            )

        journal: Optional[SweepJournal] = None
        restored: List[CandidateResult] = []
        initial_best: Optional[float] = None
        if self.checkpoint is not None:
            journal = SweepJournal(self.checkpoint)
            journaled = journal.load()
            initial_best = SweepJournal.best_area(journaled)
            fresh: List[_Spec] = []
            for spec in specs:
                entry = journaled.get(spec.lexkey)
                if entry is None:
                    fresh.append(spec)
                else:
                    restored.append(self._restored_record(spec, entry))
            specs = fresh
            if restored:
                _log.info(
                    "sweep checkpoint %s: restored %d candidate(s), "
                    "%d left to run",
                    journal.path,
                    len(restored),
                    len(specs),
                )

        if self.prune:
            # Cheapest admissible bound first: good areas surface early,
            # which is what makes the >= skip rule bite.
            specs.sort(key=lambda spec: (spec.bound, spec.lexkey))
        self._journal = journal
        try:
            records = self._run(
                specs, on_result, self.prune, initial_best=initial_best
            )
        finally:
            self._journal = None
            if journal is not None:
                journal.close()
        records.extend(restored)
        records.sort(key=lambda record: record.order)
        best = self._best_of(records)
        telemetry = self._aggregate(records, time.perf_counter() - started)
        telemetry["candidates_restored"] = len(restored)
        return SweepOutcome(results=records, best=best, telemetry=telemetry)

    def compare(
        self,
        *,
        on_result: Optional[Callable[[CandidateResult], None]] = None,
    ) -> CompareOutcome:
        """Schedule the global assignment and the all-local baseline.

        Both runs are mandatory, so a failure after retries raises
        :class:`ExplorationError` instead of producing a failed record.
        """
        started = time.perf_counter()
        periods = dict(self.problem.periods.as_dict)
        specs = [
            _Spec(
                order=0,
                periods=periods,
                lexkey=_lexkey(periods),
                bound=0.0,
                fault=self.fault_for(periods) if self.fault_for else None,
            ),
            _Spec(
                order=1,
                periods={},
                lexkey=(),
                bound=0.0,
                local=True,
                fault=self.fault_for({}) if self.fault_for else None,
            ),
        ]
        records = self._run(specs, on_result, prune=False)
        records.sort(key=lambda record: record.order)
        for record in records:
            if record.status != STATUS_OK:
                raise ExplorationError(
                    f"{'local' if record.periods == {} else 'global'} "
                    f"comparison run failed: {record.error}"
                )
        telemetry = self._aggregate(records, time.perf_counter() - started)
        return CompareOutcome(
            global_result=records[0],
            local_result=records[1],
            telemetry=telemetry,
        )

    def certify_best(
        self,
        outcome: SweepOutcome,
        *,
        offset_model: str = "deployed",
        pools: Optional[Dict[str, int]] = None,
    ) -> "Optional[Tuple[SystemSchedule, Certificate]]":
        """Re-schedule the sweep's incumbent best and statically certify it.

        Sweep workers only ship area/instance summaries back (results
        cross process boundaries as records, not schedules), so the
        winning period assignment is re-scheduled in-process — the
        scheduler is deterministic, the candidate was already proven
        schedulable — and handed to :func:`repro.analysis.static.certify`.

        Returns ``(SystemSchedule, Certificate)``, or ``None`` when the
        sweep produced no schedulable candidate.
        """
        if outcome.best is None:
            return None
        from ..analysis.static import certify

        scheduler = ModuloSystemScheduler(
            self.problem.library,
            weights=area_weights(self.problem.library),
            tracer=self.tracer,
            use_scoreboard=self.use_scoreboard,
        )
        result = scheduler.schedule(
            self.problem.system,
            self.problem.assignment,
            PeriodAssignment(dict(outcome.best.periods)),
        )
        certificate = certify(
            result,
            pools=pools,
            offset_model=offset_model,
            tracer=self.tracer,
        )
        return result, certificate

    # ------------------------------------------------------------------
    # Serial path
    # ------------------------------------------------------------------
    def _run(
        self,
        specs: List[_Spec],
        on_result: Optional[Callable[[CandidateResult], None]],
        prune: bool,
        initial_best: Optional[float] = None,
    ) -> List[CandidateResult]:
        if self.workers <= 1:
            return self._run_serial(specs, on_result, prune, initial_best)
        return self._run_parallel(specs, on_result, prune, initial_best)

    def _check_stop(self) -> None:
        if self.stop_when is not None and self.stop_when():
            raise SweepInterrupted("sweep stopped by stop_when")

    def _run_serial(
        self,
        specs: List[_Spec],
        on_result: Optional[Callable[[CandidateResult], None]],
        prune: bool,
        initial_best: Optional[float] = None,
    ) -> List[CandidateResult]:
        scheduler = ModuloSystemScheduler(
            self.problem.library,
            weights=area_weights(self.problem.library),
            tracer=self.tracer,
            use_scoreboard=self.use_scoreboard,
        )
        records: List[CandidateResult] = []
        best_area: Optional[float] = initial_best
        for spec in specs:
            self._check_stop()
            if prune and best_area is not None and spec.bound >= best_area:
                record = self._pruned_record(spec)
            else:
                record = self._evaluate_inline(scheduler, spec)
                while (
                    record.status == STATUS_FAILED
                    and spec.attempt <= self.retries
                ):
                    spec = replace(spec, attempt=spec.attempt + 1)
                    self._backoff(spec.attempt)
                    record = self._evaluate_inline(scheduler, spec)
                if record.status == STATUS_OK and (
                    best_area is None or record.area < best_area
                ):
                    best_area = record.area
                    if self.tracer.enabled:
                        self.tracer.set_gauge(INCUMBENT_AREA, best_area)
            records.append(record)
            self._emit(record, on_result)
        return records

    def _evaluate_inline(
        self, scheduler: ModuloSystemScheduler, spec: _Spec
    ) -> CandidateResult:
        started = time.perf_counter()
        try:
            with _deadline(self.timeout):
                inject_fault(spec.fault)
                if spec.local:
                    result = scheduler.schedule(
                        self.problem.system,
                        ResourceAssignment.all_local(self.problem.library),
                    )
                else:
                    result = scheduler.schedule(
                        self.problem.system,
                        self.problem.assignment,
                        PeriodAssignment(dict(spec.periods)),
                    )
        except JobTimeout as exc:
            return self._failed_record(spec, str(exc), started)
        except Exception as exc:  # noqa: BLE001 - candidate isolation
            return self._failed_record(
                spec, f"{type(exc).__name__}: {exc}", started
            )
        wall = time.perf_counter() - started
        telemetry = dict(result.telemetry)
        # With a shared in-process tracer the per-run counter/instrument
        # snapshots are cumulative; drop them here and overlay the tracer
        # totals once in _aggregate.
        telemetry["counters"] = {}
        telemetry.pop("gauges", None)
        telemetry.pop("histograms", None)
        if self.tracer.enabled:
            self.tracer.observe(CANDIDATE_SECONDS, wall)
        return CandidateResult(
            order=spec.order,
            periods=dict(spec.periods),
            bound=spec.bound,
            status=STATUS_OK,
            area=result.total_area(),
            iterations=result.iterations,
            wall_time=wall,
            instance_counts=result.instance_counts(),
            attempts=spec.attempt,
            worker_pid=os.getpid(),
            telemetry=telemetry,
        )

    # ------------------------------------------------------------------
    # Parallel path
    # ------------------------------------------------------------------
    def _run_parallel(
        self,
        specs: List[_Spec],
        on_result: Optional[Callable[[CandidateResult], None]],
        prune: bool,
        initial_best: Optional[float] = None,
    ) -> List[CandidateResult]:
        records: List[CandidateResult] = []
        pending = deque(specs)
        inflight: Dict[object, List[_Spec]] = {}
        max_inflight = self.workers * self.inflight_factor
        best_area: Optional[float] = initial_best

        def finish(record: CandidateResult) -> None:
            nonlocal best_area
            if record.status == STATUS_OK and (
                best_area is None or record.area < best_area
            ):
                best_area = record.area
                if self.tracer.enabled:
                    self.tracer.set_gauge(INCUMBENT_AREA, best_area)
            records.append(record)
            self._emit(record, on_result)

        def handle_failure(
            spec: _Spec, error: str, requeue: List[_Spec], wall: float = 0.0
        ) -> None:
            if spec.attempt <= self.retries:
                _log.warning(
                    "candidate %s failed (attempt %d, retrying): %s",
                    spec.periods,
                    spec.attempt,
                    error,
                )
                requeue.append(replace(spec, attempt=spec.attempt + 1))
                return
            _log.warning(
                "candidate %s failed permanently after %d attempts: %s",
                spec.periods,
                spec.attempt,
                error,
            )
            finish(
                CandidateResult(
                    order=spec.order,
                    periods=dict(spec.periods),
                    bound=spec.bound,
                    status=STATUS_FAILED,
                    error=error,
                    wall_time=wall,
                    attempts=spec.attempt,
                )
            )

        def next_chunk() -> List[_Spec]:
            chunk: List[_Spec] = []
            while pending and len(chunk) < self.chunk_size:
                spec = pending.popleft()
                if (
                    prune
                    and not spec.local
                    and best_area is not None
                    and spec.bound >= best_area
                ):
                    finish(self._pruned_record(spec))
                    continue
                chunk.append(spec)
            return chunk

        pool = ProcessPoolExecutor(max_workers=self.workers)

        def dispatch() -> None:
            nonlocal pool
            while pending and len(inflight) < max_inflight:
                chunk = next_chunk()
                if not chunk:
                    continue
                jobs = [self._job_for(spec) for spec in chunk]
                try:
                    future = pool.submit(run_jobs, jobs)
                except BrokenProcessPool:
                    pool.shutdown(wait=False)
                    pool = ProcessPoolExecutor(max_workers=self.workers)
                    future = pool.submit(run_jobs, jobs)
                inflight[future] = chunk

        try:
            dispatch()
            while inflight:
                self._check_stop()
                done, _ = wait(set(inflight), return_when=FIRST_COMPLETED)
                requeue: List[_Spec] = []
                broken = False
                for future in done:
                    chunk = inflight.pop(future)
                    try:
                        results = future.result()
                    except BrokenProcessPool as exc:
                        broken = True
                        for spec in chunk:
                            handle_failure(
                                spec, f"worker crashed: {exc}", requeue
                            )
                        continue
                    except Exception as exc:  # noqa: BLE001
                        for spec in chunk:
                            handle_failure(
                                spec,
                                f"{type(exc).__name__}: {exc}",
                                requeue,
                            )
                        continue
                    for spec, result in zip(chunk, results):
                        if result.ok:
                            finish(
                                CandidateResult(
                                    order=spec.order,
                                    periods=dict(spec.periods),
                                    bound=spec.bound,
                                    status=STATUS_OK,
                                    area=result.area,
                                    iterations=result.iterations,
                                    wall_time=result.wall_time,
                                    instance_counts=dict(
                                        result.instance_counts
                                    ),
                                    attempts=result.attempt,
                                    worker_pid=result.worker_pid,
                                    telemetry=dict(result.telemetry),
                                )
                            )
                        else:
                            handle_failure(
                                spec,
                                result.error or "unknown worker failure",
                                requeue,
                                wall=result.wall_time,
                            )
                if broken:
                    # A broken pool kills every in-flight job; reclaim
                    # their specs so none are lost, then start fresh.
                    for chunk in inflight.values():
                        for spec in chunk:
                            handle_failure(spec, "worker pool broken", requeue)
                    inflight.clear()
                    pool.shutdown(wait=False)
                    pool = ProcessPoolExecutor(max_workers=self.workers)
                # Retries go to the front so transient failures resolve
                # before the sweep moves on.
                if requeue:
                    self._backoff(max(spec.attempt for spec in requeue))
                pending.extendleft(reversed(requeue))
                dispatch()
        finally:
            pool.shutdown(wait=False)
        return records

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _backoff(self, attempt: int) -> None:
        """Sleep the policy's delay before re-running attempt ``attempt``."""
        policy = self.retry_policy
        if policy is None or attempt <= 1:
            return
        delay = policy.delay_for(min(attempt, policy.max_attempts))
        if delay > 0:
            time.sleep(delay)

    def _job_for(self, spec: _Spec) -> SweepJob:
        if self._problem_text is None:
            from ..api import dumps_problem

            self._problem_text = dumps_problem(self.problem)
        return SweepJob(
            job_id=spec.order,
            problem_text=self._problem_text,
            periods=tuple(spec.periods.items()),
            local=spec.local,
            timeout=self.timeout,
            fault=spec.fault,
            attempt=spec.attempt,
            use_scoreboard=self.use_scoreboard,
        )

    def _failed_record(
        self, spec: _Spec, error: str, started: float
    ) -> CandidateResult:
        return CandidateResult(
            order=spec.order,
            periods=dict(spec.periods),
            bound=spec.bound,
            status=STATUS_FAILED,
            error=error,
            wall_time=time.perf_counter() - started,
            attempts=spec.attempt,
            worker_pid=os.getpid(),
        )

    def _pruned_record(self, spec: _Spec) -> CandidateResult:
        return CandidateResult(
            order=spec.order,
            periods=dict(spec.periods),
            bound=spec.bound,
            status=STATUS_PRUNED,
        )

    @staticmethod
    def _restored_record(spec: _Spec, entry: Dict[str, object]) -> CandidateResult:
        """Replay a journaled outcome onto this run's candidate spec."""
        area = entry.get("area")
        counts = entry.get("instance_counts")
        error = entry.get("error")
        return CandidateResult(
            order=spec.order,
            periods=dict(spec.periods),
            bound=spec.bound,
            status=str(entry["status"]),
            area=float(area) if isinstance(area, (int, float)) else None,
            iterations=_journal_int(entry.get("iterations")),
            wall_time=_journal_float(entry.get("wall_time")),
            instance_counts={
                str(k): int(v)
                for k, v in (counts if isinstance(counts, dict) else {}).items()
            },
            error=None if error is None else str(error),
            attempts=_journal_int(entry.get("attempts")),
            restored=True,
        )

    def _emit(
        self,
        record: CandidateResult,
        on_result: Optional[Callable[[CandidateResult], None]],
    ) -> None:
        # Journal before surfacing: a crash inside the callback (or
        # anywhere later) must never lose a completed candidate.
        if self._journal is not None:
            self._journal.append(record)
        if self.tracer.enabled:
            if record.status == STATUS_PRUNED:
                self.tracer.event(
                    EVENT_PRUNE,
                    periods=dict(record.periods),
                    bound=record.bound,
                )
            self.tracer.event(
                EVENT_CANDIDATE,
                periods=dict(record.periods),
                status=record.status,
                area=record.area,
                bound=record.bound,
            )
        if on_result is not None:
            on_result(record)

    @staticmethod
    def _best_of(
        records: List[CandidateResult],
    ) -> Optional[CandidateResult]:
        """Deterministic winner: smallest area, then smallest lexkey."""
        best: Optional[CandidateResult] = None
        for record in records:
            if record.status != STATUS_OK:
                continue
            if (
                best is None
                or record.area < best.area
                or (record.area == best.area and record.lexkey < best.lexkey)
            ):
                best = record
        return best

    def _aggregate(
        self, records: List[CandidateResult], elapsed: float
    ) -> Dict[str, object]:
        telemetry = merge_telemetry(
            record.telemetry for record in records if record.telemetry
        )
        if self.workers <= 1 and self.tracer.enabled:
            # Serial runs share the engine tracer; its registry already
            # holds the sweep-total counts and instrument values.
            telemetry["counters"] = self.tracer.counters.as_dict()
            gauges = self.tracer.metrics.gauges_dict()
            if gauges:
                telemetry["gauges"] = gauges
            histograms = self.tracer.metrics.histograms_dict()
            if histograms:
                telemetry["histograms"] = histograms
        elif self.workers > 1 and self.tracer.enabled:
            # Mirror the merged worker instruments into the engine tracer
            # so its registry reflects the whole sweep.
            for name, value in telemetry["counters"].items():
                self.tracer.counters.inc(name, value)
            registry = self.tracer.metrics
            for name, summary in (telemetry.get("histograms") or {}).items():
                registry.histogram(name).merge_summary(summary)
            engine_gauges = registry.gauges_dict()
            if engine_gauges:
                merged_gauges = telemetry.setdefault("gauges", {})
                for name, summary in engine_gauges.items():
                    if name in merged_gauges:
                        merge_gauge_summary(merged_gauges[name], summary)
                    else:
                        merged_gauges[name] = summary
        worker_jobs: Dict[int, int] = {}
        worker_wall: Dict[int, float] = {}
        for record in records:
            if record.status != STATUS_OK or not record.worker_pid:
                continue
            pid = record.worker_pid
            worker_jobs[pid] = worker_jobs.get(pid, 0) + 1
            worker_wall[pid] = worker_wall.get(pid, 0.0) + record.wall_time
        workers_seen: Dict[int, Dict[str, object]] = {
            pid: {"jobs": worker_jobs[pid], "wall_time": worker_wall[pid]}
            for pid in worker_jobs
        }
        telemetry.update(
            {
                "sweep_wall_time": elapsed,
                "workers": self.workers,
                "candidates_total": len(records),
                "candidates_evaluated": sum(
                    1 for r in records if r.status == STATUS_OK
                ),
                "candidates_pruned": sum(
                    1 for r in records if r.status == STATUS_PRUNED
                ),
                "candidates_failed": sum(
                    1 for r in records if r.status == STATUS_FAILED
                ),
                "worker_summaries": workers_seen,
            }
        )
        return telemetry
