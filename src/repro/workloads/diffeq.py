"""HAL differential equation solver benchmark (main loop body).

The classic HLS benchmark from Paulin & Knight's HAL system: one forward
Euler step of ``y'' + 3xy' + 3y = 0``::

    x1 = x + dx
    u1 = u - (3 * x) * (u * dx) - (3 * y) * dx
    y1 = y + u * dx
    c  = x1 < a

Six multiplications, two additions, two subtractions and one comparison.
The paper substitutes the comparator by a subtraction (§7), limiting the
operation types to addition, subtraction and multiplication; pass
``substitute_compare=False`` to keep the original comparison.
"""

from __future__ import annotations

from ..ir.dfg import DataFlowGraph
from ..ir.operation import OpKind

#: Critical path with add/sub latency 1, multiply latency 2:
#: (3*x) -> (3x)*(u dx) -> sub -> sub = 2 + 2 + 1 + 1.
CRITICAL_PATH = 6


def differential_equation(
    name: str = "diffeq", *, substitute_compare: bool = True
) -> DataFlowGraph:
    """Build the diffeq main-loop dataflow graph.

    Args:
        name: Graph name.
        substitute_compare: Replace the loop-exit comparison by a
            subtraction, as the paper's evaluation does.
    """
    graph = DataFlowGraph(name=name)
    graph.add("m1", OpKind.MUL, name="3*x")
    graph.add("m2", OpKind.MUL, name="u*dx")
    graph.add("m3", OpKind.MUL, name="3x*udx")
    graph.add("m4", OpKind.MUL, name="3*y")
    graph.add("m5", OpKind.MUL, name="3y*dx")
    graph.add("m6", OpKind.MUL, name="u*dx'")
    graph.add("s1", OpKind.SUB, name="u-3xudx")
    graph.add("s2", OpKind.SUB, name="u1")
    graph.add("a1", OpKind.ADD, name="x1")
    graph.add("a2", OpKind.ADD, name="y1")
    exit_kind = OpKind.SUB if substitute_compare else OpKind.CMP
    graph.add("c1", exit_kind, name="x1?a")
    graph.add_edges(
        [
            ("m1", "m3"),
            ("m2", "m3"),
            ("m3", "s1"),
            ("s1", "s2"),
            ("m4", "m5"),
            ("m5", "s2"),
            ("m6", "a2"),
            ("a1", "c1"),
        ]
    )
    graph.validate()
    return graph
