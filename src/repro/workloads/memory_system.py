"""Shared-memory workload: processes contending for a memory port.

The paper's considered resources "range from simple adders, memories or
busses to more complex (pipelined or multicycle) functions" (§1.1).  This
workload exercises that range: a *multicycle, non-pipelined* memory port
(latency 2, busy both cycles) serves LOAD/STORE operations of several
independent processes — DMA-style movers and a compute process — with the
port globally shared through the modulo method.
"""

from __future__ import annotations

from typing import Tuple

from ..ir.dfg import DataFlowGraph
from ..ir.operation import OpKind
from ..ir.process import Block, Process, SystemSpec
from ..resources.library import ResourceLibrary
from ..resources.types import resource_type


def memory_library() -> ResourceLibrary:
    """Adder, pipelined multiplier, and a 2-cycle non-pipelined memory port."""
    return ResourceLibrary(
        [
            resource_type("adder", [OpKind.ADD], latency=1, area=1.0),
            resource_type(
                "multiplier",
                [OpKind.MUL],
                latency=2,
                area=4.0,
                pipelined=True,
                initiation_interval=1,
            ),
            resource_type(
                "memport",
                [OpKind.LOAD, OpKind.STORE],
                latency=2,
                area=6.0,
                pipelined=False,
            ),
        ]
    )


def dma_process(name: str, words: int = 2, deadline: int = 12) -> Process:
    """A mover: ``words`` load/store pairs, serialized per word."""
    graph = DataFlowGraph(name=f"{name}-dma")
    for w in range(words):
        load = graph.add(f"ld{w}", OpKind.LOAD)
        store = graph.add(f"st{w}", OpKind.STORE)
        graph.add_edge(load.op_id, store.op_id)
    process = Process(name=name)
    process.add_block(Block(name="move", graph=graph, deadline=deadline))
    return process


def compute_process(name: str, deadline: int = 12) -> Process:
    """Load two operands, multiply-accumulate, store the result."""
    graph = DataFlowGraph(name=f"{name}-mac")
    a = graph.add("ld_a", OpKind.LOAD)
    b = graph.add("ld_b", OpKind.LOAD)
    mul = graph.add("mul", OpKind.MUL)
    acc = graph.add("acc", OpKind.ADD)
    out = graph.add("st", OpKind.STORE)
    graph.add_edge(a.op_id, mul.op_id)
    graph.add_edge(b.op_id, mul.op_id)
    graph.add_edge(mul.op_id, acc.op_id)
    graph.add_edge(acc.op_id, out.op_id)
    process = Process(name=name)
    process.add_block(Block(name="mac", graph=graph, deadline=deadline))
    return process


def shared_memory_system(
    movers: int = 2, deadline: int = 12
) -> Tuple[SystemSpec, ResourceLibrary]:
    """Build the shared-memory system: ``movers`` DMA processes + 1 compute."""
    library = memory_library()
    system = SystemSpec(name="shared-memory")
    for index in range(movers):
        system.add_process(dma_process(f"dma{index}", deadline=deadline))
    system.add_process(compute_process("calc", deadline=deadline))
    system.validate(library.latency_of)
    return system, library
