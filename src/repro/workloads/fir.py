"""Parametric FIR filter workloads.

An N-tap finite impulse response filter computes ``y = sum(c_i * x_i)``:
N multiplications feeding an accumulation network of N-1 additions, either
as a balanced tree (short critical path, high add concurrency) or as a
chain (long critical path, low concurrency).  Useful for sweeping the
sharing benefit against workload shape.
"""

from __future__ import annotations

from typing import List

from ..errors import GraphError
from ..ir.dfg import DataFlowGraph
from ..ir.operation import OpKind


def fir_filter(taps: int = 8, *, adder: str = "tree", name: str = "") -> DataFlowGraph:
    """Build an N-tap FIR dataflow graph.

    Args:
        taps: Number of taps (>= 2): one multiplication per tap.
        adder: ``"tree"`` for a balanced adder tree, ``"chain"`` for a
            linear accumulator chain.
        name: Graph name (defaults to ``fir<taps>-<adder>``).
    """
    if taps < 2:
        raise GraphError(f"a FIR filter needs >= 2 taps, got {taps}")
    if adder not in ("tree", "chain"):
        raise GraphError(f"adder must be 'tree' or 'chain', got {adder!r}")
    graph = DataFlowGraph(name=name or f"fir{taps}-{adder}")
    products: List[str] = []
    for index in range(taps):
        op_id = f"m{index}"
        graph.add(op_id, OpKind.MUL, name=f"c{index}*x{index}")
        products.append(op_id)

    counter = 0
    if adder == "chain":
        acc = products[0]
        for nxt in products[1:]:
            op_id = f"a{counter}"
            counter += 1
            graph.add(op_id, OpKind.ADD)
            graph.add_edge(acc, op_id)
            graph.add_edge(nxt, op_id)
            acc = op_id
    else:
        level = products
        while len(level) > 1:
            nxt_level: List[str] = []
            for i in range(0, len(level) - 1, 2):
                op_id = f"a{counter}"
                counter += 1
                graph.add(op_id, OpKind.ADD)
                graph.add_edge(level[i], op_id)
                graph.add_edge(level[i + 1], op_id)
                nxt_level.append(op_id)
            if len(level) % 2:
                nxt_level.append(level[-1])
            level = nxt_level
    graph.validate()
    return graph
