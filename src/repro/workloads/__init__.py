"""Benchmark workloads: standard HLS graphs and generators."""

from .conditional import mode_switching_filter
from .corpus import (
    CORPUS_FAMILIES,
    CorpusInstance,
    corpus_library,
    corpus_system,
    filter_bank,
    io_kernel,
    ode_chain,
)
from .diffeq import differential_equation
from .ewf import elliptic_wave_filter, elliptic_wave_filter_split
from .fft import fft_butterfly_network
from .fir import fir_filter
from .iir import iir_biquad_cascade
from .lattice import ar_lattice
from .memory_system import (
    compute_process,
    dma_process,
    memory_library,
    shared_memory_system,
)
from .paper_system import (
    DEADLINES,
    PERIOD,
    paper_assignment,
    paper_periods,
    paper_system,
)
from .random_dfg import random_dfg

__all__ = [
    "CORPUS_FAMILIES",
    "CorpusInstance",
    "DEADLINES",
    "PERIOD",
    "ar_lattice",
    "corpus_library",
    "corpus_system",
    "differential_equation",
    "elliptic_wave_filter",
    "elliptic_wave_filter_split",
    "fft_butterfly_network",
    "filter_bank",
    "fir_filter",
    "iir_biquad_cascade",
    "io_kernel",
    "compute_process",
    "dma_process",
    "memory_library",
    "mode_switching_filter",
    "ode_chain",
    "paper_assignment",
    "paper_periods",
    "paper_system",
    "random_dfg",
    "shared_memory_system",
]
