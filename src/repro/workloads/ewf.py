"""Fifth-order elliptic wave filter benchmark (reconstructed).

The paper evaluates on the elliptic wave filter of the 1992 high-level
synthesis workshop benchmarks: 34 operations (26 additions, 8
multiplications) with a critical path of 17 control steps under unit-delay
adders and two-cycle pipelined multipliers.  The original benchmark files
are not available offline and the paper does not reprint the edge list, so
this module encodes a *reconstructed* wave-filter graph with exactly those
published properties (see DESIGN.md, "Reconstructed parameters"):

* 26 additions and 8 multiplications, 34 operations total;
* critical path of 17 steps (add latency 1, multiply latency 2);
* a ladder topology: a long adder chain through two multiplier sections,
  with multiplier taps and adder side-branches of varying mobility, like
  the real filter's second-order sections feeding the central adder chain.

The reconstruction preserves what the evaluation depends on: the op-type
mix, the critical path, and a realistic mobility distribution.
"""

from __future__ import annotations

from ..ir.dfg import DataFlowGraph
from ..ir.operation import OpKind

#: Operation kinds of the 34 nodes.
_ADDS = [f"add{i}" for i in range(1, 27)]
_MULS = [f"mul{i}" for i in range(1, 9)]

#: Precedence edges of the reconstructed filter.
_EDGES = [
    # Central adder chain through two multiplier sections (critical path,
    # 13 additions + 2 multiplications = 17 steps).
    ("add1", "add2"),
    ("add2", "add3"),
    ("add3", "mul1"),
    ("mul1", "add4"),
    ("add4", "add5"),
    ("add5", "add6"),
    ("add6", "add7"),
    ("add7", "mul2"),
    ("mul2", "add8"),
    ("add8", "add9"),
    ("add9", "add10"),
    ("add10", "add11"),
    ("add11", "add12"),
    ("add12", "add13"),
    # Multiplier taps off the chain (filter coefficients).
    ("add1", "mul3"),
    ("mul3", "add5"),
    ("add2", "mul4"),
    ("mul4", "add7"),
    ("add4", "mul5"),
    ("mul5", "add9"),
    ("add6", "mul6"),
    ("mul6", "add11"),
    ("add8", "mul7"),
    ("mul7", "add12"),
    ("add9", "mul8"),
    ("mul8", "add13"),
    # Input combiners and tap accumulators (adder side branches).
    ("add14", "add2"),
    ("add15", "add3"),
    ("add16", "mul1"),
    ("add17", "add4"),
    ("add18", "add6"),
    ("add19", "add8"),
    ("add20", "add10"),
    ("add21", "add11"),
    ("add22", "add23"),
    ("add23", "add9"),
    ("mul3", "add24"),
    ("add24", "add6"),
    ("mul5", "add25"),
    ("add25", "add10"),
    ("mul6", "add26"),
    ("add26", "add13"),
]

#: Critical path of the filter with add latency 1, multiply latency 2.
CRITICAL_PATH = 17


def elliptic_wave_filter(name: str = "ewf") -> DataFlowGraph:
    """Build the reconstructed elliptic wave filter dataflow graph.

    Returns a fresh graph each call (graphs are mutable).
    """
    graph = DataFlowGraph(name=name)
    for op_id in _ADDS:
        graph.add(op_id, OpKind.ADD)
    for op_id in _MULS:
        graph.add(op_id, OpKind.MUL)
    graph.add_edges(_EDGES)
    graph.validate()
    return graph


def elliptic_wave_filter_split(name: str = "ewf"):
    """The filter as two serialized blocks (front / back section).

    The paper supports any block composition (conditions C1/C2): here the
    filter is cut behind the first multiplier section.  Values crossing
    the cut live in registers between the serialized block executions, so
    cross-cut edges disappear from the precedence graphs; blocks of one
    process never overlap, letting them share per-process resources like
    alternation branches (eq. 9).

    Returns ``(front, back)`` dataflow graphs.
    """
    front_ops = {
        "add1", "add2", "add3", "mul1", "add4", "add5", "add6", "add7",
        "mul3", "mul4", "add14", "add15", "add16", "add17", "add18",
        "add22", "add23", "add24",
    }
    full = elliptic_wave_filter(name=name)
    front = DataFlowGraph(name=f"{name}-front")
    back = DataFlowGraph(name=f"{name}-back")
    for op in full:
        target = front if op.op_id in front_ops else back
        target.add(op.op_id, op.kind)
    for src, dst in full.edges:
        if (src in front_ops) == (dst in front_ops):
            target = front if src in front_ops else back
            target.add_edge(src, dst)
    front.validate()
    back.validate()
    return front, back
