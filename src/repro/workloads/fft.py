"""Radix-2 FFT butterfly-network workload.

A decimation-in-time FFT over ``n`` points (power of two) has
``log2(n)`` stages of ``n/2`` butterflies.  Modeling complex arithmetic
on real units, each butterfly contributes four multiplications (complex
twiddle product) and six additions/subtractions; the network is wide and
shallow — the opposite corner of the workload space from the serial
lattice filter — which makes it a stress test for the smoothing part of
force-directed scheduling.
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import GraphError
from ..ir.dfg import DataFlowGraph
from ..ir.operation import OpKind


def _butterfly(
    graph: DataFlowGraph,
    tag: str,
    a: Tuple[str, str],
    b: Tuple[str, str],
) -> Tuple[Tuple[str, str], Tuple[str, str]]:
    """One butterfly: (a + w*b, a - w*b) on complex values.

    ``a`` and ``b`` are (real-producer, imag-producer) pairs; empty
    strings denote primary inputs.  Returns the output pairs.
    """
    def feed(src: str, dst: str) -> None:
        if src:
            graph.add_edge(src, dst)

    # Complex twiddle product w*b: four multiplications, one sub, one add.
    ops = {}
    for name in ("mrr", "mii", "mri", "mir"):
        op = graph.add(f"{tag}_{name}", OpKind.MUL)
        ops[name] = op.op_id
    feed(b[0], ops["mrr"])
    feed(b[1], ops["mii"])
    feed(b[0], ops["mri"])
    feed(b[1], ops["mir"])
    prod_re = graph.add(f"{tag}_pr", OpKind.SUB).op_id  # rr - ii
    graph.add_edge(ops["mrr"], prod_re)
    graph.add_edge(ops["mii"], prod_re)
    prod_im = graph.add(f"{tag}_pi", OpKind.ADD).op_id  # ri + ir
    graph.add_edge(ops["mri"], prod_im)
    graph.add_edge(ops["mir"], prod_im)

    # Outputs: a + wb and a - wb (real and imaginary parts).
    out_top_re = graph.add(f"{tag}_tr", OpKind.ADD).op_id
    out_top_im = graph.add(f"{tag}_ti", OpKind.ADD).op_id
    out_bot_re = graph.add(f"{tag}_br", OpKind.SUB).op_id
    out_bot_im = graph.add(f"{tag}_bi", OpKind.SUB).op_id
    for dst in (out_top_re, out_bot_re):
        feed(a[0], dst)
        graph.add_edge(prod_re, dst)
    for dst in (out_top_im, out_bot_im):
        feed(a[1], dst)
        graph.add_edge(prod_im, dst)
    return (out_top_re, out_top_im), (out_bot_re, out_bot_im)


def fft_butterfly_network(points: int = 8, *, name: str = "") -> DataFlowGraph:
    """Build the butterfly network of a ``points``-point radix-2 FFT."""
    if points < 2 or points & (points - 1):
        raise GraphError(f"points must be a power of two >= 2, got {points}")
    graph = DataFlowGraph(name=name or f"fft{points}")
    # One (re, im) producer pair per lane; inputs are primary (empty ids).
    lanes: List[Tuple[str, str]] = [("", "") for _ in range(points)]
    stage = 0
    span = 1
    while span < points:
        for base in range(0, points, span * 2):
            for offset in range(span):
                top = base + offset
                bottom = base + offset + span
                tag = f"s{stage}b{top}"
                lanes[top], lanes[bottom] = _butterfly(
                    graph, tag, lanes[top], lanes[bottom]
                )
        span *= 2
        stage += 1
    graph.validate()
    return graph
