"""Autoregressive (AR) lattice filter workload.

A parametric all-pole lattice filter: stage ``i`` transforms the forward
and backward signals::

    f_i   = f_{i+1} - k_i * b_i        (1 mul, 1 sub)
    b_i+1 = b_i + k_i * f_i            (1 mul, 1 add)

Each stage contributes two multiplications, one subtraction and one
addition, with a serial dependence through the forward path — a workload
with markedly less parallelism than the wave filter, useful to exercise
sharing when per-process utilization is low.
"""

from __future__ import annotations

from ..errors import GraphError
from ..ir.dfg import DataFlowGraph
from ..ir.operation import OpKind


def ar_lattice(stages: int = 4, *, name: str = "") -> DataFlowGraph:
    """Build an AR lattice filter graph with the given number of stages."""
    if stages < 1:
        raise GraphError(f"a lattice filter needs >= 1 stage, got {stages}")
    graph = DataFlowGraph(name=name or f"lattice{stages}")
    prev_f = None  # op producing f_{i+1}; None = primary input
    prev_b = None  # op producing b_i of this stage
    for i in range(stages):
        mul_f = graph.add(f"mf{i}", OpKind.MUL, name=f"k{i}*b{i}")
        sub_f = graph.add(f"sf{i}", OpKind.SUB, name=f"f{i}")
        mul_b = graph.add(f"mb{i}", OpKind.MUL, name=f"k{i}*f{i}")
        add_b = graph.add(f"ab{i}", OpKind.ADD, name=f"b{i + 1}")
        if prev_b is not None:
            graph.add_edge(prev_b.op_id, mul_f.op_id)
            graph.add_edge(prev_b.op_id, add_b.op_id)
        if prev_f is not None:
            graph.add_edge(prev_f.op_id, sub_f.op_id)
        graph.add_edge(mul_f.op_id, sub_f.op_id)
        graph.add_edge(sub_f.op_id, mul_b.op_id)
        graph.add_edge(mul_b.op_id, add_b.op_id)
        prev_f = sub_f
        prev_b = add_b
    graph.validate()
    return graph
