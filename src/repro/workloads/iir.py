"""IIR biquad-cascade workload.

A cascade of direct-form-I biquad sections::

    y = b0*x + b1*x1 + b2*x2 - a1*y1 - a2*y2

Each section contributes five multiplications, two additions and two
subtractions; sections are chained through their outputs, giving a
medium-depth, multiplication-heavy workload (the delayed taps x1/x2/y1/y2
are primary inputs, as state registers live outside the block).
"""

from __future__ import annotations

from ..errors import GraphError
from ..ir.dfg import DataFlowGraph
from ..ir.operation import OpKind


def iir_biquad_cascade(sections: int = 2, *, name: str = "") -> DataFlowGraph:
    """Build a cascade of ``sections`` direct-form-I biquads."""
    if sections < 1:
        raise GraphError(f"need >= 1 section, got {sections}")
    graph = DataFlowGraph(name=name or f"iir{sections}")
    prev_out = ""  # producer of the previous section's output
    for s in range(sections):
        muls = {}
        for tap in ("b0", "b1", "b2", "a1", "a2"):
            muls[tap] = graph.add(f"s{s}_{tap}", OpKind.MUL).op_id
        # The b0 tap consumes the previous section's output.
        if prev_out:
            graph.add_edge(prev_out, muls["b0"])
        ff1 = graph.add(f"s{s}_ff1", OpKind.ADD).op_id  # b0x + b1x1
        graph.add_edge(muls["b0"], ff1)
        graph.add_edge(muls["b1"], ff1)
        ff2 = graph.add(f"s{s}_ff2", OpKind.ADD).op_id  # ... + b2x2
        graph.add_edge(ff1, ff2)
        graph.add_edge(muls["b2"], ff2)
        fb1 = graph.add(f"s{s}_fb1", OpKind.SUB).op_id  # ... - a1y1
        graph.add_edge(ff2, fb1)
        graph.add_edge(muls["a1"], fb1)
        fb2 = graph.add(f"s{s}_fb2", OpKind.SUB).op_id  # ... - a2y2
        graph.add_edge(fb1, fb2)
        graph.add_edge(muls["a2"], fb2)
        prev_out = fb2
    graph.validate()
    return graph
