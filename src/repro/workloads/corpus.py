"""Generated scenario corpus: many-process systems with sparse sharing.

The paper's experiment (§7) couples a handful of processes through a
pure global assignment.  Scaling the coupled scheduler to *hundreds* of
processes needs workloads of that many processes whose sharing pattern
is realistic: each process is 4-5 small blocks drawn from *distinct*
classes of three parameterized families, each block sharing one "heavy"
functional-unit class with the other processes of its class's cluster,
while the ADD/SUB glue stays local.

Families (several variants each, eleven disjoint sharing clusters):

* **Filter banks** — FIR channel blocks, each ``taps`` heavy products
  feeding a balanced accumulation tree.  Variants share pipelined
  multipliers, shift-add (CSD) shifters, barrel-shift scalers, or
  PN-code correlator (XOR) taps.
* **ODE solver chains** — state-chain blocks of serialized integration
  steps (evaluate, accumulate, error tap), the long-critical-path /
  low-concurrency shape of explicit solvers.  Variants share dividers
  (implicit-step solves), step-acceptance comparators, sign
  normalizers, or saturation/flag-merge units.
* **I/O-timing-constrained kernels** — after Coussy et al. ("High-level
  synthesis under I/O Timing and Memory constraints"): transfer lane
  blocks of sequentialized input transfers, a compute ladder, and
  sequentialized output transfers, under a deliberately tight deadline
  so the transfer chains pin the schedule.  Variants share 2-cycle
  memory ports, single-cycle stream movers, or word packers.

A process's blocks all iterate under the process-wide maximum (the
coupled scheduler's per-process iteration bound), so multi-block
processes exercise the process-max coupling path, not just the global
sharing path.

Every instance is fully determined by ``(processes, seed)``: process
family assignment is round-robin (so cluster sizes stay balanced at any
process count) and per-process sizes/slacks are drawn from one seeded
:class:`random.Random`.  Sharing clusters are the per-variant process
sets; a cluster of fewer than two processes keeps its type local.

The sparse pattern is what makes the corpus a scoreboard stressor (see
docs/corpus.md): most commits perturb only local glue — the dirty cone
is a single entry — and a system-distribution bump of one cluster's
type never rescores the other ten clusters.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.periods import PeriodAssignment
from ..errors import GraphError
from ..ir.dfg import DataFlowGraph
from ..ir.operation import OpKind
from ..ir.process import Block, Process, SystemSpec
from ..resources.assignment import ResourceAssignment
from ..resources.library import ResourceLibrary
from ..resources.types import resource_type

__all__ = [
    "CORPUS_FAMILIES",
    "CorpusInstance",
    "corpus_library",
    "corpus_system",
    "filter_bank",
    "io_kernel",
    "ode_chain",
]

#: ``(family, variant)`` classes in round-robin assignment order, each
#: mapped to the resource type its cluster shares globally.  ADD/SUB
#: stay local glue everywhere, which leaves eleven disjoint heavy
#: operation kinds — eleven sharing clusters.
CORPUS_FAMILIES: Tuple[Tuple[str, str], ...] = (
    ("filter_bank", "multiplier"),
    ("ode_chain", "divider"),
    ("io_kernel", "memport"),
    ("filter_bank", "shifter"),
    ("ode_chain", "comparator"),
    ("io_kernel", "mover"),
    ("filter_bank", "scaler"),
    ("ode_chain", "normalizer"),
    ("io_kernel", "packer"),
    ("filter_bank", "correlator"),
    ("ode_chain", "saturator"),
)

#: Heavy operation kind(s) per shared type; disjoint so each cluster's
#: operations bind to exactly its own globally shared unit.
_HEAVY_KIND: Dict[str, OpKind] = {
    "multiplier": OpKind.MUL,
    "shifter": OpKind.SHL,
    "scaler": OpKind.SHR,
    "correlator": OpKind.XOR,
    "divider": OpKind.DIV,
    "comparator": OpKind.CMP,
    "normalizer": OpKind.NOT,
    "saturator": OpKind.OR,
    "memport": OpKind.LOAD,
    "mover": OpKind.MOV,
    "packer": OpKind.AND,
}

#: Authorization period per shared type (the memory port gets a longer
#: window: its 2-cycle busy occupancy needs the head room).
_PERIOD: Dict[str, int] = {
    "multiplier": 4,
    "shifter": 4,
    "scaler": 4,
    "correlator": 4,
    "divider": 4,
    "comparator": 4,
    "normalizer": 4,
    "saturator": 4,
    "memport": 6,
    "mover": 4,
    "packer": 4,
}


def corpus_library() -> ResourceLibrary:
    """Library of every functional-unit class the corpus families use."""
    return ResourceLibrary(
        [
            resource_type("adder", [OpKind.ADD], latency=1, area=1.0),
            resource_type("subtracter", [OpKind.SUB], latency=1, area=1.0),
            resource_type(
                "multiplier",
                [OpKind.MUL],
                latency=2,
                area=4.0,
                pipelined=True,
                initiation_interval=1,
            ),
            resource_type("shifter", [OpKind.SHL], latency=1, area=0.5),
            resource_type("scaler", [OpKind.SHR], latency=1, area=0.5),
            resource_type("correlator", [OpKind.XOR], latency=1, area=1.0),
            resource_type("divider", [OpKind.DIV], latency=2, area=6.0),
            resource_type("comparator", [OpKind.CMP], latency=1, area=1.0),
            resource_type("normalizer", [OpKind.NOT], latency=1, area=0.5),
            resource_type("saturator", [OpKind.OR], latency=1, area=1.0),
            resource_type(
                "memport",
                [OpKind.LOAD, OpKind.STORE],
                latency=2,
                area=6.0,
                pipelined=False,
            ),
            resource_type("mover", [OpKind.MOV], latency=1, area=2.0),
            resource_type("packer", [OpKind.AND], latency=1, area=1.0),
        ]
    )


# ----------------------------------------------------------------------
# Family graph builders
# ----------------------------------------------------------------------
def filter_bank(
    taps: int, *, heavy: OpKind = OpKind.MUL, name: str = ""
) -> DataFlowGraph:
    """One FIR channel: ``taps`` heavy products into a balanced add tree."""
    if taps < 2:
        raise GraphError(f"a filter bank channel needs >= 2 taps, got {taps}")
    graph = DataFlowGraph(name=name or f"fb{taps}")
    level: List[str] = []
    for index in range(taps):
        graph.add(f"t{index}", heavy, name=f"c{index}*x{index}")
        level.append(f"t{index}")
    counter = 0
    while len(level) > 1:
        next_level: List[str] = []
        for i in range(0, len(level) - 1, 2):
            op_id = f"a{counter}"
            counter += 1
            graph.add(op_id, OpKind.ADD)
            graph.add_edge(level[i], op_id)
            graph.add_edge(level[i + 1], op_id)
            next_level.append(op_id)
        if len(level) % 2:
            next_level.append(level[-1])
        level = next_level
    graph.validate()
    return graph


def ode_chain(
    stages: int, *, heavy: OpKind = OpKind.DIV, name: str = ""
) -> DataFlowGraph:
    """Serialized solver steps: evaluate, accumulate, and an error tap.

    Stage ``i`` computes ``f_i = heavy(y_{i-1})``, the new state
    ``y_i = y_{i-1} + f_i``, and an error tap ``e_i = f_i - y_i`` — a
    long serial critical path with a little per-stage concurrency,
    the characteristic shape of explicit integration chains.
    """
    if stages < 1:
        raise GraphError(f"an ODE chain needs >= 1 stage, got {stages}")
    graph = DataFlowGraph(name=name or f"ode{stages}")
    graph.add("y0", OpKind.ADD, name="initial state")
    state = "y0"
    for index in range(stages):
        f_id = f"f{index}"
        y_id = f"y{index + 1}"
        e_id = f"e{index}"
        graph.add(f_id, heavy, name=f"step {index}")
        graph.add(y_id, OpKind.ADD)
        graph.add(e_id, OpKind.SUB)
        graph.add_edge(state, f_id)
        graph.add_edge(state, y_id)
        graph.add_edge(f_id, y_id)
        graph.add_edge(f_id, e_id)
        graph.add_edge(y_id, e_id)
        state = y_id
    graph.validate()
    return graph


def io_kernel(
    words: int, *, heavy: OpKind = OpKind.LOAD, name: str = ""
) -> DataFlowGraph:
    """Sequential input transfers, a compute ladder, sequential outputs.

    The transfer operations are chained — an I/O bus delivers and
    accepts one word at a time — so under a tight deadline the two
    chains behave like the fixed I/O timing windows of Coussy et al.:
    the schedule of every transfer is pinned within a few steps.
    ``heavy`` is :data:`OpKind.LOAD` for memory-port kernels (stores
    use :data:`OpKind.STORE`, the same shared port) or
    :data:`OpKind.MOV` for stream-mover kernels (both directions).
    """
    if words < 2:
        raise GraphError(f"an I/O kernel needs >= 2 words, got {words}")
    store_kind = OpKind.STORE if heavy is OpKind.LOAD else heavy
    graph = DataFlowGraph(name=name or f"io{words}")
    loads: List[str] = []
    for index in range(words):
        op_id = f"in{index}"
        graph.add(op_id, heavy, name=f"read word {index}")
        if loads:
            graph.add_edge(loads[-1], op_id)
        loads.append(op_id)
    acc = None
    outs: List[str] = []
    for index in range(words):
        c_id = f"c{index}"
        graph.add(c_id, OpKind.ADD if index % 2 == 0 else OpKind.SUB)
        graph.add_edge(loads[index], c_id)
        if acc is not None:
            graph.add_edge(acc, c_id)
        acc = c_id
        out_id = f"out{index}"
        graph.add(out_id, store_kind, name=f"write word {index}")
        graph.add_edge(c_id, out_id)
        if outs:
            graph.add_edge(outs[-1], out_id)
        outs.append(out_id)
    graph.validate()
    return graph


# ----------------------------------------------------------------------
# System builder
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CorpusInstance:
    """One generated scenario: system, sharing pattern, periods, library."""

    name: str
    system: SystemSpec
    assignment: ResourceAssignment
    periods: PeriodAssignment
    library: ResourceLibrary


def _build_block(
    family: str,
    shared_type: str,
    name: str,
    slot: int,
    rng: random.Random,
    library: ResourceLibrary,
) -> Block:
    """One small block of the given class under its deadline."""
    heavy = _HEAVY_KIND[shared_type]
    if family == "filter_bank":
        graph = filter_bank(rng.randint(4, 6), heavy=heavy, name=f"{name}-fb{slot}")
        slack = rng.randint(3, 4)
        block_name = f"ch{slot}"
    elif family == "ode_chain":
        graph = ode_chain(rng.randint(2, 3), heavy=heavy, name=f"{name}-ode{slot}")
        slack = rng.randint(2, 3)
        block_name = f"st{slot}"
    else:  # io_kernel: tight slack — the transfer chains pin the timing
        graph = io_kernel(rng.randint(2, 3), heavy=heavy, name=f"{name}-io{slot}")
        slack = 2
        block_name = f"lane{slot}"
    deadline = graph.critical_path_length(library.latency_of) + slack
    return Block(name=block_name, graph=graph, deadline=deadline)


def _build_process(
    index: int, name: str, rng: random.Random, library: ResourceLibrary
) -> Tuple[Process, List[str]]:
    """One heterogeneous process: blocks from *distinct* sharing classes.

    A real process mixes work — input transfers feeding filter channels
    feeding solver steps — so its blocks come from consecutive classes
    of the rotation, each sharing a *different* heavy type.  That keeps
    each block's dirty cone narrow (a commit that moves one shared
    type's allocation never stales a sibling's forces: the sibling has
    no operations of that type) while the process still couples to
    several clusters and its blocks couple through the process-wide
    iteration maximum.  Returns the process and its shared type names.
    """
    process = Process(name=name)
    blocks = rng.randint(4, 5)
    shared: List[str] = []
    for slot in range(blocks):
        family, shared_type = CORPUS_FAMILIES[(index + slot) % len(CORPUS_FAMILIES)]
        process.add_block(
            _build_block(family, shared_type, name, slot, rng, library)
        )
        shared.append(shared_type)
    return process, shared


def corpus_system(processes: int, *, seed: int = 0) -> CorpusInstance:
    """Build one corpus instance with ``processes`` processes.

    Process ``i`` holds 4-5 blocks drawn from the consecutive classes
    ``CORPUS_FAMILIES[(i + j) % 11]`` — distinct heavy types within a
    process — with per-block graph sizes and deadline slacks drawn from
    ``random.Random(seed)``.  The processes using a class's heavy type
    form that type's sharing group (kept local below two members);
    ADD/SUB glue stays local.
    """
    if processes < 1:
        raise GraphError(f"a corpus system needs >= 1 process, got {processes}")
    library = corpus_library()
    rng = random.Random(seed)
    system = SystemSpec(name=f"corpus-p{processes}-s{seed}")
    clusters: Dict[str, List[str]] = {}
    for index in range(processes):
        name = f"p{index:03d}"
        process, shared = _build_process(index, name, rng, library)
        system.add_process(process)
        for shared_type in shared:
            clusters.setdefault(shared_type, []).append(name)
    assignment = ResourceAssignment(library)
    period_map: Dict[str, int] = {}
    for shared_type, members in clusters.items():
        if len(members) >= 2:
            assignment.make_global(shared_type, members)
            period_map[shared_type] = _PERIOD[shared_type]
    return CorpusInstance(
        name=system.name,
        system=system,
        assignment=assignment,
        periods=PeriodAssignment(period_map),
        library=library,
    )
