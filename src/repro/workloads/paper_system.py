"""The paper's multi-process experimental system (§7).

Five independently running processes:

* ``p1``, ``p2``, ``p3`` — elliptic wave filters;
* ``p4``, ``p5`` — main loops of the differential equation solver, with
  the comparator substituted by a subtraction.

Execution-time constraints, reconstructed from the OCR-damaged text (see
DESIGN.md): 30, 30 and 25 steps for the wave filters, 15 steps for the
equation solvers.  Resource library: unit-delay adder/subtracter of area
1; two-cycle pipelined multiplier of area 4.  The paper's global
assignment shares the adder and multiplier across all five processes and
the subtracter across the two equation solvers; all periods are 15.

Although the five processes could be merged into one, they are considered
triggered by spontaneous events — which merging cannot handle but modulo
scheduling can.
"""

from __future__ import annotations

from typing import Tuple

from ..ir.process import Block, Process, SystemSpec
from ..resources.assignment import ResourceAssignment
from ..resources.library import ResourceLibrary, default_library
from ..core.periods import PeriodAssignment
from .diffeq import differential_equation
from .ewf import elliptic_wave_filter

#: Reconstructed block deadlines (total execution times) per process.
DEADLINES = {"p1": 30, "p2": 30, "p3": 25, "p4": 15, "p5": 15}

#: Reconstructed common period of all global resource types.
PERIOD = 15


def paper_system(*, split_ewf: bool = False) -> Tuple[SystemSpec, ResourceLibrary]:
    """Build the 5-process system and its resource library.

    Args:
        split_ewf: Model each wave-filter process as *two* serialized
            blocks (front/back filter section) instead of one, exercising
            the paper's "any block composition" claim (conditions C1/C2,
            eq. 9 balancing) at full benchmark scale.  Each block gets
            half the process deadline.
    """
    library = default_library()
    system = SystemSpec(name="paper-multiprocess")
    for name in ("p1", "p2", "p3"):
        process = Process(name=name)
        if split_ewf:
            from .ewf import elliptic_wave_filter_split

            front, back = elliptic_wave_filter_split(name=f"{name}-ewf")
            half = DEADLINES[name] // 2
            process.add_block(Block(name="front", graph=front, deadline=half))
            process.add_block(
                Block(name="back", graph=back, deadline=DEADLINES[name] - half)
            )
        else:
            process.add_block(
                Block(
                    name="main",
                    graph=elliptic_wave_filter(name=f"{name}-ewf"),
                    deadline=DEADLINES[name],
                )
            )
        system.add_process(process)
    for name in ("p4", "p5"):
        process = Process(name=name)
        process.add_block(
            Block(
                name="main",
                graph=differential_equation(name=f"{name}-diffeq"),
                deadline=DEADLINES[name],
                repeats=True,
            )
        )
        system.add_process(process)
    system.validate(library.latency_of)
    return system, library


def paper_assignment(library: ResourceLibrary) -> ResourceAssignment:
    """The paper's global scope decisions (step S1, done manually in §7)."""
    assignment = ResourceAssignment(library)
    assignment.make_global("adder", ["p1", "p2", "p3", "p4", "p5"])
    assignment.make_global("multiplier", ["p1", "p2", "p3", "p4", "p5"])
    assignment.make_global("subtracter", ["p4", "p5"])
    return assignment


def paper_periods() -> PeriodAssignment:
    """The paper's period choices (step S2): 15 for every global type."""
    return PeriodAssignment(
        {"adder": PERIOD, "multiplier": PERIOD, "subtracter": PERIOD}
    )
