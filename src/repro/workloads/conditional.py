"""Mode-switching (conditional) filter workload.

A reactive filter block that applies either a *fast* path (one multiply-
accumulate) or a *precise* path (a short FIR cascade) per activation,
selected at run time by a mode flag.  The two paths are mutually
exclusive — at most one executes per activation — so they may share
functional units even within one control step, exercising the guarded-
operation support throughout the stack.
"""

from __future__ import annotations

from ..errors import GraphError
from ..ir.dfg import DataFlowGraph
from ..ir.operation import OpKind

#: Condition label used by all guarded operations of this workload.
MODE = "mode"


def mode_switching_filter(precise_taps: int = 3, *, name: str = "") -> DataFlowGraph:
    """Build the mode-switching filter graph.

    Args:
        precise_taps: Taps of the precise path's FIR (>= 2); the fast path
            is always a single multiply-accumulate.
    """
    if precise_taps < 2:
        raise GraphError(f"precise path needs >= 2 taps, got {precise_taps}")
    graph = DataFlowGraph(name=name or f"modal{precise_taps}")

    # Fast path (mode = fast): y = c * x + bias.
    fast_mul = graph.add("f_mul", OpKind.MUL, guard=(MODE, "fast"))
    fast_add = graph.add("f_add", OpKind.ADD, guard=(MODE, "fast"))
    graph.add_edge(fast_mul.op_id, fast_add.op_id)

    # Precise path (mode = precise): an N-tap FIR chain.
    prev = None
    for tap in range(precise_taps):
        mul = graph.add(f"p_mul{tap}", OpKind.MUL, guard=(MODE, "precise"))
        if tap == 0:
            prev = mul.op_id
            continue
        acc = graph.add(f"p_add{tap}", OpKind.ADD, guard=(MODE, "precise"))
        graph.add_edge(prev, acc.op_id)
        graph.add_edge(mul.op_id, acc.op_id)
        prev = acc.op_id

    # Unconditional output scaling shared by both paths.
    out = graph.add("scale", OpKind.MUL)
    graph.add_edge(fast_add.op_id, out.op_id)
    graph.add_edge(prev, out.op_id)
    graph.validate()
    return graph
