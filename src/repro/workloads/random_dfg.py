"""Seeded random dataflow-graph generation for property tests and scaling.

Graphs are built in layers: every non-first-layer operation draws at least
one predecessor from an earlier layer, guaranteeing a connected, acyclic
precedence structure with controllable depth and width.  All randomness
comes from an explicit seed, so every generated workload is reproducible.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..errors import GraphError
from ..ir.dfg import DataFlowGraph
from ..ir.operation import OpKind

#: Default operation-kind mix: mostly additions, some multiplications,
#: a few subtractions — roughly the paper benchmarks' flavor.
DEFAULT_KIND_MIX = (
    (OpKind.ADD, 0.55),
    (OpKind.MUL, 0.30),
    (OpKind.SUB, 0.15),
)


def random_dfg(
    operations: int,
    *,
    seed: int,
    layers: Optional[int] = None,
    extra_edge_probability: float = 0.25,
    kind_mix: Sequence = DEFAULT_KIND_MIX,
    name: str = "",
) -> DataFlowGraph:
    """Generate a random layered DAG.

    Args:
        operations: Total number of operations (>= 1).
        seed: RNG seed; identical arguments give identical graphs.
        layers: Number of layers (depth); defaults to roughly sqrt(n)+1.
        extra_edge_probability: Chance of each additional cross-layer edge
            beyond the one mandatory predecessor per operation.
        kind_mix: Sequence of ``(OpKind, weight)`` pairs.
        name: Graph name (defaults to ``rand<n>-s<seed>``).
    """
    if operations < 1:
        raise GraphError(f"need >= 1 operation, got {operations}")
    rng = random.Random(seed)
    if layers is None:
        layers = max(1, int(operations**0.5))
    layers = min(layers, operations)

    kinds = [kind for kind, _ in kind_mix]
    weights = [weight for _, weight in kind_mix]
    graph = DataFlowGraph(name=name or f"rand{operations}-s{seed}")

    # Partition the ids over layers: every layer gets at least one op.
    assignments: List[int] = list(range(layers)) + [
        rng.randrange(layers) for _ in range(operations - layers)
    ]
    assignments.sort()
    layer_members: List[List[str]] = [[] for _ in range(layers)]
    for index, layer in enumerate(assignments):
        op_id = f"n{index}"
        kind = rng.choices(kinds, weights=weights)[0]
        graph.add(op_id, kind)
        layer_members[layer].append(op_id)

    earlier: List[str] = list(layer_members[0])
    for layer in range(1, layers):
        for op_id in layer_members[layer]:
            pred = rng.choice(earlier)
            graph.add_edge(pred, op_id)
            for candidate in earlier:
                if candidate != pred and rng.random() < extra_edge_probability / len(
                    earlier
                ):
                    graph.add_edge(candidate, op_id)
        earlier.extend(layer_members[layer])
    graph.validate()
    return graph
