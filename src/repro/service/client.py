"""Thin HTTP client for the scheduling service (stdlib ``http.client``).

The :class:`ServiceClient` is what ``repro --server ADDR`` runs on: it
speaks the ``/v1/jobs`` protocol of :mod:`repro.service.server` over TCP
or a unix-domain socket and translates error envelopes back into the
repo's coded exceptions (``BUSY`` → :class:`~repro.service.jobstore.
QueueFullError`, etc.), so CLI error rendering is identical for local
and remote runs.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Dict, List, Mapping, Optional, Tuple

from .jobstore import QueueFullError, ServiceError, UnknownJobError
from .server import is_unix_address, split_tcp_address


class _UnixHTTPConnection(http.client.HTTPConnection):
    """HTTPConnection over an ``AF_UNIX`` socket path."""

    def __init__(self, path: str, timeout: Optional[float] = None) -> None:
        super().__init__("localhost", timeout=timeout)
        self._unix_path = path

    def connect(self) -> None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if self.timeout is not None:
            sock.settimeout(self.timeout)
        sock.connect(self._unix_path)
        self.sock = sock


class ServiceClient:
    """Talks to one ``repro serve`` instance.

    Args:
        address: The server's address — ``HOST:PORT`` or a unix-socket
            path, the same syntax ``repro serve`` accepts.
        timeout: Per-request socket timeout in seconds.
    """

    def __init__(self, address: str, *, timeout: float = 30.0) -> None:
        self.address = address
        self.timeout = timeout

    # -- transport -------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if is_unix_address(self.address):
            return _UnixHTTPConnection(self.address, timeout=self.timeout)
        host, port = split_tcp_address(self.address)
        return http.client.HTTPConnection(host, port, timeout=self.timeout)

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Mapping[str, object]] = None,
    ) -> Tuple[int, bytes]:
        connection = self._connection()
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            return response.status, response.read()
        except (OSError, http.client.HTTPException) as exc:
            raise ServiceError(
                f"cannot reach scheduling service at {self.address!r}: {exc}"
            ) from exc
        finally:
            connection.close()

    def _json(
        self,
        method: str,
        path: str,
        body: Optional[Mapping[str, object]] = None,
    ) -> Dict[str, object]:
        status, raw = self._request(method, path, body)
        try:
            data = json.loads(raw.decode("utf-8")) if raw else {}
        except (ValueError, UnicodeDecodeError) as exc:
            raise ServiceError(
                f"malformed response from {self.address!r} "
                f"(HTTP {status}): {exc}"
            ) from exc
        if status >= 400:
            error = data.get("error") if isinstance(data, dict) else None
            code = str((error or {}).get("code", "SERVE"))
            message = str(
                (error or {}).get("message", f"HTTP {status} from server")
            )
            if status == 429 or code == "BUSY":
                raise QueueFullError(message)
            if status == 404 and code == "JOB":
                raise UnknownJobError(message)
            raise ServiceError(f"[{code}] {message}")
        if not isinstance(data, dict):
            raise ServiceError(
                f"unexpected response shape from {self.address!r}"
            )
        return data

    # -- protocol --------------------------------------------------------
    def submit(
        self,
        kind: str,
        problem_text: str,
        options: Optional[Mapping[str, object]] = None,
        fault: Optional[str] = None,
    ) -> Dict[str, object]:
        """Submit a job; returns its status dict (``cached`` on a hit)."""
        body: Dict[str, object] = {
            "kind": kind,
            "problem": problem_text,
            "options": dict(options or {}),
        }
        if fault is not None:
            body["fault"] = fault
        return self._json("POST", "/v1/jobs", body)

    def status(self, job_id: str) -> Dict[str, object]:
        return self._json("GET", f"/v1/jobs/{job_id}")

    def jobs(self) -> List[Dict[str, object]]:
        data = self._json("GET", "/v1/jobs")
        jobs = data.get("jobs")
        return list(jobs) if isinstance(jobs, list) else []

    def result_bytes(self, job_id: str) -> bytes:
        """The finished job's payload bytes, verbatim."""
        status, raw = self._request("GET", f"/v1/jobs/{job_id}/result")
        if status >= 400:
            try:
                error = json.loads(raw.decode("utf-8")).get("error") or {}
            except (ValueError, UnicodeDecodeError):
                error = {}
            message = str(error.get("message", f"HTTP {status}"))
            if status == 404:
                raise UnknownJobError(message)
            raise ServiceError(message)
        return raw

    def cancel(self, job_id: str) -> bool:
        data = self._json("DELETE", f"/v1/jobs/{job_id}")
        return bool(data.get("cancelled"))

    def metrics_text(self) -> str:
        status, raw = self._request("GET", "/metrics")
        if status >= 400:
            raise ServiceError(f"metrics endpoint returned HTTP {status}")
        return raw.decode("utf-8")

    def health(self) -> Dict[str, object]:
        return self._json("GET", "/healthz")

    def wait(
        self,
        job_id: str,
        *,
        timeout: Optional[float] = None,
        poll: float = 0.1,
    ) -> Dict[str, object]:
        """Poll until the job reaches a terminal state; returns it."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status.get("state") in ("done", "failed", "cancelled"):
                return status
            if deadline is not None and time.monotonic() >= deadline:
                raise ServiceError(
                    f"timed out waiting for job {job_id} "
                    f"(state {status.get('state')!r})"
                )
            time.sleep(poll)
