"""Scheduling-as-a-service: async jobs, result cache, crash recovery.

The ``repro.service`` subsystem turns the schedulers into a long-running
service (docs/service.md):

* :class:`JobStore` — a durable submit/status/result/cancel queue whose
  every state transition is journaled crash-safe and whose results live
  in a content-addressed on-disk cache (:mod:`repro.service.jobstore`);
* :func:`cache_key` — the canonical content hash identifying a job:
  identical problems (modulo whitespace/comments) with identical options
  hit the same cached, byte-identical payload
  (:mod:`repro.service.cachekey`);
* :class:`ServiceServer` / :func:`serve` — the stdlib-HTTP ``repro
  serve`` daemon, TCP or unix-socket (:mod:`repro.service.server`);
* :class:`ServiceClient` — the matching thin client
  (:mod:`repro.service.client`);
* :class:`LocalSession` / :class:`RemoteSession` — the shared execution
  surface the CLI commands run on (:mod:`repro.service.session`).

``repro serve --state DIR`` starts the daemon; ``repro --server ADDR
schedule|sweep|certify`` turns those commands into thin clients;
``repro jobs --server ADDR`` inspects and watches the queue.
"""

from .cachekey import CACHE_KEY_FORMAT, cache_key, canonical_problem_text
from .client import ServiceClient
from .jobstore import (
    JOB_KINDS,
    JobCancelled,
    JobRecord,
    JobSpec,
    JobStore,
    QueueFullError,
    ServiceError,
    UnknownJobError,
)
from .runner import PAYLOAD_FORMAT, RunContext, execute_job, validate_options
from .server import ServiceServer, serve
from .session import JobOutcome, LocalSession, RemoteSession, Session

__all__ = [
    "CACHE_KEY_FORMAT",
    "JOB_KINDS",
    "PAYLOAD_FORMAT",
    "JobCancelled",
    "JobOutcome",
    "JobRecord",
    "JobSpec",
    "JobStore",
    "LocalSession",
    "QueueFullError",
    "RemoteSession",
    "RunContext",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "Session",
    "UnknownJobError",
    "cache_key",
    "canonical_problem_text",
    "execute_job",
    "serve",
    "validate_options",
]
