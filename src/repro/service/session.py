"""Sessions: one execution surface for local and remote scheduling.

The CLI's ``schedule``/``sweep``/``certify`` commands run through a
:class:`Session`: :class:`LocalSession` owns a private
:class:`~repro.service.jobstore.JobStore` and executes jobs inline
(still journaled and cached when given a persistent ``state_dir``),
while :class:`RemoteSession` submits the same specs to a ``repro
serve`` daemon over :class:`~repro.service.client.ServiceClient` and
waits for the result.  Both return the identical
:class:`JobOutcome` — payload parsed from the *cached bytes*, so a
command's output is byte-grounded in the same artifact either way and
``repro --server ADDR`` is a thin client by construction.
"""

from __future__ import annotations

import json
import tempfile
from typing import Any, Dict, Mapping, Optional

from .client import ServiceClient
from .jobstore import JobStore, ServiceError


class JobOutcome:
    """One finished job: its payload plus how it was obtained."""

    __slots__ = ("job_id", "payload", "raw", "cached")

    def __init__(
        self, job_id: str, raw: bytes, *, cached: bool
    ) -> None:
        self.job_id = job_id
        self.raw = raw
        self.cached = cached
        try:
            self.payload: Dict[str, object] = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ServiceError(
                f"job {job_id} returned a malformed payload: {exc}"
            ) from exc


class Session:
    """Abstract execution surface; see the concrete sessions below."""

    def run(
        self,
        kind: str,
        problem_text: str,
        options: Optional[Mapping[str, object]] = None,
        fault: Optional[str] = None,
    ) -> JobOutcome:
        raise NotImplementedError

    def schedule(
        self,
        problem_text: str,
        options: Optional[Mapping[str, object]] = None,
    ) -> JobOutcome:
        return self.run("schedule", problem_text, options)

    def sweep(
        self,
        problem_text: str,
        options: Optional[Mapping[str, object]] = None,
    ) -> JobOutcome:
        return self.run("sweep", problem_text, options)

    def certify(
        self,
        problem_text: str,
        options: Optional[Mapping[str, object]] = None,
    ) -> JobOutcome:
        return self.run("certify", problem_text, options)

    def close(self) -> None:  # pragma: no cover - overridden where needed
        pass

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class LocalSession(Session):
    """Runs jobs inline through a private :class:`JobStore`.

    With a persistent ``state_dir`` the session gets the full service
    semantics — durable journal, content-addressed cache (a rerun of
    the same command is answered from disk), sweep-journal resume.
    Without one, state lives in a throwaway temporary directory.
    """

    def __init__(
        self,
        state_dir: Optional[str] = None,
        **store_kwargs: Any,
    ) -> None:
        self._tempdir: Optional[tempfile.TemporaryDirectory] = None
        if state_dir is None:
            self._tempdir = tempfile.TemporaryDirectory(prefix="repro-job-")
            state_dir = self._tempdir.name
        self.store = JobStore(state_dir, **store_kwargs)
        self.store.recover()

    def run(
        self,
        kind: str,
        problem_text: str,
        options: Optional[Mapping[str, object]] = None,
        fault: Optional[str] = None,
    ) -> JobOutcome:
        record, hit = self.store.submit(kind, problem_text, options, fault)
        if not hit:
            self.store.run_until_idle()
            record = self.store.wait(record.job_id, timeout=0)
        if record.state != "done":
            raise ServiceError(
                f"{kind} job {record.job_id[:16]} {record.state}"
                + (f": {record.error}" if record.error else "")
            )
        return JobOutcome(
            record.job_id,
            self.store.result_bytes(record.job_id),
            cached=hit,
        )

    def close(self) -> None:
        self.store.close()
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir: Optional[tempfile.TemporaryDirectory] = None


class RemoteSession(Session):
    """Submits jobs to a running ``repro serve`` daemon and waits."""

    def __init__(
        self,
        address: str,
        *,
        timeout: Optional[float] = None,
        poll: float = 0.1,
    ) -> None:
        self.client = ServiceClient(address)
        self.timeout = timeout
        self.poll = poll

    def run(
        self,
        kind: str,
        problem_text: str,
        options: Optional[Mapping[str, object]] = None,
        fault: Optional[str] = None,
    ) -> JobOutcome:
        status = self.client.submit(kind, problem_text, options, fault)
        job_id = str(status["job"])
        hit = bool(status.get("cached"))
        if status.get("state") != "done":
            status = self.client.wait(
                job_id, timeout=self.timeout, poll=self.poll
            )
        if status.get("state") != "done":
            error = status.get("error")
            raise ServiceError(
                f"{kind} job {job_id[:16]} {status.get('state')}"
                + (f": {error}" if error else "")
            )
        return JobOutcome(
            job_id, self.client.result_bytes(job_id), cached=hit
        )
