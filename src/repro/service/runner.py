"""Job execution: turn a :class:`JobSpec` into canonical payload bytes.

The runner is the purely functional core of the service: given a spec
(canonical problem text + canonical options) it produces the payload as
canonical JSON bytes — ``sort_keys=True``, compact separators, one
trailing newline — so the bytes are a *function of the cache key*.
That is what makes the content-addressed cache sound: replaying a job,
resuming it after a crash, or running it on a different worker must all
converge to the identical byte string (the chaos harness asserts this,
see tests/service/test_chaos.py).

Determinism rules the payloads obey:

* No wall-clock, PID, attempt, or restored/cached markers — anything
  that varies between runs of the same computation stays out.
* Sweeps run the serial in-process engine (``workers=1``): with
  pruning, candidate statuses depend on evaluation order, and only the
  serial order is deterministic.  Candidate-level progress is journaled
  to the job's sweep journal, so a killed sweep resumes exactly-once
  and the restored + fresh outcomes equal the uninterrupted run's.
* Options are validated against a per-kind whitelist at submit time
  (:func:`validate_options`); result-*affecting* knobs only.  Wall
  deadlines are rejected — a time-based budget degrades schedules
  nondeterministically, which would poison the cache.

Cancellation is cooperative: :func:`execute_job` checks
``context.should_stop`` at job start and between sweep candidates and
raises :class:`~repro.service.jobstore.JobCancelled` — also the
mechanism that keeps a *timed-out* attempt from racing a fresh one on
the same sweep journal.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Mapping, Optional

from ..errors import SpecificationError
from ..parallel.engine import ExplorationEngine, SweepInterrupted
from ..parallel.jobs import inject_fault, parse_fault
from ..validation.budget import RunBudget

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..api import Problem
    from ..core.result import SystemSchedule
    from .jobstore import JobSpec

#: Version tag stamped into every payload (bump with CACHE_KEY_FORMAT).
PAYLOAD_FORMAT = "repro-result/1"

#: Result-affecting options each job kind accepts.
KNOWN_OPTIONS: Dict[str, Dict[str, type]] = {
    "schedule": {
        "local": bool,
        "use_scoreboard": bool,
        "max_iterations": int,
    },
    "sweep": {
        "prune": bool,
        "use_scoreboard": bool,
        "harmonic": bool,
        "limit": int,
        "max_grid": int,
        "candidate_delay": float,
    },
    "certify": {
        "use_scoreboard": bool,
        "offset_model": str,
    },
}


def validate_options(kind: str, options: Mapping[str, object]) -> None:
    """Reject unknown or ill-typed options with a ``SPEC``-coded error.

    Keeping the option space closed keeps the cache-key space clean:
    a typo'd option must not silently mint a fresh key for the same
    computation.
    """
    known = KNOWN_OPTIONS.get(kind, {})
    for name, value in options.items():
        if name not in known:
            raise SpecificationError(
                f"unknown {kind} option {name!r}; known: "
                + (", ".join(sorted(known)) or "none")
            )
        expected = known[name]
        if expected is float:
            ok = isinstance(value, (int, float)) and not isinstance(
                value, bool
            )
        elif expected is int:
            ok = isinstance(value, int) and not isinstance(value, bool)
        else:
            ok = isinstance(value, expected)
        if not ok:
            raise SpecificationError(
                f"{kind} option {name!r} must be {expected.__name__}, "
                f"got {type(value).__name__}"
            )
    if kind == "certify":
        model = options.get("offset_model", "deployed")
        if model not in ("deployed", "any"):
            raise SpecificationError(
                f"certify option 'offset_model' must be 'deployed' or "
                f"'any', got {model!r}"
            )


@dataclass
class RunContext:
    """Per-attempt execution environment handed to :func:`execute_job`.

    ``corrupt_target`` is the journal the ``corrupt-journal`` fault
    directive garbles (the job's sweep journal when it has one, else
    the store's job journal); ``should_stop`` is polled at every
    cancellation point.
    """

    job_id: str
    sweep_journal_path: Optional[str] = None
    corrupt_target: Optional[str] = None
    should_stop: Callable[[], bool] = lambda: False
    fault: Optional[str] = None


def payload_bytes(payload: Dict[str, object]) -> bytes:
    """The canonical byte encoding every cached result uses."""
    return (
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
            "utf-8"
        )
        + b"\n"
    )


def execute_job(spec: "JobSpec", context: RunContext) -> bytes:
    """Run one job attempt; returns the canonical payload bytes.

    Raises :class:`~repro.service.jobstore.JobCancelled` when the
    context asks it to stop, and whatever the schedulers raise on
    genuinely broken input (the store records it and retries).
    """
    from .jobstore import JobCancelled

    if context.should_stop():
        raise JobCancelled(context.job_id)
    if context.fault:
        inject_fault(context.fault, journal_path=context.corrupt_target)
    if context.should_stop():
        # A timed-out attempt waking from an injected hang must not
        # touch the sweep journal a fresh attempt now owns.
        raise JobCancelled(context.job_id)
    from ..api import loads_problem

    problem = loads_problem(spec.problem_text)
    options = dict(spec.options)
    validate_options(spec.kind, options)
    if spec.kind == "schedule":
        payload = _run_schedule(problem, options)
    elif spec.kind == "sweep":
        payload = _run_sweep(problem, options, context)
    elif spec.kind == "certify":
        payload = _run_certify(problem, options)
    else:  # pragma: no cover - JobSpec.create already validated
        raise SpecificationError(f"unknown job kind {spec.kind!r}")
    payload["format"] = PAYLOAD_FORMAT
    payload["kind"] = spec.kind
    payload["job"] = context.job_id
    return payload_bytes(payload)


# ----------------------------------------------------------------------
# Kind implementations
# ----------------------------------------------------------------------
def _result_summary(result: "SystemSchedule") -> Dict[str, object]:
    """The deterministic core every schedule-shaped payload reports."""
    from ..core.verify import verify_system_schedule

    starts: Dict[str, Dict[str, int]] = {}
    for (process, block), sched in sorted(result.block_schedules.items()):
        starts[f"{process}/{block}"] = {
            op: int(start) for op, start in sorted(sched.starts.items())
        }
    return {
        "system": result.system.name,
        "area": result.total_area(),
        "iterations": result.iterations,
        "instance_counts": dict(result.instance_counts()),
        "degraded": bool(result.degraded),
        "verified": bool(verify_system_schedule(result).ok),
        "periods": dict(result.periods.as_dict) if result.periods else {},
        "starts": starts,
    }


def _schedule_result(
    problem: "Problem", options: Mapping[str, object]
) -> "SystemSchedule":
    kwargs: Dict[str, object] = {
        "use_scoreboard": options.get("use_scoreboard", True)
    }
    max_iterations = options.get("max_iterations")
    if max_iterations is not None:
        kwargs["budget"] = RunBudget(max_iterations=int(max_iterations))
    if options.get("local"):
        return problem.schedule_local_baseline(**kwargs)
    return problem.schedule(**kwargs)


def _run_schedule(
    problem: "Problem", options: Mapping[str, object]
) -> Dict[str, object]:
    result = _schedule_result(problem, options)
    payload = _result_summary(result)
    payload["local"] = bool(options.get("local", False))
    return payload


def _run_sweep(
    problem: "Problem", options: Mapping[str, object], context: RunContext
) -> Dict[str, object]:
    from ..core.periods import enumerate_period_assignments_capped
    from .jobstore import JobCancelled

    candidates, dropped = enumerate_period_assignments_capped(
        problem.system,
        problem.assignment,
        harmonic=bool(options.get("harmonic", True)),
        max_grid=options.get("max_grid"),
        limit=int(options.get("limit", 10000)),
    )
    delay = float(options.get("candidate_delay", 0.0) or 0.0)
    fault_for = None
    if delay > 0:
        # Chaos-harness knob: widen the per-candidate window a SIGKILL
        # can land in.  Sleeping shifts wall time only — wall time is
        # excluded from payloads — so the bytes stay key-determined.
        directive = f"sleep:{delay:g}"
        parse_fault(directive)
        fault_for = lambda periods: directive  # noqa: E731

    engine = ExplorationEngine(
        problem,
        workers=1,
        prune=bool(options.get("prune", True)),
        use_scoreboard=bool(options.get("use_scoreboard", True)),
        checkpoint=context.sweep_journal_path,
        fault_for=fault_for,
        # Polled *before* each candidate is evaluated and journaled: an
        # abandoned attempt must stop at the boundary, not append one
        # more record under a successor's feet.
        stop_when=context.should_stop,
    )

    try:
        outcome = engine.sweep(candidates)
    except SweepInterrupted:
        raise JobCancelled(context.job_id) from None
    if context.should_stop():
        raise JobCancelled(context.job_id)
    records: List[Dict[str, object]] = []
    for record in outcome.results:
        records.append(
            {
                "order": record.order,
                "periods": dict(record.periods),
                "status": record.status,
                "area": record.area,
                "bound": record.bound,
                "iterations": record.iterations,
                "instance_counts": dict(record.instance_counts),
                "error": record.error,
            }
        )
    best = None
    if outcome.best is not None:
        best = {
            "periods": dict(outcome.best.periods),
            "area": outcome.best.area,
        }
    return {
        "system": problem.system.name,
        "candidates": records,
        "best": best,
        "total": len(outcome.results),
        "evaluated": outcome.evaluated,
        "pruned": outcome.pruned,
        "failed": outcome.failed,
        "dropped": dropped,
    }


def _run_certify(
    problem: "Problem", options: Mapping[str, object]
) -> Dict[str, object]:
    from ..analysis.static import certify

    result = _schedule_result(problem, options)
    certificate = certify(
        result, offset_model=str(options.get("offset_model", "deployed"))
    )
    payload = _result_summary(result)
    payload["safe"] = bool(certificate.safe)
    payload["verdict"] = certificate.verdict
    payload["certificate"] = certificate.as_dict()
    return payload
